#![warn(missing_docs)]
//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation instead: a
//! xoshiro256\*\* generator seeded through SplitMix64 (the reference
//! seeding procedure). The statistical quality is more than sufficient for
//! test-data generation; no cryptographic claims are made.

use std::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's bit stream.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types with uniform sampling over a half-open `Range`.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection sampling for exact uniformity over the span.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f64::sample(rng);
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f32::sample(rng);
        low + u * (high - low)
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open range `low..high`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro reference.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A process-local generator seeded from the system clock (non-reproducible
/// convenience mirror of `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    SeedableRng::seed_from_u64(u64::from(nanos) ^ 0xA076_1D64_78BD_642F)
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_stays_in_range_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let total: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
