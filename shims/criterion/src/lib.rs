#![warn(missing_docs)]
//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the benches link
//! against this minimal harness instead: each benchmark runs a warm-up pass
//! followed by a timed loop and prints `name/param  mean ± spread` to
//! stdout. There is no statistical machinery, HTML report, or baseline
//! comparison — the point is that `cargo bench` compiles, runs, and emits
//! usable wall-clock numbers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark case: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", n)` renders as `kernel/n`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to the measurement closure; `iter` runs the timed loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting `sample_size`
    /// samples of one invocation each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed invocation.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let mut line = String::new();
    let _ = write!(
        line,
        "{group}/{label}: mean {} (min {}, max {}, {} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
    println!("{line}");
}

/// Declared per-iteration workload size, used to print throughput
/// alongside raw timings (mirrors `criterion::Throughput`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many abstract elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration workload — accepted for API
    /// compatibility (the shim reports raw times only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Upper bound on measurement time — accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        report(&self.name, &id.label, &b.samples);
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&self.name, &id.into_label(), &b.samples);
        self
    }

    /// Ends the group (prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Accepts either a `&str` or a [`BenchmarkId`] as a benchmark label.
pub trait IntoLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Fresh harness with the default sample size (10).
    pub fn new() -> Self {
        Criterion { default_sample_size: 10 }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        let mut b = Bencher { samples: Vec::new(), sample_size };
        f(&mut b);
        report("bench", name, &b.samples);
        self
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let n = 100u64;
        group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
