#![warn(missing_docs)]
//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the pieces the test suite relies on: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `collection::vec` / `collection::btree_set`, the [`proptest!`] macro and
//! the `prop_assert*` macros. Cases are generated from a deterministic
//! seeded generator; there is **no shrinking** — a failing case panics with
//! the standard assertion message, which is sufficient for CI.

use rand::rngs::StdRng;
use std::ops::Range;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
    /// Unused compatibility field (accepted, ignored).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A generator of values of type `Value`, mirroring `proptest::Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`vec`, `btree_set`), mirroring
/// `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`BTreeSetStrategy`].
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            use rand::Rng;
            let target = rng.gen_range(self.size.lo..self.size.hi);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below target; bound the retries so
            // narrow domains terminate.
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Everything the `proptest!` test bodies need in scope.
pub mod prelude {
    pub use super::{Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub mod __runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test seed derived from the test's name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Property-test assertion: behaves as `assert!` (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test assertion: behaves as `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test assertion: behaves as `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block macro: expands each property into a `#[test]`
/// function that draws `cases` random inputs from the listed strategies and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::__runner::rng_for(stringify!($name));
                for __case in 0..config.cases {
                    let ( $($pat,)+ ) = (
                        $( $crate::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    $body
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name( $($pat in $strat),+ ) $body
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..12, y in -2.0f64..2.0) {
            prop_assert!((3..12).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (n, v) in (1usize..8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0.0f64..1.0, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn collections_sized(
            v in crate::collection::vec(0usize..5, 1..30),
            s in crate::collection::btree_set((0i64..12, 0i64..12), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(!s.is_empty() || s.is_empty()); // generated without panic
        }
    }
}
