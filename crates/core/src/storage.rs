//! Packed storage for fully symmetric 3-tensors.
//!
//! A fully symmetric tensor satisfies `a_{ijk} = a_{σ(i)σ(j)σ(k)}` for every
//! permutation `σ`, so only the lower tetrahedron `i ≥ j ≥ k` needs storing:
//! `n(n+1)(n+2)/6` words instead of `n³` (the `1/d!` saving the paper's
//! introduction highlights for `d = 3`).
//!
//! The layout is the 3-dimensional analogue of packed triangular storage:
//! entry `(i, j, k)` with `i ≥ j ≥ k` (0-based) lives at
//! `tet(i) + tri(j) + k` where `tet(i) = i(i+1)(i+2)/6` and
//! `tri(j) = j(j+1)/2`.

/// Number of lower-tetrahedron entries with leading index `< i`:
/// `i(i+1)(i+2)/6`.
#[inline]
pub fn tet(i: usize) -> usize {
    i * (i + 1) * (i + 2) / 6
}

/// Number of lower-triangle entries with leading index `< j`: `j(j+1)/2`.
#[inline]
pub fn tri(j: usize) -> usize {
    j * (j + 1) / 2
}

/// Storage offset of the sorted index `(i, j, k)`, `i ≥ j ≥ k`.
#[inline]
pub fn packed_index(i: usize, j: usize, k: usize) -> usize {
    debug_assert!(i >= j && j >= k);
    tet(i) + tri(j) + k
}

/// A fully symmetric `n × n × n` tensor stored as its packed lower
/// tetrahedron.
///
/// ```
/// use symtensor_core::SymTensor3;
/// let mut t = SymTensor3::zeros(4);
/// t.set(3, 1, 2, 5.0);                    // any index order
/// assert_eq!(t.get(1, 2, 3), 5.0);        // all permutations agree
/// assert_eq!(t.packed_len(), 4 * 5 * 6 / 6);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SymTensor3 {
    n: usize,
    data: Vec<f64>,
}

impl SymTensor3 {
    /// The zero tensor of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymTensor3 { n, data: vec![0.0; tet(n)] }
    }

    /// Wraps packed data (length must be `n(n+1)(n+2)/6`).
    pub fn from_packed(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), tet(n), "packed data has wrong length for n = {n}");
        SymTensor3 { n, data }
    }

    /// Dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (unique) entries, `n(n+1)(n+2)/6`.
    #[inline]
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// The packed lower tetrahedron.
    #[inline]
    pub fn packed(&self) -> &[f64] {
        &self.data
    }

    /// Mutable packed data.
    #[inline]
    pub fn packed_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at `(i, j, k)` in **any** index order.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        let (a, b, c) = sort3_desc(i, j, k);
        self.data[packed_index(a, b, c)]
    }

    /// Sets the value at `(i, j, k)` (and so at all 6 permutations).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, value: f64) {
        let (a, b, c) = sort3_desc(i, j, k);
        self.data[packed_index(a, b, c)] = value;
    }

    /// Adds `value` at `(i, j, k)` (any order).
    #[inline]
    pub fn add_assign(&mut self, i: usize, j: usize, k: usize, value: f64) {
        let (a, b, c) = sort3_desc(i, j, k);
        self.data[packed_index(a, b, c)] += value;
    }

    /// Value at a sorted index, skipping the sort — hot-path accessor for
    /// kernels that iterate the lower tetrahedron directly.
    #[inline]
    pub fn get_sorted(&self, i: usize, j: usize, k: usize) -> f64 {
        debug_assert!(i >= j && j >= k && i < self.n);
        self.data[packed_index(i, j, k)]
    }

    /// Expands to a dense `n³` tensor (testing / baselines only).
    pub fn to_dense(&self) -> DenseTensor3 {
        let n = self.n;
        let mut dense = DenseTensor3::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    dense.set(i, j, k, self.get(i, j, k));
                }
            }
        }
        dense
    }

    /// Frobenius norm accounting for symmetry multiplicities (each stored
    /// entry appears 6, 3 or 1 times in the dense tensor).
    pub fn frobenius_norm(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.n {
            for j in 0..=i {
                for k in 0..=j {
                    let v = self.get_sorted(i, j, k);
                    let mult = multiplicity(i, j, k) as f64;
                    total += mult * v * v;
                }
            }
        }
        total.sqrt()
    }

    /// Iterates over the lower tetrahedron as `(i, j, k, value)` with
    /// `i ≥ j ≥ k`.
    pub fn iter_lower(&self) -> impl Iterator<Item = (usize, usize, usize, f64)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |i| {
            (0..=i).flat_map(move |j| (0..=j).map(move |k| (i, j, k, self.get_sorted(i, j, k))))
        })
    }
}

/// Number of distinct permutations of the index `(i, j, k)`: 6 when all
/// distinct, 3 when exactly two equal, 1 when all equal.
#[inline]
pub fn multiplicity(i: usize, j: usize, k: usize) -> usize {
    if i == j && j == k {
        1
    } else if i == j || j == k || i == k {
        3
    } else {
        6
    }
}

#[inline]
fn sort3_desc(i: usize, j: usize, k: usize) -> (usize, usize, usize) {
    let (lo1, hi1) = if i < j { (i, j) } else { (j, i) };
    if k >= hi1 {
        (k, hi1, lo1)
    } else if k <= lo1 {
        (hi1, lo1, k)
    } else {
        (hi1, k, lo1)
    }
}

/// A dense (non-symmetric) `n × n × n` tensor, used by baselines and tests.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseTensor3 {
    n: usize,
    data: Vec<f64>,
}

impl DenseTensor3 {
    /// The zero tensor of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseTensor3 { n, data: vec![0.0; n * n * n] }
    }

    /// Dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Value at `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[(i * self.n + j) * self.n + k]
    }

    /// Sets the value at `(i, j, k)` (this entry only; no symmetry).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, value: f64) {
        self.data[(i * self.n + j) * self.n + k] = value;
    }

    /// Checks full symmetry within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        let n = self.n;
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=j {
                    let v = self.get(i, j, k);
                    let perms = [
                        self.get(i, k, j),
                        self.get(j, i, k),
                        self.get(j, k, i),
                        self.get(k, i, j),
                        self.get(k, j, i),
                    ];
                    if perms.iter().any(|&p| (p - v).abs() > tol) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_length_formula() {
        for n in 0..20 {
            assert_eq!(SymTensor3::zeros(n).packed_len(), n * (n + 1) * (n + 2) / 6);
        }
    }

    #[test]
    fn packed_index_is_a_bijection() {
        let n = 9;
        let mut seen = vec![false; tet(n)];
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=j {
                    let idx = packed_index(i, j, k);
                    assert!(!seen[idx], "collision at ({i},{j},{k})");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn get_is_permutation_invariant() {
        let mut t = SymTensor3::zeros(6);
        t.set(5, 2, 4, 7.5);
        for &(i, j, k) in &[(5, 2, 4), (5, 4, 2), (2, 5, 4), (2, 4, 5), (4, 5, 2), (4, 2, 5)] {
            assert_eq!(t.get(i, j, k), 7.5);
        }
    }

    #[test]
    fn set_then_get_all_entries() {
        let n = 5;
        let mut t = SymTensor3::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=j {
                    t.set(i, j, k, (i * 100 + j * 10 + k) as f64);
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (a, b, c) = sort3_desc(i, j, k);
                    assert_eq!(t.get(i, j, k), (a * 100 + b * 10 + c) as f64);
                }
            }
        }
    }

    #[test]
    fn dense_roundtrip_is_symmetric() {
        let mut t = SymTensor3::zeros(4);
        for (pos, v) in t.packed_mut().iter_mut().enumerate() {
            *v = pos as f64 + 1.0;
        }
        let d = t.to_dense();
        assert!(d.is_symmetric(0.0));
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert_eq!(d.get(i, j, k), t.get(i, j, k));
                }
            }
        }
    }

    #[test]
    fn multiplicities() {
        assert_eq!(multiplicity(3, 3, 3), 1);
        assert_eq!(multiplicity(3, 3, 1), 3);
        assert_eq!(multiplicity(3, 1, 1), 3);
        assert_eq!(multiplicity(3, 2, 1), 6);
        // Sum of multiplicities over the lower tetrahedron = n³.
        let n = 7;
        let total: usize = (0..n)
            .flat_map(|i| (0..=i).flat_map(move |j| (0..=j).map(move |k| multiplicity(i, j, k))))
            .sum();
        assert_eq!(total, n * n * n);
    }

    #[test]
    fn frobenius_norm_matches_dense() {
        let mut t = SymTensor3::zeros(5);
        for (pos, v) in t.packed_mut().iter_mut().enumerate() {
            *v = (pos as f64).sin();
        }
        let d = t.to_dense();
        let mut dense_sq = 0.0;
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    dense_sq += d.get(i, j, k) * d.get(i, j, k);
                }
            }
        }
        assert!((t.frobenius_norm() - dense_sq.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn iter_lower_covers_tetrahedron_once() {
        let t = SymTensor3::zeros(6);
        let count = t.iter_lower().count();
        assert_eq!(count, tet(6));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn from_packed_rejects_bad_length() {
        SymTensor3::from_packed(4, vec![0.0; 3]);
    }
}
