//! `d`-dimensional fully symmetric tensors and the generalized STTSV —
//! the extension the paper's Section 8 sketches ("the lower bound arguments
//! can easily be extended for d-dimensional STTSV computations").
//!
//! A fully symmetric order-`d` tensor on `n` indices has
//! `C(n + d − 1, d)` unique entries (the `n^d/d!` saving of the paper's
//! introduction). The generalized STTSV is
//! `y_i = Σ_{j₂,…,j_d} a_{i j₂ … j_d} · x_{j₂} ⋯ x_{j_d}`,
//! i.e. multiplying the same vector along `d − 1` modes. The symmetric
//! kernel visits each sorted tuple once and distributes its contribution to
//! every distinct index of the tuple with the appropriate multinomial
//! coefficient — exactly the `d`-dimensional analogue of Algorithm 4.
//!
//! No infinite families of Steiner systems with `s > 3` are known (§8), so
//! the *parallel* partitioning story stops at `d = 3`; this module provides
//! the storage, sequential kernels and lower-bound formulas for general `d`.

/// Binomial coefficient `C(n, k)` in `u64` (panics on overflow — our sizes
/// are tiny).
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for t in 0..k {
        acc = acc * (n - t) as u128 / (t + 1) as u128;
    }
    u64::try_from(acc).expect("binomial overflow")
}

/// A fully symmetric order-`d` tensor of dimension `n`, stored as its
/// packed sorted-index simplex.
#[derive(Clone, Debug, PartialEq)]
pub struct SymTensorD {
    n: usize,
    d: usize,
    data: Vec<f64>,
}

impl SymTensorD {
    /// The zero tensor (`d ≥ 1`).
    pub fn zeros(n: usize, d: usize) -> Self {
        assert!(d >= 1, "order must be at least 1");
        let len = binomial(n + d - 1, d) as usize;
        SymTensorD { n, d, data: vec![0.0; len] }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Order `d`.
    pub fn order(&self) -> usize {
        self.d
    }

    /// Number of stored entries, `C(n + d − 1, d)`.
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// Packed data (sorted-index simplex, lexicographic by the descending
    /// index tuple).
    pub fn packed(&self) -> &[f64] {
        &self.data
    }

    /// Mutable packed data.
    pub fn packed_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Storage offset of a **descending-sorted** index tuple: the
    /// generalization of `tet(i) + tri(j) + k`, namely
    /// `Σ_t C(i_t + d − t − 1, d − t)` for positions `t = 0..d`.
    pub fn packed_index(&self, sorted_desc: &[usize]) -> usize {
        debug_assert_eq!(sorted_desc.len(), self.d);
        debug_assert!(sorted_desc.windows(2).all(|w| w[0] >= w[1]));
        let d = self.d;
        let mut idx = 0u64;
        for (t, &i) in sorted_desc.iter().enumerate() {
            let slots = d - t;
            idx += binomial(i + slots - 1, slots);
        }
        idx as usize
    }

    /// Value at an index tuple in any order.
    pub fn get(&self, indices: &[usize]) -> f64 {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        self.data[self.packed_index(&sorted)]
    }

    /// Sets the value at an index tuple (any order — all permutations).
    pub fn set(&mut self, indices: &[usize], value: f64) {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let idx = self.packed_index(&sorted);
        self.data[idx] = value;
    }

    /// Iterates over all descending-sorted index tuples in storage order.
    pub fn sorted_tuples(&self) -> SortedTuples {
        SortedTuples { n: self.n, current: None, d: self.d }
    }
}

/// Iterator over descending-sorted tuples `(i₁ ≥ i₂ ≥ … ≥ i_d)` with
/// entries in `0..n`, in packed storage order.
pub struct SortedTuples {
    n: usize,
    d: usize,
    current: Option<Vec<usize>>,
}

impl Iterator for SortedTuples {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.n == 0 {
            return None;
        }
        match &mut self.current {
            None => {
                self.current = Some(vec![0; self.d]);
                self.current.clone()
            }
            Some(tuple) => {
                // Increment like a "non-increasing odometer": find the last
                // position that can grow (stays ≤ the one before it).
                let d = self.d;
                let mut pos = d;
                loop {
                    if pos == 0 {
                        return None;
                    }
                    pos -= 1;
                    let cap = if pos == 0 { self.n - 1 } else { tuple[pos - 1] };
                    if tuple[pos] < cap {
                        tuple[pos] += 1;
                        for later in tuple.iter_mut().skip(pos + 1) {
                            *later = 0;
                        }
                        return Some(tuple.clone());
                    }
                }
            }
        }
    }
}

/// Naive `d`-dimensional STTSV over the full `n^d` iteration space
/// (Algorithm 3 generalized). Returns `(y, d-ary multiplication count)`.
pub fn sttsv_d_naive(tensor: &SymTensorD, x: &[f64]) -> (Vec<f64>, u64) {
    let n = tensor.dim();
    let d = tensor.order();
    assert_eq!(x.len(), n);
    let mut y = vec![0.0; n];
    let mut count = 0u64;
    // Odometer over all n^(d−1) tuples (j₂..j_d) for every i.
    let mut tuple = vec![0usize; d];
    loop {
        let mut prod = tensor.get(&tuple);
        for &j in &tuple[1..] {
            prod *= x[j];
        }
        y[tuple[0]] += prod;
        count += 1;
        // Increment the odometer.
        let mut pos = d;
        loop {
            if pos == 0 {
                return (y, count);
            }
            pos -= 1;
            if tuple[pos] + 1 < n {
                tuple[pos] += 1;
                for later in tuple.iter_mut().skip(pos + 1) {
                    *later = 0;
                }
                break;
            }
        }
    }
}

/// Symmetric `d`-dimensional STTSV (Algorithm 4 generalized): visits each
/// sorted tuple once; for each distinct index `v` of the tuple (with
/// multiplicity `m_v`), adds `(N·m_v/d) · a · Π_{u ∈ tuple∖{v}} x_u` to
/// `y_v`, where `N = d!/Π m_u!` is the number of distinct permutations.
/// Returns `(y, d-ary multiplication count)` — one multiplication per
/// distinct index per tuple, the direct generalization of the paper's
/// 3/2/1-update case analysis.
pub fn sttsv_d_sym(tensor: &SymTensorD, x: &[f64]) -> (Vec<f64>, u64) {
    let n = tensor.dim();
    let d = tensor.order();
    assert_eq!(x.len(), n);
    let mut y = vec![0.0; n];
    let mut count = 0u64;
    let d_fact: u64 = (1..=d as u64).product();
    for tuple in tensor.sorted_tuples() {
        let a = tensor.get(&tuple);
        // Multiset run-length decomposition of the sorted tuple.
        let mut runs: Vec<(usize, usize)> = Vec::with_capacity(d); // (value, multiplicity)
        for &v in &tuple {
            match runs.last_mut() {
                Some((val, m)) if *val == v => *m += 1,
                _ => runs.push((v, 1)),
            }
        }
        let denom: u64 = runs.iter().map(|&(_, m)| (1..=m as u64).product::<u64>()).product();
        let n_perms = d_fact / denom;
        for &(v, m) in &runs {
            // coeff = N·m_v/d (always an integer).
            let coeff = n_perms * m as u64 / d as u64;
            // Product over the tuple with one copy of v removed.
            let mut prod = a * coeff as f64;
            for &(u, mu) in &runs {
                let reps = if u == v { mu - 1 } else { mu };
                for _ in 0..reps {
                    prod *= x[u];
                }
            }
            y[v] += prod;
            count += 1;
        }
    }
    (y, count)
}

/// Strict simplex size `C(n, d)` — the `d`-dimensional analogue of the
/// strict lower tetrahedron.
pub fn strict_simplex_points(n: usize, d: usize) -> u64 {
    binomial(n, d)
}

/// The `d`-dimensional memory-independent communication lower bound,
/// following the paper's §8 remark: the symmetric projection inequality
/// generalizes to `d!·|V| ≤ |∪ projections|^d`, so a processor performing
/// `C(n,d)/P` strict-simplex points must access at least
/// `(d!·C(n,d)/P)^{1/d}` vector indices, and communicates at least
/// `2(d!·C(n,d)/P)^{1/d} − 2n/P` words.
pub fn lower_bound_words_d(n: usize, d: usize, p: usize) -> f64 {
    let d_fact: f64 = (1..=d as u64).product::<u64>() as f64;
    let strict = strict_simplex_points(n, d) as f64;
    2.0 * (d_fact * strict / p as f64).powf(1.0 / d as f64) - 2.0 * n as f64 / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SymTensor3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_d<R: Rng>(n: usize, d: usize, rng: &mut R) -> SymTensorD {
        let mut t = SymTensorD::zeros(n, d);
        for v in t.packed_mut() {
            *v = rng.gen::<f64>() * 2.0 - 1.0;
        }
        t
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(52, 5), 2598960);
    }

    #[test]
    fn packed_len_formula() {
        for n in 1..8 {
            for d in 1..5 {
                let t = SymTensorD::zeros(n, d);
                assert_eq!(t.packed_len() as u64, binomial(n + d - 1, d));
            }
        }
    }

    #[test]
    fn packed_index_is_a_bijection() {
        for (n, d) in [(6usize, 2usize), (5, 3), (4, 4), (3, 5)] {
            let t = SymTensorD::zeros(n, d);
            let mut seen = vec![false; t.packed_len()];
            let mut count = 0;
            for tuple in t.sorted_tuples() {
                let idx = t.packed_index(&tuple);
                assert!(!seen[idx], "collision at {tuple:?}");
                seen[idx] = true;
                count += 1;
            }
            assert_eq!(count, t.packed_len());
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn d3_matches_symtensor3_layout() {
        // The d = 3 specialization must agree with the dedicated SymTensor3.
        let n = 6;
        let mut rng = StdRng::seed_from_u64(1);
        let td = random_d(n, 3, &mut rng);
        let mut t3 = SymTensor3::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=j {
                    t3.set(i, j, k, td.get(&[i, j, k]));
                }
            }
        }
        // Packed layouts coincide (same ordering).
        assert_eq!(td.packed(), t3.packed());
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let (yd, _) = sttsv_d_sym(&td, &x);
        let (y3, _) = crate::seq::sttsv_sym(&t3, &x);
        for i in 0..n {
            assert!((yd[i] - y3[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_matches_naive_for_various_orders() {
        let mut rng = StdRng::seed_from_u64(2);
        for (n, d) in [(5usize, 2usize), (5, 3), (4, 4), (3, 5), (6, 3)] {
            let t = random_d(n, d, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
            let (y_naive, count_naive) = sttsv_d_naive(&t, &x);
            let (y_sym, count_sym) = sttsv_d_sym(&t, &x);
            assert_eq!(count_naive, (n as u64).pow(d as u32));
            // The multiplication saving kicks in at d ≥ 3 (for d = 2,
            // symmetric SYMV saves reads, not multiplications: both do n²).
            if d >= 3 && n >= 2 {
                assert!(count_sym < count_naive, "n={n} d={d}");
            } else {
                assert!(count_sym <= count_naive, "n={n} d={d}");
            }
            for i in 0..n {
                assert!(
                    (y_naive[i] - y_sym[i]).abs() < 1e-10 * (1.0 + y_naive[i].abs()),
                    "n={n} d={d} y[{i}]: {} vs {}",
                    y_naive[i],
                    y_sym[i]
                );
            }
        }
    }

    #[test]
    fn d3_work_count_matches_paper_formula() {
        // For d = 3 the symmetric kernel's count must be n²(n+1)/2.
        let mut rng = StdRng::seed_from_u64(3);
        for n in [2usize, 4, 7, 10] {
            let t = random_d(n, 3, &mut rng);
            let x = vec![1.0; n];
            let (_, count) = sttsv_d_sym(&t, &x);
            assert_eq!(count, (n * n * (n + 1) / 2) as u64);
        }
    }

    #[test]
    fn work_savings_approach_d_factorial_over_dminus1_factorial() {
        // Naive work n^d; symmetric ≈ d·C(n+d−1,d) ≈ n^d/(d−1)!. The ratio
        // naive/symmetric → (d−1)!·... for d = 3 it is ≈ 2 (the paper's
        // halving); for d = 4 it approaches 6.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 14;
        for (d, expect) in [(3usize, 2.0f64), (4, 6.0)] {
            let t = random_d(n, d, &mut rng);
            let x = vec![1.0; n];
            let (_, naive) = sttsv_d_naive(&t, &x);
            let (_, sym) = sttsv_d_sym(&t, &x);
            let ratio = naive as f64 / sym as f64;
            assert!(
                ratio > expect * 0.5 && ratio < expect * 1.3,
                "d={d}: ratio {ratio} (expect ≈ {expect})"
            );
        }
    }

    #[test]
    fn rank_one_d4_tensor() {
        // A = v⊗v⊗v⊗v: y_i = (vᵀx)³ v_i.
        let n = 5;
        let v: Vec<f64> = (0..n).map(|i| 0.3 + i as f64 * 0.1).collect();
        let mut t = SymTensorD::zeros(n, 4);
        let tuples: Vec<Vec<usize>> = t.sorted_tuples().collect();
        for tuple in tuples {
            let val: f64 = tuple.iter().map(|&i| v[i]).product();
            t.set(&tuple, val);
        }
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let dot: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
        let (y, _) = sttsv_d_sym(&t, &x);
        for i in 0..n {
            assert!((y[i] - dot.powi(3) * v[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn lower_bound_d3_matches_dedicated_formula() {
        // For d = 3 the general bound must be within rounding of the
        // Theorem 5.2 implementation (C(n,3) = n(n−1)(n−2)/6).
        for (n, p) in [(120usize, 30usize), (240, 130)] {
            let general = lower_bound_words_d(n, 3, p);
            let nn = n as f64;
            let dedicated =
                2.0 * (nn * (nn - 1.0) * (nn - 2.0) / p as f64).cbrt() - 2.0 * nn / p as f64;
            assert!((general - dedicated).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_bound_grows_with_order() {
        // At fixed n, P the d-dimensional bound increases with d (more
        // reuse potential demands more data per processor).
        let n = 200;
        let p = 64;
        let b3 = lower_bound_words_d(n, 3, p);
        let b4 = lower_bound_words_d(n, 4, p);
        let b5 = lower_bound_words_d(n, 5, p);
        assert!(b3 < b4 && b4 < b5, "{b3} {b4} {b5}");
    }

    #[test]
    fn permutation_invariance_d4() {
        let mut t = SymTensorD::zeros(5, 4);
        t.set(&[4, 1, 3, 1], 2.5);
        assert_eq!(t.get(&[1, 4, 1, 3]), 2.5);
        assert_eq!(t.get(&[3, 1, 4, 1]), 2.5);
        assert_eq!(t.get(&[1, 1, 3, 4]), 2.5);
    }

    #[test]
    fn order_one_tensor_is_a_vector() {
        let mut t = SymTensorD::zeros(4, 1);
        for (i, v) in t.packed_mut().iter_mut().enumerate() {
            *v = i as f64;
        }
        // y_i = a_i (empty product over zero modes).
        let (y, count) = sttsv_d_sym(&t, &[9.0, 9.0, 9.0, 9.0]);
        assert_eq!(y, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(count, 4);
    }
}
