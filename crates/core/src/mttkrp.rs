//! Symmetric Matricized-Tensor Times Khatri–Rao Product (MTTKRP) — the
//! paper's Section 8 target for generalizing its bounds.
//!
//! Mode-1 MTTKRP for a symmetric 3-tensor and factor matrix `X ∈ ℝ^{n×r}`:
//!
//! ```text
//! Y_{iℓ} = Σ_{j,k} a_{ijk} · X_{jℓ} · X_{kℓ}
//! ```
//!
//! For each fixed column `ℓ` this is exactly one STTSV, so the symmetric
//! MTTKRP is `r` STTSV invocations sharing the tensor — which is why the
//! communication-optimal STTSV algorithm transfers to MTTKRP (and why the
//! parallel variant in `symtensor-parallel` amortizes one gather/reduce
//! schedule over all `r` columns).

use crate::ops::Matrix;
use crate::seq::{sttsv_sym, OpCount};
use crate::storage::SymTensor3;

/// Column-by-column symmetric MTTKRP: `r` independent STTSV calls.
/// Returns the `n × r` result and the summed operation counts.
pub fn mttkrp_sym(tensor: &SymTensor3, x_mat: &Matrix) -> (Matrix, OpCount) {
    let n = tensor.dim();
    assert_eq!(x_mat.rows(), n, "factor matrix must have n rows");
    let r = x_mat.cols();
    let mut y = Matrix::zeros(n, r);
    let mut total = OpCount::default();
    for l in 0..r {
        let xl = x_mat.col(l);
        let (yl, ops) = sttsv_sym(tensor, &xl);
        y.set_col(l, &yl);
        total.absorb(&ops);
    }
    (y, total)
}

/// Fused symmetric MTTKRP: one sweep over the lower tetrahedron updating
/// all `r` columns per element (better arithmetic intensity on the packed
/// tensor — each `a_{ijk}` is read once instead of `r` times).
pub fn mttkrp_sym_fused(tensor: &SymTensor3, x_mat: &Matrix) -> (Matrix, OpCount) {
    let n = tensor.dim();
    assert_eq!(x_mat.rows(), n);
    let r = x_mat.cols();
    let mut y = Matrix::zeros(n, r);
    let mut ops = OpCount::default();
    for i in 0..n {
        for j in 0..=i {
            for k in 0..=j {
                let a = tensor.get_sorted(i, j, k);
                ops.points += 1;
                for l in 0..r {
                    let (xi, xj, xk) = (x_mat.get(i, l), x_mat.get(j, l), x_mat.get(k, l));
                    if i != j && j != k {
                        y.set(i, l, y.get(i, l) + 2.0 * a * xj * xk);
                        y.set(j, l, y.get(j, l) + 2.0 * a * xi * xk);
                        y.set(k, l, y.get(k, l) + 2.0 * a * xi * xj);
                    } else if i == j && j != k {
                        y.set(i, l, y.get(i, l) + 2.0 * a * xj * xk);
                        y.set(k, l, y.get(k, l) + a * xi * xj);
                    } else if i != j && j == k {
                        y.set(i, l, y.get(i, l) + a * xj * xk);
                        y.set(j, l, y.get(j, l) + 2.0 * a * xi * xk);
                    } else {
                        y.set(i, l, y.get(i, l) + a * xj * xk);
                    }
                }
                ops.ternary_mults += r as u64
                    * if i != j && j != k {
                        3
                    } else if i == j && j == k {
                        1
                    } else {
                        2
                    };
            }
        }
    }
    (y, ops)
}

/// Dense reference MTTKRP over the full cube (tests only).
pub fn mttkrp_dense_reference(tensor: &SymTensor3, x_mat: &Matrix) -> Matrix {
    let n = tensor.dim();
    let r = x_mat.cols();
    let mut y = Matrix::zeros(n, r);
    for l in 0..r {
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                for k in 0..n {
                    acc += tensor.get(i, j, k) * x_mat.get(j, l) * x_mat.get(k, l);
                }
            }
            y.set(i, l, acc);
        }
    }
    y
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::generate::random_symmetric;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_factor<R: Rng>(n: usize, r: usize, rng: &mut R) -> Matrix {
        let mut m = Matrix::zeros(n, r);
        for row in 0..n {
            for col in 0..r {
                m.set(row, col, rng.gen::<f64>() - 0.5);
            }
        }
        m
    }

    fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for row in 0..a.rows() {
            for col in 0..a.cols() {
                let (x, y) = (a.get(row, col), b.get(row, col));
                assert!((x - y).abs() < tol * (1.0 + x.abs()), "[{row},{col}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn columnwise_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(41);
        let t = random_symmetric(9, &mut rng);
        let x = random_factor(9, 4, &mut rng);
        let (y, ops) = mttkrp_sym(&t, &x);
        let y_ref = mttkrp_dense_reference(&t, &x);
        assert_matrix_close(&y, &y_ref, 1e-10);
        // r STTSVs worth of work; flops follow the 3× conversion.
        assert_eq!(ops.ternary_mults, 4 * (9u64 * 9 * 10 / 2));
        assert_eq!(ops.flops(), 3 * 4 * (9u64 * 9 * 10 / 2));
    }

    #[test]
    fn fused_matches_columnwise() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = random_symmetric(11, &mut rng);
        let x = random_factor(11, 3, &mut rng);
        let (y_col, ops_col) = mttkrp_sym(&t, &x);
        let (y_fused, ops_fused) = mttkrp_sym_fused(&t, &x);
        assert_matrix_close(&y_col, &y_fused, 1e-10);
        assert_eq!(ops_col.ternary_mults, ops_fused.ternary_mults);
        // Fused sweeps the tetrahedron once, columnwise r times.
        assert_eq!(ops_fused.points * 3, ops_col.points);
    }

    #[test]
    fn single_column_is_sttsv() {
        let mut rng = StdRng::seed_from_u64(43);
        let n = 8;
        let t = random_symmetric(n, &mut rng);
        let x = random_factor(n, 1, &mut rng);
        let (y, _) = mttkrp_sym(&t, &x);
        let (y_ref, _) = crate::seq::sttsv_sym(&t, &x.col(0));
        for i in 0..n {
            assert!((y.get(i, 0) - y_ref[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_columns_yield_empty_result() {
        let t = random_symmetric(5, &mut StdRng::seed_from_u64(44));
        let x = Matrix::zeros(5, 0);
        let (y, ops) = mttkrp_sym(&t, &x);
        assert_eq!(y.cols(), 0);
        assert_eq!(ops.ternary_mults, 0);
    }
}
