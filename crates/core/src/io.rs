//! Binary serialization of packed symmetric tensors.
//!
//! A minimal self-describing little-endian format (no external
//! dependencies) so large tensors can be generated once and reused across
//! benchmark runs:
//!
//! ```text
//! magic  "SYMT3\0\0\0"   (8 bytes)
//! n      u64 LE
//! data   n(n+1)(n+2)/6 × f64 LE (packed lower tetrahedron)
//! ```

use crate::storage::SymTensor3;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SYMT3\0\0\0";

/// Serialization errors.
#[derive(Debug)]
pub enum TensorIoError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The header length disagrees with the payload.
    Truncated {
        /// Packed words the header promised.
        expected_words: usize,
    },
}

impl std::fmt::Display for TensorIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorIoError::Io(e) => write!(f, "I/O error: {e}"),
            TensorIoError::BadMagic => write!(f, "not a SYMT3 tensor stream"),
            TensorIoError::Truncated { expected_words } => {
                write!(f, "truncated stream: expected {expected_words} packed words")
            }
        }
    }
}

impl std::error::Error for TensorIoError {}

impl From<io::Error> for TensorIoError {
    fn from(e: io::Error) -> Self {
        TensorIoError::Io(e)
    }
}

/// Writes a tensor to any `Write` sink.
pub fn write_tensor<W: Write>(tensor: &SymTensor3, mut sink: W) -> Result<(), TensorIoError> {
    sink.write_all(MAGIC)?;
    sink.write_all(&(tensor.dim() as u64).to_le_bytes())?;
    for &v in tensor.packed() {
        sink.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a tensor from any `Read` source.
pub fn read_tensor<R: Read>(mut source: R) -> Result<SymTensor3, TensorIoError> {
    let mut magic = [0u8; 8];
    source.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TensorIoError::BadMagic);
    }
    let mut nb = [0u8; 8];
    source.read_exact(&mut nb)?;
    let n = u64::from_le_bytes(nb) as usize;
    let words = n * (n + 1) * (n + 2) / 6;
    let mut data = Vec::with_capacity(words);
    let mut buf = [0u8; 8];
    for _ in 0..words {
        source
            .read_exact(&mut buf)
            .map_err(|_| TensorIoError::Truncated { expected_words: words })?;
        data.push(f64::from_le_bytes(buf));
    }
    Ok(SymTensor3::from_packed(n, data))
}

/// Saves a tensor to a file (buffered).
pub fn save_tensor<P: AsRef<Path>>(tensor: &SymTensor3, path: P) -> Result<(), TensorIoError> {
    let file = std::fs::File::create(path)?;
    write_tensor(tensor, io::BufWriter::new(file))
}

/// Loads a tensor from a file (buffered).
pub fn load_tensor<P: AsRef<Path>>(path: P) -> Result<SymTensor3, TensorIoError> {
    let file = std::fs::File::open(path)?;
    read_tensor(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_symmetric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_through_memory() {
        let mut rng = StdRng::seed_from_u64(70);
        for n in [0usize, 1, 5, 20] {
            let t = random_symmetric(n, &mut rng);
            let mut buf = Vec::new();
            write_tensor(&t, &mut buf).unwrap();
            assert_eq!(buf.len(), 16 + 8 * t.packed_len());
            let back = read_tensor(buf.as_slice()).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let mut rng = StdRng::seed_from_u64(71);
        let t = random_symmetric(12, &mut rng);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("symtensor_io_test_{}.symt3", std::process::id()));
        save_tensor(&t, &path).unwrap();
        let back = load_tensor(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, t);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOTATNSR________".to_vec();
        assert!(matches!(read_tensor(buf.as_slice()), Err(TensorIoError::BadMagic)));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut rng = StdRng::seed_from_u64(72);
        let t = random_symmetric(6, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(matches!(read_tensor(buf.as_slice()), Err(TensorIoError::Truncated { .. })));
    }

    #[test]
    fn empty_stream_is_an_io_error() {
        let empty: &[u8] = &[];
        assert!(matches!(read_tensor(empty), Err(TensorIoError::Io(_))));
    }
}
