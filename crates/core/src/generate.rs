//! Workload generators: random symmetric tensors and odeco (orthogonally
//! decomposable) tensors with known ℤ-eigenpairs.
//!
//! Odeco tensors `𝓐 = Σ_ℓ λ_ℓ v_ℓ ∘ v_ℓ ∘ v_ℓ` with orthonormal `v_ℓ` are
//! the standard correctness workload for the higher-order power method: each
//! `(λ_ℓ, v_ℓ)` is a ℤ-eigenpair, and HOPM converges to one of them (for
//! generic starts, the one with the largest `|λ_ℓ|·|⟨v_ℓ, x₀⟩|` basin).

use crate::ops::{orthonormalize_columns, Matrix};
use crate::storage::SymTensor3;
use rand::Rng;

/// A uniformly random symmetric tensor with packed entries in `[-1, 1)`.
pub fn random_symmetric<R: Rng>(n: usize, rng: &mut R) -> SymTensor3 {
    let mut t = SymTensor3::zeros(n);
    for v in t.packed_mut() {
        *v = rng.gen::<f64>() * 2.0 - 1.0;
    }
    t
}

/// An odeco tensor together with its planted eigenpairs.
#[derive(Clone, Debug)]
pub struct OdecoTensor {
    /// The assembled symmetric tensor.
    pub tensor: SymTensor3,
    /// Eigenvalues `λ_ℓ`, sorted descending by absolute value.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors, `vectors[ℓ]` matching `eigenvalues[ℓ]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Builds a random odeco tensor `Σ_ℓ λ_ℓ v_ℓ∘v_ℓ∘v_ℓ` of dimension `n` with
/// `r ≤ n` terms. Eigenvalues are drawn from `[1, 2)` and sorted descending,
/// so `(λ₀, v₀)` is the dominant eigenpair HOPM should find from a start
/// correlated with `v₀`.
pub fn random_odeco<R: Rng>(n: usize, r: usize, rng: &mut R) -> OdecoTensor {
    assert!(r >= 1 && r <= n, "need 1 <= r <= n");
    let mut m = Matrix::zeros(n, r);
    for row in 0..n {
        for col in 0..r {
            m.set(row, col, rng.gen::<f64>() - 0.5);
        }
    }
    let q = orthonormalize_columns(&m);
    let mut eigenvalues: Vec<f64> = (0..r).map(|_| 1.0 + rng.gen::<f64>()).collect();
    eigenvalues.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
    let vectors: Vec<Vec<f64>> = (0..r).map(|c| q.col(c)).collect();

    let mut tensor = SymTensor3::zeros(n);
    for i in 0..n {
        for j in 0..=i {
            for k in 0..=j {
                let mut acc = 0.0;
                for (lam, v) in eigenvalues.iter().zip(&vectors) {
                    acc += lam * v[i] * v[j] * v[k];
                }
                tensor.set(i, j, k, acc);
            }
        }
    }
    OdecoTensor { tensor, eigenvalues, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{dot, norm2};
    use crate::seq::sttsv_sym;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_symmetric_is_symmetric_by_construction() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = random_symmetric(6, &mut rng);
        assert!(t.to_dense().is_symmetric(0.0));
    }

    #[test]
    fn odeco_eigenpairs_satisfy_eigen_equation() {
        // A ×₂ v ×₃ v = λ v for each planted pair.
        let mut rng = StdRng::seed_from_u64(6);
        let odeco = random_odeco(9, 4, &mut rng);
        for (lam, v) in odeco.eigenvalues.iter().zip(&odeco.vectors) {
            let (y, _) = sttsv_sym(&odeco.tensor, v);
            for i in 0..v.len() {
                assert!(
                    (y[i] - lam * v[i]).abs() < 1e-10,
                    "eigen equation fails at {i}: {} vs {}",
                    y[i],
                    lam * v[i]
                );
            }
        }
    }

    #[test]
    fn odeco_vectors_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(7);
        let odeco = random_odeco(8, 5, &mut rng);
        for a in 0..5 {
            for b in 0..5 {
                let d = dot(&odeco.vectors[a], &odeco.vectors[b]);
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10);
            }
        }
        for v in &odeco.vectors {
            assert!((norm2(v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn odeco_eigenvalues_sorted_descending() {
        let mut rng = StdRng::seed_from_u64(8);
        let odeco = random_odeco(10, 6, &mut rng);
        for w in odeco.eigenvalues.windows(2) {
            assert!(w[0].abs() >= w[1].abs());
        }
    }

    #[test]
    #[should_panic(expected = "1 <= r <= n")]
    fn rejects_too_many_terms() {
        let mut rng = StdRng::seed_from_u64(9);
        random_odeco(3, 4, &mut rng);
    }
}

/// The symmetric adjacency tensor of a 3-uniform hypergraph on `n`
/// vertices: `a_{ijk} = 1` for every permutation of each hyperedge
/// `{i, j, k}`, zero elsewhere. STTSV on this tensor is the "tensor times
/// same vector" kernel of hypergraph centrality computations (Benson-style
/// ℤ-eigenvector centrality), one of the applications motivating fast
/// STTSV (cf. Shivakumar et al., cited in the paper's introduction).
///
/// # Panics
/// Panics if an edge has repeated or out-of-range vertices.
pub fn hypergraph_adjacency(n: usize, edges: &[[usize; 3]]) -> SymTensor3 {
    let mut t = SymTensor3::zeros(n);
    for (e, edge) in edges.iter().enumerate() {
        let [a, b, c] = *edge;
        assert!(a < n && b < n && c < n, "edge {e} out of range");
        assert!(a != b && b != c && a != c, "edge {e} has repeated vertices");
        t.set(a, b, c, 1.0);
    }
    t
}

/// A random 3-uniform hypergraph with `m` distinct hyperedges.
pub fn random_hypergraph<R: Rng>(n: usize, m: usize, rng: &mut R) -> Vec<[usize; 3]> {
    assert!(n >= 3, "need at least 3 vertices");
    let max_edges = n * (n - 1) * (n - 2) / 6;
    assert!(m <= max_edges, "at most C(n,3) = {max_edges} distinct edges");
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let mut v = [rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(0..n)];
        v.sort_unstable();
        if v[0] != v[1] && v[1] != v[2] && seen.insert(v) {
            edges.push(v);
        }
    }
    edges
}

/// A banded symmetric tensor: entry `(i, j, k)` is nonzero iff
/// `max(i,j,k) − min(i,j,k) ≤ bandwidth`, with values decaying with the
/// spread. Models the locality structure of discretized operators.
pub fn banded_symmetric(n: usize, bandwidth: usize) -> SymTensor3 {
    let mut t = SymTensor3::zeros(n);
    for i in 0..n {
        for j in i.saturating_sub(bandwidth)..=i {
            for k in j.saturating_sub(bandwidth.saturating_sub(i - j))..=j {
                if i - k <= bandwidth {
                    t.set(i, j, k, 1.0 / (1.0 + (i - k) as f64));
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod workload_tests {
    use super::*;
    use crate::seq::sttsv_sym;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hypergraph_tensor_counts_wedges() {
        // STTSV with x = 1 gives twice the vertex degree in each slot:
        // y_i = Σ_{jk} a_{ijk} = 2·deg(i) (each edge {i,j,k} contributes
        // its two orderings (j,k) and (k,j)).
        let edges = [[0usize, 1, 2], [1, 2, 3], [0, 2, 3]];
        let t = hypergraph_adjacency(4, &edges);
        let (y, _) = sttsv_sym(&t, &[1.0; 4]);
        let degrees = [2.0, 2.0, 3.0, 2.0];
        for i in 0..4 {
            assert_eq!(y[i], 2.0 * degrees[i], "vertex {i}");
        }
    }

    #[test]
    fn random_hypergraph_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(9);
        let edges = random_hypergraph(12, 30, &mut rng);
        assert_eq!(edges.len(), 30);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 30, "edges must be distinct");
        for e in &edges {
            assert!(e[0] < e[1] && e[1] < e[2]);
        }
    }

    #[test]
    #[should_panic(expected = "repeated vertices")]
    fn degenerate_edge_rejected() {
        hypergraph_adjacency(5, &[[1, 1, 2]]);
    }

    #[test]
    fn banded_tensor_respects_band() {
        let n = 10;
        let w = 2;
        let t = banded_symmetric(n, w);
        for (i, j, k, v) in t.iter_lower() {
            let spread = i - k;
            if spread > w {
                assert_eq!(v, 0.0, "({i},{j},{k}) outside band must be zero");
            }
        }
        // Entries inside the band are populated.
        assert!(t.get(3, 2, 1) != 0.0);
        assert!(t.get(5, 5, 5) != 0.0);
        assert_eq!(t.get(9, 5, 0), 0.0);
    }
}
