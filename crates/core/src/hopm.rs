//! The higher-order power method (the paper's Algorithm 1) and its shifted
//! variant, whose bottleneck is the STTSV kernel this library optimizes.
//!
//! A ℤ-eigenpair of a symmetric 3-tensor is `(λ, x)` with `‖x‖ = 1` and
//! `𝓐 ×₂ x ×₃ x = λ x`. HOPM iterates `x ← normalize(𝓐 ×₂ x ×₃ x)`;
//! the shifted variant (S-HOPM, Kolda & Mayo) iterates
//! `x ← normalize(𝓐 ×₂ x ×₃ x + α x)`, which is guaranteed monotone for a
//! large enough shift `α`.

use crate::ops::{contract_all, norm2};
use crate::seq::{sttsv_sym, OpCount};
use crate::storage::SymTensor3;

/// Stopping controls for the power iterations.
#[derive(Clone, Copy, Debug)]
pub struct HopmOptions {
    /// Stop when `‖x_{t+1} − x_t‖ < tol` (sign-aligned).
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for HopmOptions {
    fn default() -> Self {
        HopmOptions { tol: 1e-12, max_iters: 1000 }
    }
}

/// Result of a power-method run.
#[derive(Clone, Debug)]
pub struct HopmResult {
    /// The eigenvalue estimate `λ = 𝓐 ×₁ x ×₂ x ×₃ x`.
    pub lambda: f64,
    /// The unit eigenvector estimate.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iters: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Final eigen-residual `‖𝓐 ×₂ x ×₃ x − λ x‖`.
    pub residual: f64,
    /// Accumulated STTSV work across all iterations (including the final
    /// residual evaluation): the §7.1 ternary-multiplication count, from
    /// which `flops = 3·ternary_mults`.
    pub ops: OpCount,
}

/// Algorithm 1: plain higher-order power method on a symmetric tensor.
///
/// # Panics
/// Panics if `x0` has length ≠ `tensor.dim()` or zero norm.
pub fn hopm(tensor: &SymTensor3, x0: &[f64], opts: HopmOptions) -> HopmResult {
    power_iterate(tensor, x0, 0.0, opts)
}

/// Shifted symmetric HOPM: iterates with `𝓐 ×₂ x ×₃ x + α x`. With
/// `α > 0` large enough the associated functional is convex on the sphere
/// and the iteration converges monotonically (S-HOPM).
pub fn shifted_hopm(tensor: &SymTensor3, x0: &[f64], alpha: f64, opts: HopmOptions) -> HopmResult {
    power_iterate(tensor, x0, alpha, opts)
}

fn power_iterate(tensor: &SymTensor3, x0: &[f64], alpha: f64, opts: HopmOptions) -> HopmResult {
    let n = tensor.dim();
    assert_eq!(x0.len(), n, "start vector length mismatch");
    let nrm0 = norm2(x0);
    assert!(nrm0 > 0.0, "start vector must be nonzero");
    let mut x: Vec<f64> = x0.iter().map(|&v| v / nrm0).collect();
    let mut iters = 0;
    let mut converged = false;
    let mut ops = OpCount::default();
    while iters < opts.max_iters {
        let (mut y, count) = sttsv_sym(tensor, &x);
        ops.absorb(&count);
        if alpha != 0.0 {
            for (yi, &xi) in y.iter_mut().zip(&x) {
                *yi += alpha * xi;
            }
        }
        let nrm = norm2(&y);
        if nrm == 0.0 {
            // x is in the kernel; λ = 0 and x is (vacuously) stationary.
            break;
        }
        for yi in &mut y {
            *yi /= nrm;
        }
        iters += 1;
        // Sign-aligned step difference (eigenvectors are sign-ambiguous for
        // the unshifted iteration when λ < 0).
        let diff_pos: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let diff_neg: f64 = x.iter().zip(&y).map(|(a, b)| (a + b) * (a + b)).sum::<f64>().sqrt();
        let diff = diff_pos.min(diff_neg);
        x = y;
        if diff < opts.tol {
            converged = true;
            break;
        }
    }
    let lambda = contract_all(tensor, &x);
    let (ax, count) = sttsv_sym(tensor, &x);
    ops.absorb(&count);
    let residual =
        ax.iter().zip(&x).map(|(a, xi)| (a - lambda * xi) * (a - lambda * xi)).sum::<f64>().sqrt();
    HopmResult { lambda, x, iters, converged, residual, ops }
}

/// A safe shift for S-HOPM: `α = (d − 1)·max|a_{ijk}|·n^{(d−1)/2}` style
/// bound specialized to `d = 3`; any `α` exceeding the spectral radius of
/// the Hessian works, and this crude bound always does.
pub fn safe_shift(tensor: &SymTensor3) -> f64 {
    let n = tensor.dim() as f64;
    let max_abs = tensor.packed().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    2.0 * max_abs * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_odeco, random_symmetric};
    use crate::ops::dot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hopm_recovers_dominant_odeco_eigenpair() {
        let mut rng = StdRng::seed_from_u64(21);
        let odeco = random_odeco(10, 4, &mut rng);
        // Start near the dominant eigenvector to fix the basin.
        let mut x0 = odeco.vectors[0].clone();
        x0[1] += 0.1;
        let res = hopm(&odeco.tensor, &x0, HopmOptions::default());
        assert!(res.converged, "HOPM did not converge");
        assert!(
            (res.lambda - odeco.eigenvalues[0]).abs() < 1e-8,
            "lambda {} vs {}",
            res.lambda,
            odeco.eigenvalues[0]
        );
        let align = dot(&res.x, &odeco.vectors[0]).abs();
        assert!(align > 1.0 - 1e-8, "eigenvector alignment {align}");
        assert!(res.residual < 1e-8);
    }

    #[test]
    fn hopm_finds_some_eigenpair_of_random_tensor() {
        // On a generic symmetric tensor, S-HOPM converges to *an*
        // eigenpair; verify the eigen equation holds at the fixed point.
        let mut rng = StdRng::seed_from_u64(22);
        let t = random_symmetric(8, &mut rng);
        let x0: Vec<f64> = (0..8).map(|i| ((i + 1) as f64).sin()).collect();
        let res =
            shifted_hopm(&t, &x0, safe_shift(&t), HopmOptions { tol: 1e-13, max_iters: 20000 });
        assert!(res.converged);
        assert!(res.residual < 1e-6, "residual {}", res.residual);
    }

    #[test]
    fn eigenvalue_of_rank_one_tensor() {
        // A = λ v∘v∘v: unique nonzero eigenpair is (λ, v).
        let n = 6;
        let mut rng = StdRng::seed_from_u64(23);
        let odeco = random_odeco(n, 1, &mut rng);
        let x0 = vec![1.0; n];
        // Generic start has nonzero overlap with v almost surely.
        let res = hopm(&odeco.tensor, &x0, HopmOptions::default());
        if res.converged {
            assert!((res.lambda - odeco.eigenvalues[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn result_is_unit_norm() {
        let mut rng = StdRng::seed_from_u64(24);
        let odeco = random_odeco(7, 3, &mut rng);
        let res = hopm(&odeco.tensor, &odeco.vectors[1].clone(), HopmOptions::default());
        assert!((crate::ops::norm2(&res.x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_tensor_terminates() {
        let t = SymTensor3::zeros(5);
        let res = hopm(&t, &[1.0, 0.0, 0.0, 0.0, 0.0], HopmOptions::default());
        assert_eq!(res.lambda, 0.0);
        assert!(res.iters <= 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_start_vector_panics() {
        let t = SymTensor3::zeros(3);
        hopm(&t, &[0.0; 3], HopmOptions::default());
    }

    #[test]
    fn ops_account_for_every_sttsv_call() {
        // (iters + 1) STTSV evaluations: one per iteration plus the final
        // residual check, each costing sym_ternary_mults(n).
        let mut rng = StdRng::seed_from_u64(25);
        let n = 7;
        let odeco = random_odeco(n, 3, &mut rng);
        let res = hopm(&odeco.tensor, &odeco.vectors[0].clone(), HopmOptions::default());
        let per_call = crate::seq::sym_ternary_mults(n);
        assert_eq!(res.ops.ternary_mults, (res.iters as u64 + 1) * per_call);
        assert_eq!(res.ops.flops(), 3 * res.ops.ternary_mults);
    }
}

/// Adaptive-shift power method (a lightweight take on Kolda–Mayo's GEAP
/// adaptive shifting): starts from a conservative shift and shrinks it
/// geometrically while the Rayleigh quotient `λ_t = 𝓐 x x x` increases
/// monotonically, doubling it back on any decrease. Large shifts guarantee
/// monotone convergence but slow it down (the iteration map flattens);
/// adapting recovers most of the unshifted method's speed while keeping
/// the monotone safety net.
pub fn adaptive_shifted_hopm(tensor: &SymTensor3, x0: &[f64], opts: HopmOptions) -> HopmResult {
    let n = tensor.dim();
    assert_eq!(x0.len(), n, "start vector length mismatch");
    let nrm0 = norm2(x0);
    assert!(nrm0 > 0.0, "start vector must be nonzero");
    let mut x: Vec<f64> = x0.iter().map(|&v| v / nrm0).collect();
    let alpha_max = safe_shift(tensor);
    let mut alpha = alpha_max;
    let mut prev_lambda = contract_all(tensor, &x);
    let mut iters = 0;
    let mut converged = false;
    let mut ops = OpCount::default();
    while iters < opts.max_iters {
        let (mut y, count) = sttsv_sym(tensor, &x);
        ops.absorb(&count);
        for (yi, &xi) in y.iter_mut().zip(&x) {
            *yi += alpha * xi;
        }
        let nrm = norm2(&y);
        if nrm == 0.0 {
            break;
        }
        for yi in &mut y {
            *yi /= nrm;
        }
        iters += 1;
        let lambda = contract_all(tensor, &y);
        if lambda + 1e-13 >= prev_lambda {
            // Monotone step: accept and relax the shift toward the raw
            // iteration (the safe shift is guaranteed monotone, so
            // backtracking below can always restore progress).
            let diff: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            x = y;
            prev_lambda = lambda;
            // Relax the shift, but keep it at the |λ| scale: below that the
            // fixed point can lose local stability and the iteration
            // cycles instead of converging.
            alpha = (alpha * 0.6).max(lambda.abs());
            if diff < opts.tol {
                converged = true;
                break;
            }
        } else {
            // Rejected: restore safety and retry from the same x.
            alpha = (alpha * 8.0).min(alpha_max);
        }
    }
    let lambda = contract_all(tensor, &x);
    let (ax, count) = sttsv_sym(tensor, &x);
    ops.absorb(&count);
    let residual =
        ax.iter().zip(&x).map(|(a, xi)| (a - lambda * xi) * (a - lambda * xi)).sum::<f64>().sqrt();
    HopmResult { lambda, x, iters, converged, residual, ops }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::generate::{random_odeco, random_symmetric};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adaptive_converges_on_random_tensors() {
        let mut rng = StdRng::seed_from_u64(26);
        for trial in 0..5 {
            let t = random_symmetric(8, &mut rng);
            let x0: Vec<f64> = (0..8).map(|i| ((i + trial + 1) as f64).sin()).collect();
            let opts = HopmOptions { tol: 1e-12, max_iters: 20000 };
            let res = adaptive_shifted_hopm(&t, &x0, opts);
            assert!(res.converged, "trial {trial}");
            assert!(res.residual < 1e-6, "trial {trial}: residual {}", res.residual);
        }
    }

    #[test]
    fn adaptive_is_no_slower_than_fixed_safe_shift() {
        let mut rng = StdRng::seed_from_u64(27);
        let t = random_symmetric(10, &mut rng);
        let x0: Vec<f64> = (0..10).map(|i| (i as f64 * 0.9).cos() + 0.2).collect();
        let opts = HopmOptions { tol: 1e-11, max_iters: 50000 };
        let fixed = shifted_hopm(&t, &x0, safe_shift(&t), opts);
        let adaptive = adaptive_shifted_hopm(&t, &x0, opts);
        assert!(fixed.converged && adaptive.converged);
        assert!(
            adaptive.iters <= fixed.iters,
            "adaptive {} iters vs fixed {} iters",
            adaptive.iters,
            fixed.iters
        );
    }

    #[test]
    fn adaptive_matches_plain_hopm_on_odeco() {
        let mut rng = StdRng::seed_from_u64(28);
        let odeco = random_odeco(9, 3, &mut rng);
        let mut x0 = odeco.vectors[0].clone();
        x0[2] += 0.1;
        let opts = HopmOptions::default();
        let res = adaptive_shifted_hopm(&odeco.tensor, &x0, opts);
        assert!(res.converged);
        assert!((res.lambda - odeco.eigenvalues[0]).abs() < 1e-8);
    }
}

/// Successive deflation for (near-)odeco tensors: finds `r` eigenpairs by
/// repeatedly running HOPM from several random starts, keeping the best
/// converged pair, and subtracting `λ·v∘v∘v`. For exactly odeco tensors
/// the deflated tensor remains odeco with the found pair removed, so this
/// recovers the entire planted decomposition.
pub fn deflate_odeco(
    tensor: &SymTensor3,
    r: usize,
    starts_per_round: usize,
    opts: HopmOptions,
    seed: u64,
) -> Vec<HopmResult> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = tensor.dim();
    assert!(starts_per_round >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut work = tensor.clone();
    let mut found = Vec::with_capacity(r);
    for _ in 0..r {
        let mut best: Option<HopmResult> = None;
        for _ in 0..starts_per_round {
            let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            let res = hopm(&work, &x0, opts);
            if !res.converged {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => res.lambda.abs() > b.lambda.abs(),
            };
            if better {
                best = Some(res);
            }
        }
        let Some(pair) = best else { break };
        // Deflate: A ← A − λ·v∘v∘v.
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=j {
                    let update = pair.lambda * pair.x[i] * pair.x[j] * pair.x[k];
                    work.add_assign(i, j, k, -update);
                }
            }
        }
        found.push(pair);
    }
    found
}

#[cfg(test)]
mod deflate_tests {
    use super::*;
    use crate::generate::random_odeco;
    use crate::ops::dot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deflation_recovers_all_planted_eigenpairs() {
        let mut rng = StdRng::seed_from_u64(30);
        let odeco = random_odeco(9, 3, &mut rng);
        let opts = HopmOptions { tol: 1e-12, max_iters: 2000 };
        let found = deflate_odeco(&odeco.tensor, 3, 6, opts, 777);
        assert_eq!(found.len(), 3, "all three pairs recovered");
        // Match each found pair to a distinct planted pair.
        let mut used = [false; 3];
        for pair in &found {
            let hit =
                odeco.eigenvalues.iter().zip(&odeco.vectors).enumerate().find(|(idx, (lam, v))| {
                    !used[*idx]
                        && (pair.lambda - **lam).abs() < 1e-6
                        && dot(&pair.x, v).abs() > 1.0 - 1e-6
                });
            let (idx, _) = hit.unwrap_or_else(|| {
                panic!("found pair λ = {} matches no planted pair", pair.lambda)
            });
            used[idx] = true;
        }
    }

    #[test]
    fn deflated_residual_tensor_is_small() {
        let mut rng = StdRng::seed_from_u64(31);
        let odeco = random_odeco(8, 2, &mut rng);
        let opts = HopmOptions { tol: 1e-13, max_iters: 3000 };
        let found = deflate_odeco(&odeco.tensor, 2, 6, opts, 778);
        assert_eq!(found.len(), 2);
        // Rebuild and compare.
        let n = 8;
        let mut rebuilt = SymTensor3::zeros(n);
        for pair in &found {
            for i in 0..n {
                for j in 0..=i {
                    for k in 0..=j {
                        rebuilt.add_assign(
                            i,
                            j,
                            k,
                            pair.lambda * pair.x[i] * pair.x[j] * pair.x[k],
                        );
                    }
                }
            }
        }
        let diff: f64 = rebuilt
            .packed()
            .iter()
            .zip(odeco.tensor.packed())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(diff < 1e-8, "reconstruction error {diff}");
    }
}
