//! Sequential STTSV kernels: the paper's Algorithm 3 and Algorithm 4.
//!
//! STTSV computes `y = 𝓐 ×₂ x ×₃ x`, i.e. `y_i = Σ_{j,k} a_{ijk} x_j x_k`.
//! The unit of work is the **ternary multiplication** `a_{ijk}·x_j·x_k`.
//!
//! * [`sttsv_naive`] (Algorithm 3) visits the full `n³` iteration space and
//!   performs `n³` ternary multiplications.
//! * [`sttsv_sym`] (Algorithm 4) visits only the lower tetrahedron
//!   (`n(n+1)(n+2)/6` points) and performs all updates an element
//!   contributes at once — `n²(n+1)/2` ternary multiplications, roughly half
//!   of Algorithm 3.
//!
//! Both return an [`OpCount`] so tests and benchmarks can verify the paper's
//! operation counts exactly.

use crate::storage::SymTensor3;

/// Exact operation counts for a kernel invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Ternary multiplications `a·x·x` performed (the paper's work unit).
    pub ternary_mults: u64,
    /// Iteration-space points visited.
    pub points: u64,
}

impl OpCount {
    /// Floating-point operations implied by the ternary-multiplication
    /// count: each `y += a·x·x` is two multiplies and one add, so
    /// `flops = 3 · ternary_mults`. (The symmetric kernel's occasional
    /// `2.0·a` scaling is folded into the same model — the paper's §7.1
    /// computation-cost formulas count ternary multiplications, and this is
    /// the standard flop conversion used when reporting them.)
    pub fn flops(&self) -> u64 {
        3 * self.ternary_mults
    }

    /// Componentwise sum — accumulate counts across kernel invocations
    /// (e.g. the STTSV calls of a HOPM iteration loop).
    pub fn merged(&self, other: &OpCount) -> OpCount {
        OpCount {
            ternary_mults: self.ternary_mults + other.ternary_mults,
            points: self.points + other.points,
        }
    }

    /// In-place [`OpCount::merged`].
    pub fn absorb(&mut self, other: &OpCount) {
        *self = self.merged(other);
    }
}

/// Algorithm 3: naive STTSV over the full cube, ignoring symmetry.
///
/// Performs exactly `n³` ternary multiplications.
pub fn sttsv_naive(tensor: &SymTensor3, x: &[f64]) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    for (i, yi) in y.iter_mut().enumerate() {
        for j in 0..n {
            for k in 0..n {
                *yi += tensor.get(i, j, k) * x[j] * x[k];
                ops.ternary_mults += 1;
                ops.points += 1;
            }
        }
    }
    (y, ops)
}

/// Algorithm 4: STTSV exploiting the symmetric structure.
///
/// Visits the lower tetrahedron `i ≥ j ≥ k` and, per element, performs every
/// update that element contributes to `y` (3 for strictly distinct indices,
/// 2 on non-central diagonals, 1 at the central diagonal). Performs exactly
/// `n²(n+1)/2` ternary multiplications.
///
/// ```
/// use symtensor_core::{SymTensor3, seq::sttsv_sym};
/// // A = v∘v∘v with v = (1, 2): y = (vᵀx)²·v.
/// let mut a = SymTensor3::zeros(2);
/// for i in 0..2 {
///     for j in 0..=i {
///         for k in 0..=j {
///             a.set(i, j, k, [1.0, 2.0][i] * [1.0, 2.0][j] * [1.0, 2.0][k]);
///         }
///     }
/// }
/// let (y, ops) = sttsv_sym(&a, &[1.0, 1.0]);
/// assert_eq!(y, vec![9.0, 18.0]);          // (1+2)² · v
/// assert_eq!(ops.ternary_mults, 2 * 2 * 3 / 2);
/// ```
pub fn sttsv_sym(tensor: &SymTensor3, x: &[f64]) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    for i in 0..n {
        for j in 0..=i {
            for k in 0..=j {
                let a = tensor.get_sorted(i, j, k);
                ops.points += 1;
                if i != j && j != k {
                    // Strictly lower tetrahedral: each of the three output
                    // slots receives the contribution of two permutations.
                    y[i] += 2.0 * a * x[j] * x[k];
                    y[j] += 2.0 * a * x[i] * x[k];
                    y[k] += 2.0 * a * x[i] * x[j];
                    ops.ternary_mults += 3;
                } else if i == j && j != k {
                    y[i] += 2.0 * a * x[j] * x[k];
                    y[k] += a * x[i] * x[j];
                    ops.ternary_mults += 2;
                } else if i != j && j == k {
                    y[i] += a * x[j] * x[k];
                    y[j] += 2.0 * a * x[i] * x[k];
                    ops.ternary_mults += 2;
                } else {
                    // Central diagonal i == j == k.
                    y[i] += a * x[j] * x[k];
                    ops.ternary_mults += 1;
                }
            }
        }
    }
    (y, ops)
}

/// The paper's count of ternary multiplications for Algorithm 3: `n³`.
pub fn naive_ternary_mults(n: usize) -> u64 {
    (n as u64).pow(3)
}

/// The paper's count of ternary multiplications for Algorithm 4:
/// `n²(n+1)/2`.
pub fn sym_ternary_mults(n: usize) -> u64 {
    let n = n as u64;
    n * n * (n + 1) / 2
}

/// Points in the lower tetrahedral iteration space: `n(n+1)(n+2)/6`.
pub fn lower_tetra_points(n: usize) -> u64 {
    let n = n as u64;
    n * (n + 1) * (n + 2) / 6
}

/// Points in the strict lower tetrahedron: `n(n−1)(n−2)/6`.
pub fn strict_lower_tetra_points(n: usize) -> u64 {
    let n = n as u64;
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_symmetric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (idx, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "index {idx}: {x} vs {y}");
        }
    }

    #[test]
    fn algorithms_agree_on_random_tensors() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 5, 8, 13, 21] {
            let t = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
            let (y_naive, _) = sttsv_naive(&t, &x);
            let (y_sym, _) = sttsv_sym(&t, &x);
            assert_close(&y_naive, &y_sym, 1e-12);
        }
    }

    #[test]
    fn operation_counts_match_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 4, 7, 10, 16] {
            let t = random_symmetric(n, &mut rng);
            let x = vec![1.0; n];
            let (_, naive_ops) = sttsv_naive(&t, &x);
            let (_, sym_ops) = sttsv_sym(&t, &x);
            assert_eq!(naive_ops.ternary_mults, naive_ternary_mults(n), "naive n={n}");
            assert_eq!(sym_ops.ternary_mults, sym_ternary_mults(n), "sym n={n}");
            assert_eq!(sym_ops.points, lower_tetra_points(n), "points n={n}");
        }
    }

    #[test]
    fn sym_does_roughly_half_the_work() {
        let n = 50;
        assert!(sym_ternary_mults(n) * 2 <= naive_ternary_mults(n) + naive_ternary_mults(n) / 10);
    }

    #[test]
    fn identity_like_tensor() {
        // a_{iii} = 1, zero elsewhere: y_i = x_i².
        let n = 6;
        let mut t = SymTensor3::zeros(n);
        for i in 0..n {
            t.set(i, i, i, 1.0);
        }
        let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let (y, _) = sttsv_sym(&t, &x);
        for i in 0..n {
            assert_eq!(y[i], x[i] * x[i]);
        }
    }

    #[test]
    fn rank_one_tensor_contracts_exactly() {
        // A = v∘v∘v  =>  y = (vᵀx)² v.
        let n = 8;
        let v: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sqrt()).collect();
        let mut t = SymTensor3::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=j {
                    t.set(i, j, k, v[i] * v[j] * v[k]);
                }
            }
        }
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let dot: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
        let (y, _) = sttsv_sym(&t, &x);
        for i in 0..n {
            assert!((y[i] - dot * dot * v[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_vector_gives_zero_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_symmetric(7, &mut rng);
        let (y, _) = sttsv_sym(&t, &[0.0; 7]);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linearity_in_the_tensor() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 6;
        let a = random_symmetric(n, &mut rng);
        let b = random_symmetric(n, &mut rng);
        let sum = SymTensor3::from_packed(
            n,
            a.packed().iter().zip(b.packed()).map(|(u, v)| u + v).collect(),
        );
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.5).collect();
        let (ya, _) = sttsv_sym(&a, &x);
        let (yb, _) = sttsv_sym(&b, &x);
        let (ysum, _) = sttsv_sym(&sum, &x);
        for i in 0..n {
            assert!((ysum[i] - ya[i] - yb[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn tiny_dimensions() {
        let t = SymTensor3::zeros(0);
        let (y, ops) = sttsv_sym(&t, &[]);
        assert!(y.is_empty());
        assert_eq!(ops.ternary_mults, 0);

        let mut t1 = SymTensor3::zeros(1);
        t1.set(0, 0, 0, 3.0);
        let (y1, ops1) = sttsv_sym(&t1, &[2.0]);
        assert_eq!(y1, vec![12.0]);
        assert_eq!(ops1.ternary_mults, 1);
    }
}

/// Cache-blocked Algorithm 4: identical arithmetic (same iteration points,
/// same case analysis, same ternary-multiplication count) executed in
/// tetrahedral-block order — blocks `(I ≥ J ≥ K)` of size `b`, all points
/// inside a block before the next. This is the sequential twin of the
/// parallel tetrahedral distribution: one block touches only `3b` entries
/// of each vector for up to `b³` tensor entries, which is what
/// `symtensor-cachesim` measures and the paper's Lemma 4.2 bounds.
///
/// Results can differ from [`sttsv_sym`] only by floating-point summation
/// order.
pub fn sttsv_sym_blocked(tensor: &SymTensor3, x: &[f64], b: usize) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    assert!(b >= 1, "block size must be positive");
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    let m = n.div_ceil(b);
    let range = |blk: usize| blk * b..((blk + 1) * b).min(n);
    for bi in 0..m {
        for bj in 0..=bi {
            for bk in 0..=bj {
                for i in range(bi) {
                    for j in range(bj) {
                        if j > i {
                            break;
                        }
                        for k in range(bk) {
                            if k > j {
                                break;
                            }
                            let a = tensor.get_sorted(i, j, k);
                            ops.points += 1;
                            if i != j && j != k {
                                y[i] += 2.0 * a * x[j] * x[k];
                                y[j] += 2.0 * a * x[i] * x[k];
                                y[k] += 2.0 * a * x[i] * x[j];
                                ops.ternary_mults += 3;
                            } else if i == j && j != k {
                                y[i] += 2.0 * a * x[j] * x[k];
                                y[k] += a * x[i] * x[j];
                                ops.ternary_mults += 2;
                            } else if i != j && j == k {
                                y[i] += a * x[j] * x[k];
                                y[j] += 2.0 * a * x[i] * x[k];
                                ops.ternary_mults += 2;
                            } else {
                                y[i] += a * x[j] * x[k];
                                ops.ternary_mults += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    (y, ops)
}

#[cfg(test)]
mod blocked_tests {
    use super::*;
    use crate::generate::random_symmetric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blocked_matches_rowmajor_for_all_block_sizes() {
        let mut rng = StdRng::seed_from_u64(60);
        for n in [1usize, 7, 16, 25] {
            let t = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
            let (y_ref, ops_ref) = sttsv_sym(&t, &x);
            for b in [1usize, 2, 3, 5, 8, n.max(1)] {
                let (y_blk, ops_blk) = sttsv_sym_blocked(&t, &x, b);
                assert_eq!(ops_blk, ops_ref, "n={n} b={b}: op counts must be identical");
                for i in 0..n {
                    assert!(
                        (y_blk[i] - y_ref[i]).abs() < 1e-12 * (1.0 + y_ref[i].abs()),
                        "n={n} b={b} y[{i}]"
                    );
                }
            }
        }
    }

    #[test]
    fn block_size_larger_than_n_degenerates_to_rowmajor() {
        let mut rng = StdRng::seed_from_u64(61);
        let n = 9;
        let t = random_symmetric(n, &mut rng);
        let x = vec![0.5; n];
        let (y_big, _) = sttsv_sym_blocked(&t, &x, 100);
        let (y_ref, _) = sttsv_sym(&t, &x);
        assert_eq!(y_big, y_ref);
    }
}
