//! Sequential STTSV kernels: the paper's Algorithm 3 and Algorithm 4.
//!
//! STTSV computes `y = 𝓐 ×₂ x ×₃ x`, i.e. `y_i = Σ_{j,k} a_{ijk} x_j x_k`.
//! The unit of work is the **ternary multiplication** `a_{ijk}·x_j·x_k`.
//!
//! * [`sttsv_naive`] (Algorithm 3) visits the full `n³` iteration space and
//!   performs `n³` ternary multiplications.
//! * [`sttsv_sym`] (Algorithm 4) visits only the lower tetrahedron
//!   (`n(n+1)(n+2)/6` points) and performs all updates an element
//!   contributes at once — `n²(n+1)/2` ternary multiplications, roughly half
//!   of Algorithm 3. Its implementation is a **flat-slab walk**: the packed
//!   layout `tet(i)+tri(j)+k` *is* the `(i ≥ j ≥ k)` iteration order, so the
//!   kernel marches a cursor straight through [`SymTensor3::packed`] and
//!   never evaluates the `packed_index` polynomial per point; the `i == j` /
//!   `j == k` diagonal cases are peeled out of the inner loop into per-row
//!   epilogues (see [`row_segment`]).
//! * [`sttsv_sym_ref`] is the straightforward per-point case-analysis
//!   kernel (one `packed_index` evaluation per tetrahedron point). It is the
//!   validation reference and the baseline the flat-slab rewrite is
//!   benchmarked against.
//! * [`sttsv_sym_multi`] batches `B` contractions against **one** pass over
//!   the packed slab — the serving/throughput path: the tensor (the big
//!   operand, `Θ(n³)` words) is streamed once and amortized across all
//!   vectors.
//!
//! All kernels return an [`OpCount`] so tests and benchmarks can verify the
//! paper's operation counts exactly. Shared-memory parallel variants
//! (`sttsv_sym_par`, `sttsv_sym_par_multi`) live in [`crate::par`].

use crate::storage::SymTensor3;

/// Exact operation counts for a kernel invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Ternary multiplications `a·x·x` performed (the paper's work unit).
    pub ternary_mults: u64,
    /// Iteration-space points visited.
    pub points: u64,
}

impl OpCount {
    /// Floating-point operations implied by the ternary-multiplication
    /// count: each `y += a·x·x` is two multiplies and one add, so
    /// `flops = 3 · ternary_mults`. (The symmetric kernel's occasional
    /// `2.0·a` scaling is folded into the same model — the paper's §7.1
    /// computation-cost formulas count ternary multiplications, and this is
    /// the standard flop conversion used when reporting them.)
    pub fn flops(&self) -> u64 {
        3 * self.ternary_mults
    }

    /// Componentwise sum — accumulate counts across kernel invocations
    /// (e.g. the STTSV calls of a HOPM iteration loop).
    pub fn merged(&self, other: &OpCount) -> OpCount {
        OpCount {
            ternary_mults: self.ternary_mults + other.ternary_mults,
            points: self.points + other.points,
        }
    }

    /// In-place [`OpCount::merged`].
    pub fn absorb(&mut self, other: &OpCount) {
        *self = self.merged(other);
    }
}

/// Algorithm 3: naive STTSV over the full cube, ignoring symmetry.
///
/// Performs exactly `n³` ternary multiplications.
pub fn sttsv_naive(tensor: &SymTensor3, x: &[f64]) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    for (i, yi) in y.iter_mut().enumerate() {
        for j in 0..n {
            for k in 0..n {
                *yi += tensor.get(i, j, k) * x[j] * x[k];
                ops.ternary_mults += 1;
                ops.points += 1;
            }
        }
    }
    (y, ops)
}

/// The Algorithm 4 updates for one contiguous run of `k`-values of packed
/// row `(i, j)` — the shared inner loop of every symmetric kernel in this
/// crate (flat, blocked, batched, and the parallel panels in
/// [`crate::par`]).
///
/// `slab` is `packed[tet(i)+tri(j)+k0 ..]` truncated to the run; it covers
/// global indices `(i, j, k)` for `k ∈ k0 .. k0+slab.len()`, with
/// `k0 + slab.len() ≤ j + 1`. The diagonal case analysis of Algorithm 4 is
/// peeled out of the per-point loop:
///
/// * `i > j`, `k < j` — strictly lower tetrahedral, 3 updates per point.
///   The `y[i]`/`y[j]` contributions share the dot product `Σ_k a·x_k`, so
///   the inner loop is one fused multiply pass over the slab.
/// * `i > j`, `k == j` — 2 updates (epilogue, at most once per row).
/// * `i == j`, `k < i` — 2 updates per point, same dot-product fusion.
/// * `i == j == k` — the central diagonal, 1 update (epilogue).
///
/// Returns the exact ternary-multiplication count (3/2/1 per point as
/// above), identical to what the per-point reference kernel counts.
#[inline(always)]
pub fn row_segment(slab: &[f64], i: usize, j: usize, k0: usize, x: &[f64], y: &mut [f64]) -> u64 {
    debug_assert!(j <= i && k0 + slab.len() <= j + 1);
    let xi = x[i];
    let xj = x[j];
    if i != j {
        // Strict ks: k in k0 .. min(k0+len, j).
        let strict = slab.len().min(j - k0);
        let pref = 2.0 * xi * xj;
        let mut dot = 0.0;
        for ((&a, &xv), yv) in
            slab[..strict].iter().zip(&x[k0..k0 + strict]).zip(&mut y[k0..k0 + strict])
        {
            dot += a * xv;
            *yv += pref * a;
        }
        y[i] += 2.0 * xj * dot;
        y[j] += 2.0 * xi * dot;
        let mut ternary = 3 * strict as u64;
        if k0 + slab.len() == j + 1 {
            // k == j epilogue: i > j == k.
            let a = slab[strict];
            y[i] += a * xj * xj;
            y[j] += 2.0 * a * xi * xj;
            ternary += 2;
        }
        ternary
    } else {
        // i == j row: ks k < i get 2 updates, the k == i point gets 1.
        let strict = slab.len().min(i - k0);
        let sq = xi * xi;
        let mut dot = 0.0;
        for ((&a, &xv), yv) in
            slab[..strict].iter().zip(&x[k0..k0 + strict]).zip(&mut y[k0..k0 + strict])
        {
            dot += a * xv;
            *yv += sq * a;
        }
        y[i] += 2.0 * xi * dot;
        let mut ternary = 2 * strict as u64;
        if k0 + slab.len() == i + 1 {
            // Central diagonal epilogue: i == j == k.
            y[i] += slab[strict] * sq;
            ternary += 1;
        }
        ternary
    }
}

/// Algorithm 4: STTSV exploiting the symmetric structure, as a flat-slab
/// walk over the packed lower tetrahedron.
///
/// Visits the lower tetrahedron `i ≥ j ≥ k` and, per element, performs every
/// update that element contributes to `y` (3 for strictly distinct indices,
/// 2 on non-central diagonals, 1 at the central diagonal). Performs exactly
/// `n²(n+1)/2` ternary multiplications. The cursor `pos` marches linearly
/// through [`SymTensor3::packed`]; no per-point index arithmetic.
///
/// ```
/// use symtensor_core::{SymTensor3, seq::sttsv_sym};
/// // A = v∘v∘v with v = (1, 2): y = (vᵀx)²·v.
/// let mut a = SymTensor3::zeros(2);
/// for i in 0..2 {
///     for j in 0..=i {
///         for k in 0..=j {
///             a.set(i, j, k, [1.0, 2.0][i] * [1.0, 2.0][j] * [1.0, 2.0][k]);
///         }
///     }
/// }
/// let (y, ops) = sttsv_sym(&a, &[1.0, 1.0]);
/// assert_eq!(y, vec![9.0, 18.0]);          // (1+2)² · v
/// assert_eq!(ops.ternary_mults, 2 * 2 * 3 / 2);
/// ```
pub fn sttsv_sym(tensor: &SymTensor3, x: &[f64]) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    let packed = tensor.packed();
    let mut pos = 0;
    for i in 0..n {
        for j in 0..=i {
            let row = &packed[pos..pos + j + 1];
            ops.ternary_mults += row_segment(row, i, j, 0, x, &mut y);
            ops.points += (j + 1) as u64;
            pos += j + 1;
        }
    }
    debug_assert_eq!(pos, packed.len());
    (y, ops)
}

/// The per-point reference implementation of Algorithm 4 (the seed kernel
/// the flat-slab [`sttsv_sym`] replaced): one [`SymTensor3::get_sorted`]
/// (and hence one `packed_index` polynomial evaluation) per tetrahedron
/// point, with the full diagonal case analysis inline.
///
/// Kept as the ground truth for property tests and as the baseline of the
/// `kernels` benchmark; results agree with [`sttsv_sym`] up to
/// floating-point summation order, and [`OpCount`]s are identical.
pub fn sttsv_sym_ref(tensor: &SymTensor3, x: &[f64]) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    for i in 0..n {
        for j in 0..=i {
            for k in 0..=j {
                let a = tensor.get_sorted(i, j, k);
                ops.points += 1;
                if i != j && j != k {
                    // Strictly lower tetrahedral: each of the three output
                    // slots receives the contribution of two permutations.
                    y[i] += 2.0 * a * x[j] * x[k];
                    y[j] += 2.0 * a * x[i] * x[k];
                    y[k] += 2.0 * a * x[i] * x[j];
                    ops.ternary_mults += 3;
                } else if i == j && j != k {
                    y[i] += 2.0 * a * x[j] * x[k];
                    y[k] += a * x[i] * x[j];
                    ops.ternary_mults += 2;
                } else if i != j && j == k {
                    y[i] += a * x[j] * x[k];
                    y[j] += 2.0 * a * x[i] * x[k];
                    ops.ternary_mults += 2;
                } else {
                    // Central diagonal i == j == k.
                    y[i] += a * x[j] * x[k];
                    ops.ternary_mults += 1;
                }
            }
        }
    }
    (y, ops)
}

/// Batched STTSV: contracts **one** flat-slab pass over the tensor against
/// `B = xs.len()` input vectors at once, returning the `B` outputs.
///
/// This is the serving/throughput kernel: the tensor (`n(n+1)(n+2)/6`
/// packed words, the dominant memory traffic) is streamed through the cache
/// hierarchy once and amortized over all `B` contractions, where `B`
/// independent [`sttsv_sym`] calls would stream it `B` times.
///
/// Per vector, the arithmetic is performed in exactly the order of
/// [`sttsv_sym`], so `ys[b]` is **bit-identical** to
/// `sttsv_sym(tensor, &xs[b]).0`.
///
/// The returned [`OpCount`] reports the batch totals: `ternary_mults` is
/// `B · n²(n+1)/2` (every contraction's multiplications really happen);
/// `points` is `n(n+1)(n+2)/6` — the tensor slab is visited **once**, which
/// is the entire point of batching.
pub fn sttsv_sym_multi(tensor: &SymTensor3, xs: &[Vec<f64>]) -> (Vec<Vec<f64>>, OpCount) {
    let n = tensor.dim();
    for (b, x) in xs.iter().enumerate() {
        assert_eq!(x.len(), n, "vector {b} length must match tensor dimension");
    }
    let mut ys = vec![vec![0.0; n]; xs.len()];
    let mut ops = OpCount::default();
    let packed = tensor.packed();
    let mut pos = 0;
    for i in 0..n {
        for j in 0..=i {
            let row = &packed[pos..pos + j + 1];
            for (x, y) in xs.iter().zip(&mut ys) {
                ops.ternary_mults += row_segment(row, i, j, 0, x, y);
            }
            ops.points += (j + 1) as u64;
            pos += j + 1;
        }
    }
    (ys, ops)
}

/// The paper's count of ternary multiplications for Algorithm 3: `n³`.
pub fn naive_ternary_mults(n: usize) -> u64 {
    (n as u64).pow(3)
}

/// The paper's count of ternary multiplications for Algorithm 4:
/// `n²(n+1)/2`.
pub fn sym_ternary_mults(n: usize) -> u64 {
    let n = n as u64;
    n * n * (n + 1) / 2
}

/// Points in the lower tetrahedral iteration space: `n(n+1)(n+2)/6`.
pub fn lower_tetra_points(n: usize) -> u64 {
    let n = n as u64;
    n * (n + 1) * (n + 2) / 6
}

/// Points in the strict lower tetrahedron: `n(n−1)(n−2)/6`.
pub fn strict_lower_tetra_points(n: usize) -> u64 {
    let n = n as u64;
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_symmetric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (idx, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "index {idx}: {x} vs {y}");
        }
    }

    #[test]
    fn algorithms_agree_on_random_tensors() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 5, 8, 13, 21] {
            let t = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
            let (y_naive, _) = sttsv_naive(&t, &x);
            let (y_sym, _) = sttsv_sym(&t, &x);
            assert_close(&y_naive, &y_sym, 1e-12);
        }
    }

    #[test]
    fn flat_slab_matches_reference_kernel() {
        let mut rng = StdRng::seed_from_u64(43);
        for n in [1usize, 2, 3, 4, 6, 9, 17, 32] {
            let t = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64 * 0.11).sin()).collect();
            let (y_ref, ops_ref) = sttsv_sym_ref(&t, &x);
            let (y_flat, ops_flat) = sttsv_sym(&t, &x);
            assert_eq!(ops_flat, ops_ref, "n={n}: OpCounts must be identical");
            assert_close(&y_ref, &y_flat, 1e-12);
        }
    }

    #[test]
    fn operation_counts_match_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 4, 7, 10, 16] {
            let t = random_symmetric(n, &mut rng);
            let x = vec![1.0; n];
            let (_, naive_ops) = sttsv_naive(&t, &x);
            let (_, sym_ops) = sttsv_sym(&t, &x);
            let (_, ref_ops) = sttsv_sym_ref(&t, &x);
            assert_eq!(naive_ops.ternary_mults, naive_ternary_mults(n), "naive n={n}");
            assert_eq!(sym_ops.ternary_mults, sym_ternary_mults(n), "sym n={n}");
            assert_eq!(sym_ops.points, lower_tetra_points(n), "points n={n}");
            assert_eq!(ref_ops, sym_ops, "reference kernel counts n={n}");
        }
    }

    #[test]
    fn sym_does_roughly_half_the_work() {
        let n = 50;
        assert!(sym_ternary_mults(n) * 2 <= naive_ternary_mults(n) + naive_ternary_mults(n) / 10);
    }

    #[test]
    fn identity_like_tensor() {
        // a_{iii} = 1, zero elsewhere: y_i = x_i².
        let n = 6;
        let mut t = SymTensor3::zeros(n);
        for i in 0..n {
            t.set(i, i, i, 1.0);
        }
        let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let (y, _) = sttsv_sym(&t, &x);
        for i in 0..n {
            assert_eq!(y[i], x[i] * x[i]);
        }
    }

    #[test]
    fn rank_one_tensor_contracts_exactly() {
        // A = v∘v∘v  =>  y = (vᵀx)² v.
        let n = 8;
        let v: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sqrt()).collect();
        let mut t = SymTensor3::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=j {
                    t.set(i, j, k, v[i] * v[j] * v[k]);
                }
            }
        }
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let dot: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
        let (y, _) = sttsv_sym(&t, &x);
        for i in 0..n {
            assert!((y[i] - dot * dot * v[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_vector_gives_zero_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_symmetric(7, &mut rng);
        let (y, _) = sttsv_sym(&t, &[0.0; 7]);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linearity_in_the_tensor() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 6;
        let a = random_symmetric(n, &mut rng);
        let b = random_symmetric(n, &mut rng);
        let sum = SymTensor3::from_packed(
            n,
            a.packed().iter().zip(b.packed()).map(|(u, v)| u + v).collect(),
        );
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.5).collect();
        let (ya, _) = sttsv_sym(&a, &x);
        let (yb, _) = sttsv_sym(&b, &x);
        let (ysum, _) = sttsv_sym(&sum, &x);
        for i in 0..n {
            assert!((ysum[i] - ya[i] - yb[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn tiny_dimensions() {
        let t = SymTensor3::zeros(0);
        let (y, ops) = sttsv_sym(&t, &[]);
        assert!(y.is_empty());
        assert_eq!(ops.ternary_mults, 0);

        let mut t1 = SymTensor3::zeros(1);
        t1.set(0, 0, 0, 3.0);
        let (y1, ops1) = sttsv_sym(&t1, &[2.0]);
        assert_eq!(y1, vec![12.0]);
        assert_eq!(ops1.ternary_mults, 1);
    }

    #[test]
    fn multi_is_bitwise_identical_to_single_calls() {
        let mut rng = StdRng::seed_from_u64(44);
        for n in [1usize, 5, 12, 23] {
            let t = random_symmetric(n, &mut rng);
            let xs: Vec<Vec<f64>> = (0..4)
                .map(|b| (0..n).map(|i| ((i + b * 7 + 1) as f64 * 0.19).sin()).collect())
                .collect();
            let (ys, ops) = sttsv_sym_multi(&t, &xs);
            assert_eq!(ys.len(), xs.len());
            for (b, x) in xs.iter().enumerate() {
                let (y_single, _) = sttsv_sym(&t, x);
                assert_eq!(ys[b], y_single, "n={n} vector {b} must match bitwise");
            }
            // Batch totals: B× the mults, 1× the slab points.
            assert_eq!(ops.ternary_mults, xs.len() as u64 * sym_ternary_mults(n));
            assert_eq!(ops.points, lower_tetra_points(n));
        }
    }

    #[test]
    fn multi_empty_batch() {
        let t = SymTensor3::zeros(5);
        let (ys, ops) = sttsv_sym_multi(&t, &[]);
        assert!(ys.is_empty());
        assert_eq!(ops.ternary_mults, 0);
        assert_eq!(ops.points, lower_tetra_points(5));
    }
}

/// Cache-blocked Algorithm 4: identical arithmetic points (same iteration
/// space, same case analysis, same ternary-multiplication count) executed
/// in tetrahedral-block order — blocks `(I ≥ J ≥ K)` of size `b`, all
/// points inside a block before the next. This is the sequential twin of
/// the parallel tetrahedral distribution: one block touches only `3b`
/// entries of each vector for up to `b³` tensor entries, which is what
/// `symtensor-cachesim` measures and the paper's Lemma 4.2 bounds.
///
/// Each `(i, j)` row intersects a block in one contiguous `k`-run of the
/// packed slab, so the inner loop is the same [`row_segment`] walk as
/// [`sttsv_sym`] — the only per-row index arithmetic is one `tet(i)+tri(j)`
/// base offset, amortized over the run. With `b ≥ n` there is a single
/// block covering every full row and the kernel degenerates to
/// [`sttsv_sym`] exactly (bit-identical output).
///
/// Results can differ from [`sttsv_sym`] only by floating-point summation
/// order (each row's dot product is accumulated per `k`-run).
pub fn sttsv_sym_blocked(tensor: &SymTensor3, x: &[f64], b: usize) -> (Vec<f64>, OpCount) {
    use crate::storage::{tet, tri};
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    assert!(b >= 1, "block size must be positive");
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    let packed = tensor.packed();
    let m = n.div_ceil(b);
    let range = |blk: usize| blk * b..((blk + 1) * b).min(n);
    for bi in 0..m {
        for bj in 0..=bi {
            for bk in 0..=bj {
                let k_lo = bk * b;
                for i in range(bi) {
                    let row_base = tet(i);
                    for j in range(bj) {
                        if j > i {
                            break;
                        }
                        if k_lo > j {
                            break;
                        }
                        let k_hi = ((bk + 1) * b).min(n).min(j + 1);
                        let base = row_base + tri(j);
                        let row = &packed[base + k_lo..base + k_hi];
                        ops.ternary_mults += row_segment(row, i, j, k_lo, x, &mut y);
                        ops.points += (k_hi - k_lo) as u64;
                    }
                }
            }
        }
    }
    (y, ops)
}

#[cfg(test)]
mod blocked_tests {
    use super::*;
    use crate::generate::random_symmetric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blocked_matches_rowmajor_for_all_block_sizes() {
        let mut rng = StdRng::seed_from_u64(60);
        for n in [1usize, 7, 16, 25] {
            let t = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
            let (y_ref, ops_ref) = sttsv_sym(&t, &x);
            for b in [1usize, 2, 3, 5, 8, n.max(1)] {
                let (y_blk, ops_blk) = sttsv_sym_blocked(&t, &x, b);
                assert_eq!(ops_blk, ops_ref, "n={n} b={b}: op counts must be identical");
                for i in 0..n {
                    assert!(
                        (y_blk[i] - y_ref[i]).abs() < 1e-12 * (1.0 + y_ref[i].abs()),
                        "n={n} b={b} y[{i}]"
                    );
                }
            }
        }
    }

    #[test]
    fn block_size_larger_than_n_degenerates_to_rowmajor() {
        let mut rng = StdRng::seed_from_u64(61);
        let n = 9;
        let t = random_symmetric(n, &mut rng);
        let x = vec![0.5; n];
        let (y_big, _) = sttsv_sym_blocked(&t, &x, 100);
        let (y_ref, _) = sttsv_sym(&t, &x);
        assert_eq!(y_big, y_ref);
    }

    #[test]
    fn blocked_matches_per_point_reference_counts() {
        let mut rng = StdRng::seed_from_u64(62);
        let n = 13;
        let t = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).cos()).collect();
        let (_, ops_ref) = sttsv_sym_ref(&t, &x);
        for b in [1usize, 4, 6, 13] {
            let (_, ops_blk) = sttsv_sym_blocked(&t, &x, b);
            assert_eq!(ops_blk, ops_ref, "b={b}");
        }
    }
}
