//! Packed symmetric matrices and SYMV — the 2-dimensional predecessors of
//! this library's tensors.
//!
//! The paper's tetrahedral partitioning extends the *triangle block
//! partitioning* that Beaumont et al. (SPAA 2022) and Al Daas et al.
//! introduced for symmetric **matrix** kernels (SYRK/SYMM/SYMV). This
//! module provides the matrix side so the 2-D scheme can live alongside
//! the 3-D one: packed lower-triangle storage (`n(n+1)/2` words) and the
//! symmetric matrix–vector product `y = A·x` in naive and
//! symmetry-exploiting forms with exact operation counts.

/// A symmetric `n × n` matrix stored as its packed lower triangle
/// (`a_{ij}` with `i ≥ j` at offset `i(i+1)/2 + j`).
#[derive(Clone, Debug, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// The zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymMatrix { n, data: vec![0.0; n * (n + 1) / 2] }
    }

    /// Wraps packed data (length must be `n(n+1)/2`).
    pub fn from_packed(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * (n + 1) / 2, "packed data has wrong length for n = {n}");
        SymMatrix { n, data }
    }

    /// Dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries, `n(n+1)/2`.
    #[inline]
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// The packed lower triangle.
    #[inline]
    pub fn packed(&self) -> &[f64] {
        &self.data
    }

    /// Mutable packed data.
    #[inline]
    pub fn packed_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at `(i, j)` in either order.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        self.data[hi * (hi + 1) / 2 + lo]
    }

    /// Sets the value at `(i, j)` (and `(j, i)`).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        self.data[hi * (hi + 1) / 2 + lo] = value;
    }

    /// Hot-path accessor for sorted indices `i ≥ j`.
    #[inline]
    pub fn get_sorted(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i >= j && i < self.n);
        self.data[i * (i + 1) / 2 + j]
    }
}

/// Naive SYMV over the full `n²` index square. Returns `(y, binary
/// multiplication count)` — the 2-D analogue of ternary multiplications.
pub fn symv_naive(matrix: &SymMatrix, x: &[f64]) -> (Vec<f64>, u64) {
    let n = matrix.dim();
    assert_eq!(x.len(), n);
    let mut y = vec![0.0; n];
    for (i, yi) in y.iter_mut().enumerate() {
        for (j, &xj) in x.iter().enumerate() {
            *yi += matrix.get(i, j) * xj;
        }
    }
    (y, (n * n) as u64)
}

/// Symmetry-exploiting SYMV: visits the lower triangle once, performing
/// both updates per strict element (the 2-D analogue of Algorithm 4).
pub fn symv_sym(matrix: &SymMatrix, x: &[f64]) -> (Vec<f64>, u64) {
    let n = matrix.dim();
    assert_eq!(x.len(), n);
    let mut y = vec![0.0; n];
    let mut count = 0u64;
    for i in 0..n {
        for j in 0..=i {
            let a = matrix.get_sorted(i, j);
            if i != j {
                y[i] += a * x[j];
                y[j] += a * x[i];
                count += 2;
            } else {
                y[i] += a * x[i];
                count += 1;
            }
        }
    }
    (y, count)
}

/// A uniformly random symmetric matrix with entries in `[-1, 1)`.
pub fn random_symmetric_matrix<R: rand::Rng>(n: usize, rng: &mut R) -> SymMatrix {
    let mut m = SymMatrix::zeros(n);
    for v in m.packed_mut() {
        *v = rng.gen::<f64>() * 2.0 - 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packed_index_roundtrip() {
        let n = 6;
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                m.set(i, j, (i * 10 + j) as f64);
            }
        }
        for i in 0..n {
            for j in 0..n {
                let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
                assert_eq!(m.get(i, j), (hi * 10 + lo) as f64);
            }
        }
    }

    #[test]
    fn symv_variants_agree() {
        let mut rng = StdRng::seed_from_u64(200);
        for n in [1usize, 3, 8, 17] {
            let m = random_symmetric_matrix(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
            let (y_naive, c_naive) = symv_naive(&m, &x);
            let (y_sym, c_sym) = symv_sym(&m, &x);
            assert_eq!(c_naive, (n * n) as u64);
            assert_eq!(c_sym, (n * n) as u64, "SYMV does the same mults, reads half the matrix");
            for i in 0..n {
                assert!((y_naive[i] - y_sym[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_matrix_symv() {
        let n = 5;
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        let x = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        let (y, _) = symv_sym(&m, &x);
        assert_eq!(y, x);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn from_packed_rejects_bad_length() {
        SymMatrix::from_packed(4, vec![0.0; 9]);
    }
}
