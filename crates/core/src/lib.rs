#![warn(missing_docs)]
//! Symmetric 3-tensor storage and sequential STTSV kernels.
//!
//! This crate provides everything below the parallel layer:
//!
//! * [`storage`] — packed lower-tetrahedron storage for fully symmetric
//!   3-tensors (`n(n+1)(n+2)/6` words instead of `n³`) and a dense tensor
//!   for cross-checking,
//! * [`seq`] — the paper's Algorithm 3 (naive STTSV, `n³` ternary
//!   multiplications) and Algorithm 4 (symmetry-exploiting STTSV,
//!   `n²(n+1)/2` ternary multiplications), with exact operation counting,
//! * [`ops`] — tensor-times-vector contractions and small dense matrix
//!   helpers,
//! * [`hopm`] — the higher-order power method (Algorithm 1) and its shifted
//!   variant for ℤ-eigenpairs,
//! * [`cp`] — the symmetric CP gradient (Algorithm 2),
//! * [`generate`] — random symmetric and odeco (orthogonally decomposable)
//!   tensor workload generators.

pub mod cp;
pub mod dsym;
pub mod generate;
pub mod hopm;
pub mod io;
pub mod mttkrp;
pub mod ops;
pub mod seq;
pub mod storage;
pub mod symmat;

pub use cp::cp_gradient;
pub use dsym::{sttsv_d_naive, sttsv_d_sym, SymTensorD};
pub use generate::{random_odeco, random_symmetric, OdecoTensor};
pub use hopm::{hopm, shifted_hopm, HopmOptions, HopmResult};
pub use mttkrp::{mttkrp_sym, mttkrp_sym_fused};
pub use ops::Matrix;
pub use seq::{sttsv_naive, sttsv_sym, OpCount};
pub use storage::{DenseTensor3, SymTensor3};
