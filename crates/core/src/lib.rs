#![warn(missing_docs)]
//! Symmetric 3-tensor storage and sequential STTSV kernels.
//!
//! This crate provides everything below the parallel layer:
//!
//! * [`storage`] — packed lower-tetrahedron storage for fully symmetric
//!   3-tensors (`n(n+1)(n+2)/6` words instead of `n³`) and a dense tensor
//!   for cross-checking,
//! * [`seq`] — the paper's Algorithm 3 (naive STTSV, `n³` ternary
//!   multiplications) and Algorithm 4 (symmetry-exploiting STTSV,
//!   `n²(n+1)/2` ternary multiplications) as flat-slab walks over the
//!   packed layout, plus blocked and batched (multi-vector) variants, with
//!   exact operation counting,
//! * [`par`] — shared-memory parallel STTSV over deterministic row panels
//!   on the `symtensor-pool` work-stealing pool,
//! * [`ops`] — tensor-times-vector contractions and small dense matrix
//!   helpers,
//! * [`hopm`] — the higher-order power method (Algorithm 1) and its shifted
//!   variant for ℤ-eigenpairs,
//! * [`cp`] — the symmetric CP gradient (Algorithm 2),
//! * [`generate`] — random symmetric and odeco (orthogonally decomposable)
//!   tensor workload generators.

pub mod cp;
pub mod dsym;
pub mod generate;
pub mod hopm;
pub mod io;
pub mod mttkrp;
pub mod ops;
pub mod par;
pub mod seq;
pub mod storage;
pub mod symmat;

pub use cp::cp_gradient;
pub use dsym::{sttsv_d_naive, sttsv_d_sym, SymTensorD};
pub use generate::{random_odeco, random_symmetric, OdecoTensor};
pub use hopm::{hopm, shifted_hopm, HopmOptions, HopmResult};
pub use mttkrp::{mttkrp_sym, mttkrp_sym_fused};
pub use ops::Matrix;
pub use par::{row_panels, sttsv_sym_par, sttsv_sym_par_multi, Pool};
pub use seq::{sttsv_naive, sttsv_sym, sttsv_sym_blocked, sttsv_sym_multi, sttsv_sym_ref, OpCount};
pub use storage::{DenseTensor3, SymTensor3};
