//! Shared-memory parallel STTSV kernels on the [`symtensor_pool`]
//! work-stealing pool.
//!
//! These sit *under* the distributed layer (`symtensor-parallel`): each
//! simulated rank — or a standalone serving process — can run its local
//! tetrahedral work across OS threads. The decomposition is **row panels**:
//! contiguous ranges of the slowest index `i`, each covering the packed
//! rows `(i, j)` for `j ≤ i` in full, so every panel is one contiguous
//! slice of [`SymTensor3::packed`] walked by the same flat cursor as
//! [`crate::seq::sttsv_sym`].
//!
//! # Determinism
//!
//! [`row_panels`] is a function of `n` **only** — never of the thread
//! count — and per-panel partial `y` vectors are combined with the fixed
//! pairwise [`tree_reduce`]. Results and [`OpCount`]s are therefore
//! bit-identical run-to-run *and across thread counts*; agreement with the
//! sequential [`crate::seq::sttsv_sym`] is up to floating-point summation
//! order only (identical [`OpCount`]s).

use crate::seq::{row_segment, OpCount};
use crate::storage::{tet, SymTensor3};
use std::ops::Range;
use symtensor_pool::tree_reduce;
pub use symtensor_pool::Pool;

/// Minimum tetrahedron points per panel: below this, the per-panel
/// bookkeeping (a full-length `y` accumulator + a reduction step) costs
/// more than the panel's arithmetic, so small problems get few panels.
const PANEL_MIN_POINTS: u64 = 2048;

/// Hard cap on the panel count, bounding reduction work and per-call
/// allocation (`panels · n` accumulator words) for huge `n`.
const MAX_PANELS: usize = 64;

/// Balanced row-panel decomposition of the lower tetrahedron `i ≥ j ≥ k`
/// for dimension `n`: contiguous `i`-ranges whose point counts
/// (`Σ (i+1)(i+2)/2`) are proportionally equal, cut greedily.
///
/// The decomposition depends only on `n` — not on thread count — which is
/// what makes the parallel kernels bit-deterministic across thread counts
/// (the reduction tree shape is fixed by the panel count). Panels are
/// non-empty, disjoint, in order, and cover `0..n`; there are at most
/// [`MAX_PANELS`] (64) of them and small tetrahedra get a single panel.
pub fn row_panels(n: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let total = crate::seq::lower_tetra_points(n);
    let panels =
        usize::try_from(total / PANEL_MIN_POINTS).unwrap_or(MAX_PANELS).clamp(1, MAX_PANELS).min(n);
    let mut out = Vec::with_capacity(panels);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut cut = 1u64;
    for i in 0..n {
        let iu = i as u64;
        acc += (iu + 1) * (iu + 2) / 2;
        // Close the current panel once it reaches its proportional share
        // of the total, leaving at least one row for every later panel.
        if out.len() + 1 < panels && i + 1 < n && acc * panels as u64 >= cut * total {
            out.push(start..i + 1);
            start = i + 1;
            cut += 1;
        }
    }
    out.push(start..n);
    out
}

/// One panel's flat-slab pass: rows `i ∈ rows`, all `(j, k)`, cursor
/// starting at `tet(rows.start)`; accumulates into a fresh full-length `y`.
fn panel_pass(tensor: &SymTensor3, x: &[f64], rows: Range<usize>) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    let packed = tensor.packed();
    let mut y = vec![0.0; n];
    let mut ops = OpCount::default();
    let mut pos = tet(rows.start);
    for i in rows {
        for j in 0..=i {
            let row = &packed[pos..pos + j + 1];
            ops.ternary_mults += row_segment(row, i, j, 0, x, &mut y);
            ops.points += (j + 1) as u64;
            pos += j + 1;
        }
    }
    (y, ops)
}

/// Merge two `(y, ops)` partials: elementwise add + [`OpCount::absorb`].
fn merge(
    (mut ya, mut oa): (Vec<f64>, OpCount),
    (yb, ob): (Vec<f64>, OpCount),
) -> (Vec<f64>, OpCount) {
    for (a, b) in ya.iter_mut().zip(&yb) {
        *a += b;
    }
    oa.absorb(&ob);
    (ya, oa)
}

/// Algorithm 4 STTSV parallelized over row panels on `pool`.
///
/// Each panel computes into its own full-length `y` accumulator (no
/// sharing, no atomics); partials are combined in fixed panel order by
/// [`tree_reduce`]. Output and [`OpCount`] are bit-identical run-to-run
/// and across thread counts (see module docs), and the [`OpCount`] equals
/// the sequential kernel's exactly: `n²(n+1)/2` ternary multiplications,
/// `n(n+1)(n+2)/6` points.
pub fn sttsv_sym_par(tensor: &SymTensor3, x: &[f64], pool: &Pool) -> (Vec<f64>, OpCount) {
    let n = tensor.dim();
    assert_eq!(x.len(), n, "vector length must match tensor dimension");
    let panels = row_panels(n);
    if panels.len() <= 1 {
        // Single panel: identical to the sequential walk, skip the scatter.
        return crate::seq::sttsv_sym(tensor, x);
    }
    let partials = pool.run_chunks(panels.len(), |p| panel_pass(tensor, x, panels[p].clone()));
    tree_reduce(partials, merge).expect("at least one panel")
}

/// One panel's batched pass: like [`panel_pass`] but contracting the slab
/// against every vector in `xs` (slab streamed once per panel).
fn panel_pass_multi(
    tensor: &SymTensor3,
    xs: &[Vec<f64>],
    rows: Range<usize>,
) -> (Vec<Vec<f64>>, OpCount) {
    let n = tensor.dim();
    let packed = tensor.packed();
    let mut ys = vec![vec![0.0; n]; xs.len()];
    let mut ops = OpCount::default();
    let mut pos = tet(rows.start);
    for i in rows {
        for j in 0..=i {
            let row = &packed[pos..pos + j + 1];
            for (x, y) in xs.iter().zip(&mut ys) {
                ops.ternary_mults += row_segment(row, i, j, 0, x, y);
            }
            ops.points += (j + 1) as u64;
            pos += j + 1;
        }
    }
    (ys, ops)
}

/// Batched parallel STTSV: row panels across `pool`, each panel streaming
/// its slab slice once against all `B = xs.len()` vectors — the
/// shared-memory serving path combining [`crate::seq::sttsv_sym_multi`]'s
/// tensor-traffic amortization with panel parallelism.
///
/// Per vector `b`, `ys[b]` is **bit-identical** to
/// `sttsv_sym_par(tensor, &xs[b], pool).0` (same panels, same reduction
/// tree), hence deterministic across runs and thread counts. [`OpCount`]:
/// `ternary_mults = B·n²(n+1)/2`, `points = n(n+1)(n+2)/6` (the slab is
/// traversed once, as in the sequential batched kernel).
pub fn sttsv_sym_par_multi(
    tensor: &SymTensor3,
    xs: &[Vec<f64>],
    pool: &Pool,
) -> (Vec<Vec<f64>>, OpCount) {
    let n = tensor.dim();
    for (b, x) in xs.iter().enumerate() {
        assert_eq!(x.len(), n, "vector {b} length must match tensor dimension");
    }
    let panels = row_panels(n);
    if panels.len() <= 1 {
        return crate::seq::sttsv_sym_multi(tensor, xs);
    }
    let partials =
        pool.run_chunks(panels.len(), |p| panel_pass_multi(tensor, xs, panels[p].clone()));
    tree_reduce(partials, |(mut ya, mut oa), (yb, ob)| {
        for (va, vb) in ya.iter_mut().zip(&yb) {
            for (a, b) in va.iter_mut().zip(vb) {
                *a += b;
            }
        }
        oa.absorb(&ob);
        (ya, oa)
    })
    .expect("at least one panel")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_symmetric;
    use crate::seq::{lower_tetra_points, sttsv_sym, sttsv_sym_multi, sym_ternary_mults};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn panels_partition_rows() {
        for n in [0usize, 1, 2, 3, 17, 64, 200, 513] {
            let panels = row_panels(n);
            if n == 0 {
                assert!(panels.is_empty());
                continue;
            }
            assert!(panels.len() <= MAX_PANELS);
            let mut next = 0usize;
            for r in &panels {
                assert_eq!(r.start, next, "n={n}: panels must be contiguous");
                assert!(r.start < r.end, "n={n}: panels must be non-empty");
                next = r.end;
            }
            assert_eq!(next, n, "n={n}: panels must cover 0..n");
        }
    }

    #[test]
    fn panels_are_balanced() {
        // No panel should exceed ~2x the ideal share (+ one row's weight
        // of greedy rounding slack) for sizes that actually split.
        for n in [100usize, 256, 400] {
            let panels = row_panels(n);
            assert!(panels.len() > 1, "n={n} should split");
            let total = lower_tetra_points(n);
            let ideal = total / panels.len() as u64;
            for r in &panels {
                let w: u64 = r.clone().map(|i| ((i as u64 + 1) * (i as u64 + 2)) / 2).sum();
                let max_row = (n as u64) * (n as u64 + 1) / 2;
                assert!(w <= 2 * ideal + max_row, "n={n} panel {r:?} weight {w} vs ideal {ideal}");
            }
        }
    }

    #[test]
    fn par_matches_seq_and_counts() {
        let mut rng = StdRng::seed_from_u64(70);
        let pool = Pool::new(4);
        for n in [1usize, 3, 9, 33, 64] {
            let t = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| ((i + 1) as f64 * 0.29).sin()).collect();
            let (y_seq, ops_seq) = sttsv_sym(&t, &x);
            let (y_par, ops_par) = sttsv_sym_par(&t, &x, &pool);
            assert_eq!(ops_par, ops_seq, "n={n}");
            assert_eq!(ops_par.ternary_mults, sym_ternary_mults(n));
            for i in 0..n {
                assert!(
                    (y_par[i] - y_seq[i]).abs() <= 1e-12 * (1.0 + y_seq[i].abs()),
                    "n={n} y[{i}]: {} vs {}",
                    y_par[i],
                    y_seq[i]
                );
            }
        }
    }

    #[test]
    fn par_is_bit_identical_across_thread_counts_and_runs() {
        let mut rng = StdRng::seed_from_u64(71);
        // n large enough that row_panels really splits.
        let n = 48;
        let t = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) as f64 * 0.13).cos()).collect();
        let (y_ref, ops_ref) = sttsv_sym_par(&t, &x, &Pool::new(1));
        for threads in [1usize, 2, 3, 5, 8] {
            let pool = Pool::new(threads);
            for run in 0..3 {
                let (y, ops) = sttsv_sym_par(&t, &x, &pool);
                assert_eq!(ops, ops_ref, "threads={threads} run={run}");
                for i in 0..n {
                    assert_eq!(
                        y[i].to_bits(),
                        y_ref[i].to_bits(),
                        "threads={threads} run={run} y[{i}]"
                    );
                }
            }
        }
    }

    #[test]
    fn par_multi_matches_par_per_vector() {
        let mut rng = StdRng::seed_from_u64(72);
        let n = 40;
        let t = random_symmetric(n, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..5).map(|b| (0..n).map(|i| ((i + 11 * b) as f64 * 0.17).sin()).collect()).collect();
        let pool = Pool::new(3);
        let (ys, ops) = sttsv_sym_par_multi(&t, &xs, &pool);
        assert_eq!(ys.len(), xs.len());
        for (b, x) in xs.iter().enumerate() {
            let (y_single, _) = sttsv_sym_par(&t, x, &pool);
            assert_eq!(ys[b], y_single, "vector {b} must match sttsv_sym_par bitwise");
        }
        assert_eq!(ops.ternary_mults, xs.len() as u64 * sym_ternary_mults(n));
        assert_eq!(ops.points, lower_tetra_points(n));
    }

    #[test]
    fn par_multi_agrees_with_seq_multi() {
        let mut rng = StdRng::seed_from_u64(73);
        let n = 29;
        let t = random_symmetric(n, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..3).map(|b| (0..n).map(|i| ((i * 2 + b) as f64 * 0.31).cos()).collect()).collect();
        let (ys_seq, ops_seq) = sttsv_sym_multi(&t, &xs);
        let (ys_par, ops_par) = sttsv_sym_par_multi(&t, &xs, &Pool::new(4));
        assert_eq!(ops_par, ops_seq);
        for b in 0..xs.len() {
            for i in 0..n {
                assert!(
                    (ys_par[b][i] - ys_seq[b][i]).abs() <= 1e-12 * (1.0 + ys_seq[b][i].abs()),
                    "b={b} y[{i}]"
                );
            }
        }
    }

    #[test]
    fn par_empty_and_tiny() {
        let pool = Pool::new(8);
        let t0 = SymTensor3::zeros(0);
        let (y0, ops0) = sttsv_sym_par(&t0, &[], &pool);
        assert!(y0.is_empty());
        assert_eq!(ops0, OpCount::default());

        let mut t1 = SymTensor3::zeros(1);
        t1.set(0, 0, 0, 2.0);
        let (y1, ops1) = sttsv_sym_par(&t1, &[3.0], &pool);
        assert_eq!(y1, vec![18.0]);
        assert_eq!(ops1.ternary_mults, 1);

        let (ys, ops) = sttsv_sym_par_multi(&t1, &[], &pool);
        assert!(ys.is_empty());
        assert_eq!(ops.ternary_mults, 0);
    }
}
