//! Contractions and small dense linear algebra used by the driver
//! algorithms (HOPM and the CP gradient).

use crate::storage::SymTensor3;

/// Tensor-times-vector in one mode: `(𝓐 ×_mode x)_{ik} = Σ_j a_{ijk} x_j`.
/// Because `𝓐` is fully symmetric the result is independent of `mode`; the
/// output is a symmetric `n × n` matrix returned densely row-major.
pub fn ttv(tensor: &SymTensor3, x: &[f64]) -> Vec<f64> {
    let n = tensor.dim();
    assert_eq!(x.len(), n);
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..=i {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += tensor.get(i, j, k) * xj;
            }
            out[i * n + k] = acc;
            out[k * n + i] = acc;
        }
    }
    out
}

/// Full contraction `𝓐 ×₁ x ×₂ x ×₃ x = Σ_{ijk} a_{ijk} x_i x_j x_k` — the
/// Rayleigh quotient numerator used to extract the eigenvalue in
/// Algorithm 1.
pub fn contract_all(tensor: &SymTensor3, x: &[f64]) -> f64 {
    let n = tensor.dim();
    assert_eq!(x.len(), n);
    let mut total = 0.0;
    // Use symmetry: each lower-tetra entry contributes with its multiplicity.
    for (i, j, k, a) in tensor.iter_lower() {
        let mult = crate::storage::multiplicity(i, j, k) as f64;
        total += mult * a * x[i] * x[j] * x[k];
    }
    total
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// A small dense row-major matrix, just enough linear algebra for
/// Algorithm 2 (Gram matrices, elementwise products, matmul) and for
/// generating orthonormal bases.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from equal-length rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix { rows: r, cols: c, data: rows.into_iter().flatten().collect() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Column `c` as a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Writes a vector into column `c`.
    pub fn set_col(&mut self, c: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows);
        for (r, &val) in v.iter().enumerate() {
            self.set(r, c, val);
        }
    }

    /// Gram matrix `AᵀA` (`cols × cols`).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for a in 0..self.cols {
            for b in 0..=a {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self.get(r, a) * self.get(r, b);
                }
                g.set(a, b, acc);
                g.set(b, a, acc);
            }
        }
        g
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for inner in 0..self.cols {
                let lhs = self.get(r, inner);
                if lhs == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += lhs * other.get(inner, c);
                }
            }
        }
        out
    }

    /// Elementwise subtraction `self − other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }
}

/// Gram–Schmidt orthonormalization of the columns of `m` (in place on a
/// copy); returns the orthonormal matrix. Columns that become numerically
/// zero cause a panic — callers supply random full-rank input.
pub fn orthonormalize_columns(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for c in 0..out.cols() {
        let mut v = out.col(c);
        for prev in 0..c {
            let u = out.col(prev);
            let proj = dot(&v, &u);
            for (vi, &ui) in v.iter_mut().zip(&u) {
                *vi -= proj * ui;
            }
        }
        let nrm = norm2(&v);
        assert!(nrm > 1e-12, "rank-deficient input to Gram-Schmidt");
        for vi in &mut v {
            *vi /= nrm;
        }
        out.set_col(c, &v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_symmetric;
    use crate::seq::sttsv_sym;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ttv_then_contract_matches_sttsv() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 7;
        let t = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        // (A ×₂ x ×₃ x)_i = Σ_k (A ×₂ x)_{ik} x_k.
        let m = ttv(&t, &x);
        let mut y = vec![0.0; n];
        for i in 0..n {
            for k in 0..n {
                y[i] += m[i * n + k] * x[k];
            }
        }
        let (y_ref, _) = sttsv_sym(&t, &x);
        for i in 0..n {
            assert!((y[i] - y_ref[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn contract_all_is_x_dot_sttsv() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 6;
        let t = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        let (y, _) = sttsv_sym(&t, &x);
        let expected = dot(&x, &y);
        assert!((contract_all(&t, &x) - expected).abs() < 1e-10);
    }

    #[test]
    fn gram_matrix() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = m.gram();
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut id = Matrix::zeros(2, 2);
        id.set(0, 0, 1.0);
        id.set(1, 1, 1.0);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn hadamard_squares() {
        let m = Matrix::from_rows(vec![vec![2.0, -3.0]]);
        let h = m.hadamard(&m);
        assert_eq!(h.get(0, 0), 4.0);
        assert_eq!(h.get(0, 1), 9.0);
    }

    #[test]
    fn orthonormalization_produces_identity_gram() {
        let mut rng = StdRng::seed_from_u64(13);
        use rand::Rng;
        let n = 8;
        let r = 4;
        let mut m = Matrix::zeros(n, r);
        for row in 0..n {
            for col in 0..r {
                m.set(row, col, rng.gen::<f64>() - 0.5);
            }
        }
        let q = orthonormalize_columns(&m);
        let g = q.gram();
        for a in 0..r {
            for b in 0..r {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((g.get(a, b) - expect).abs() < 1e-10, "gram[{a},{b}]");
            }
        }
    }
}
