//! The symmetric CP gradient (the paper's Algorithm 2).
//!
//! For `f(X) = (1/6)·‖𝓐 − Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ‖²` the gradient with respect to
//! the factor matrix `X ∈ ℝ^{n×r}` is computed as
//!
//! ```text
//! G = (XᵀX) ∗ (XᵀX)          (elementwise square of the Gram matrix)
//! y_ℓ = 𝓐 ×₂ x_ℓ ×₃ x_ℓ      (one STTSV per column — the bottleneck)
//! Y = X·G − [y₁ … y_r]
//! ```
//!
//! so the per-iteration cost of gradient-based symmetric CP methods is `r`
//! STTSV invocations, which is why the paper's communication-optimal STTSV
//! matters for CP as well as for eigenvalues.

use crate::ops::Matrix;
use crate::seq::sttsv_sym;
use crate::storage::SymTensor3;

/// Algorithm 2: gradient of the symmetric CP objective at factor `x_mat`
/// (`n × r`). Returns the `n × r` gradient matrix.
pub fn cp_gradient(tensor: &SymTensor3, x_mat: &Matrix) -> Matrix {
    let n = tensor.dim();
    assert_eq!(x_mat.rows(), n, "factor matrix must have n rows");
    let r = x_mat.cols();
    // G = (XᵀX) ∗ (XᵀX).
    let gram = x_mat.gram();
    let g = gram.hadamard(&gram);
    // Y_model = X·G.
    let model = x_mat.matmul(&g);
    // Y_data[:, ℓ] = 𝓐 ×₂ x_ℓ ×₃ x_ℓ.
    let mut data = Matrix::zeros(n, r);
    for l in 0..r {
        let xl = x_mat.col(l);
        let (yl, _) = sttsv_sym(tensor, &xl);
        data.set_col(l, &yl);
    }
    model.sub(&data)
}

/// The symmetric CP objective `f(X) = (1/6)·‖𝓐 − Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ‖²`,
/// evaluated densely over the lower tetrahedron with multiplicities.
pub fn cp_objective(tensor: &SymTensor3, x_mat: &Matrix) -> f64 {
    let n = tensor.dim();
    assert_eq!(x_mat.rows(), n);
    let r = x_mat.cols();
    let mut total = 0.0;
    for (i, j, k, a) in tensor.iter_lower() {
        let mut model = 0.0;
        for l in 0..r {
            model += x_mat.get(i, l) * x_mat.get(j, l) * x_mat.get(k, l);
        }
        let diff = a - model;
        total += crate::storage::multiplicity(i, j, k) as f64 * diff * diff;
    }
    total / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_odeco, random_symmetric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_factor<R: Rng>(n: usize, r: usize, rng: &mut R) -> Matrix {
        let mut m = Matrix::zeros(n, r);
        for row in 0..n {
            for col in 0..r {
                m.set(row, col, rng.gen::<f64>() - 0.5);
            }
        }
        m
    }

    #[test]
    fn gradient_vanishes_at_exact_decomposition() {
        // If A = Σ_ℓ v_ℓ∘v_ℓ∘v_ℓ with X = [√λ-scaled v's], grad must be ~0.
        let mut rng = StdRng::seed_from_u64(31);
        let odeco = random_odeco(8, 3, &mut rng);
        let mut x = Matrix::zeros(8, 3);
        for (l, (lam, v)) in odeco.eigenvalues.iter().zip(&odeco.vectors).enumerate() {
            let s = lam.cbrt();
            let col: Vec<f64> = v.iter().map(|&vi| s * vi).collect();
            x.set_col(l, &col);
        }
        let g = cp_gradient(&odeco.tensor, &x);
        assert!(g.frobenius_norm() < 1e-8, "gradient norm {}", g.frobenius_norm());
        assert!(cp_objective(&odeco.tensor, &x) < 1e-10);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(32);
        let n = 5;
        let r = 2;
        let t = random_symmetric(n, &mut rng);
        let x = random_factor(n, r, &mut rng);
        let g = cp_gradient(&t, &x);
        let h = 1e-6;
        for row in 0..n {
            for col in 0..r {
                let mut xp = x.clone();
                xp.set(row, col, x.get(row, col) + h);
                let mut xm = x.clone();
                xm.set(row, col, x.get(row, col) - h);
                let fd = (cp_objective(&t, &xp) - cp_objective(&t, &xm)) / (2.0 * h);
                assert!(
                    (g.get(row, col) - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "grad[{row},{col}] = {} vs fd {}",
                    g.get(row, col),
                    fd
                );
            }
        }
    }

    #[test]
    fn gradient_descent_decreases_objective() {
        let mut rng = StdRng::seed_from_u64(33);
        let odeco = random_odeco(6, 2, &mut rng);
        let mut x = random_factor(6, 2, &mut rng);
        let mut prev = cp_objective(&odeco.tensor, &x);
        let step = 0.05;
        for _ in 0..50 {
            let g = cp_gradient(&odeco.tensor, &x);
            for row in 0..6 {
                for col in 0..2 {
                    x.set(row, col, x.get(row, col) - step * g.get(row, col));
                }
            }
            let cur = cp_objective(&odeco.tensor, &x);
            assert!(cur <= prev + 1e-9, "objective increased: {prev} -> {cur}");
            prev = cur;
        }
    }
}

/// Options for [`cp_fit`].
#[derive(Clone, Copy, Debug)]
pub struct CpFitOptions {
    /// Stop when the gradient norm falls below this.
    pub grad_tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Initial step size for the backtracking line search.
    pub initial_step: f64,
}

impl Default for CpFitOptions {
    fn default() -> Self {
        CpFitOptions { grad_tol: 1e-9, max_iters: 500, initial_step: 0.5 }
    }
}

/// Result of a [`cp_fit`] run.
#[derive(Clone, Debug)]
pub struct CpFitResult {
    /// The fitted factor matrix.
    pub factors: Matrix,
    /// Final objective value.
    pub objective: f64,
    /// Final gradient norm.
    pub grad_norm: f64,
    /// Iterations executed.
    pub iters: usize,
    /// Whether `grad_tol` was reached.
    pub converged: bool,
    /// Objective trajectory (one entry per accepted iteration).
    pub history: Vec<f64>,
}

/// Gradient descent with Armijo backtracking on the symmetric CP objective
/// — the simplest complete driver built on Algorithm 2. Each iteration
/// costs `r` STTSV invocations (the gradient) plus cheap objective
/// evaluations during the line search.
pub fn cp_fit(tensor: &SymTensor3, x0: &Matrix, opts: CpFitOptions) -> CpFitResult {
    let n = tensor.dim();
    assert_eq!(x0.rows(), n, "factor matrix must have n rows");
    let r = x0.cols();
    let mut x = x0.clone();
    let mut objective = cp_objective(tensor, &x);
    let mut history = vec![objective];
    let mut step = opts.initial_step;
    let mut iters = 0;
    let mut converged = false;
    let mut grad_norm = f64::INFINITY;
    while iters < opts.max_iters {
        let g = cp_gradient(tensor, &x);
        grad_norm = g.frobenius_norm();
        if grad_norm < opts.grad_tol {
            converged = true;
            break;
        }
        // Armijo backtracking: f(x − s·g) ≤ f(x) − c·s·‖g‖².
        let c = 1e-4;
        let mut s = step;
        let mut accepted = false;
        for _ in 0..40 {
            let mut trial = x.clone();
            for row in 0..n {
                for col in 0..r {
                    trial.set(row, col, x.get(row, col) - s * g.get(row, col));
                }
            }
            let trial_obj = cp_objective(tensor, &trial);
            if trial_obj <= objective - c * s * grad_norm * grad_norm {
                x = trial;
                objective = trial_obj;
                accepted = true;
                break;
            }
            s *= 0.5;
        }
        iters += 1;
        if !accepted {
            // Step collapsed: we are at numerical stationarity.
            converged = grad_norm < opts.grad_tol * 1e3;
            break;
        }
        history.push(objective);
        // Gentle step growth so the search recovers after conservative
        // stretches.
        step = (s * 2.0).min(opts.initial_step * 4.0);
    }
    CpFitResult { factors: x, objective, grad_norm, iters, converged, history }
}

#[cfg(test)]
mod fit_tests {
    use super::*;
    use crate::generate::random_odeco;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cp_fit_recovers_planted_decomposition_from_perturbation() {
        let mut rng = StdRng::seed_from_u64(120);
        let odeco = random_odeco(10, 3, &mut rng);
        let mut x0 = Matrix::zeros(10, 3);
        for (l, (lam, v)) in odeco.eigenvalues.iter().zip(&odeco.vectors).enumerate() {
            let s = lam.cbrt();
            let col: Vec<f64> =
                v.iter().map(|&vi| s * vi + 0.05 * (rng.gen::<f64>() - 0.5)).collect();
            x0.set_col(l, &col);
        }
        let res = cp_fit(&odeco.tensor, &x0, CpFitOptions::default());
        assert!(res.objective < 1e-12, "objective {}", res.objective);
        // Monotone decrease.
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn cp_fit_reduces_objective_from_random_start() {
        let mut rng = StdRng::seed_from_u64(121);
        let odeco = random_odeco(8, 2, &mut rng);
        let mut x0 = Matrix::zeros(8, 2);
        for row in 0..8 {
            for col in 0..2 {
                x0.set(row, col, rng.gen::<f64>() - 0.5);
            }
        }
        let start = cp_objective(&odeco.tensor, &x0);
        let res =
            cp_fit(&odeco.tensor, &x0, CpFitOptions { max_iters: 200, ..CpFitOptions::default() });
        assert!(res.objective < start * 0.1, "{} -> {}", start, res.objective);
    }

    #[test]
    fn cp_fit_at_exact_solution_stops_immediately() {
        let mut rng = StdRng::seed_from_u64(122);
        let odeco = random_odeco(7, 2, &mut rng);
        let mut x0 = Matrix::zeros(7, 2);
        for (l, (lam, v)) in odeco.eigenvalues.iter().zip(&odeco.vectors).enumerate() {
            let s = lam.cbrt();
            let col: Vec<f64> = v.iter().map(|&vi| s * vi).collect();
            x0.set_col(l, &col);
        }
        let res = cp_fit(&odeco.tensor, &x0, CpFitOptions::default());
        assert!(res.converged);
        assert_eq!(res.iters, 0);
    }
}
