//! Property tests for the local STTSV kernel family: every variant — the
//! seed per-point reference, the flat-slab walk, the blocked kernel, the
//! batched multi-vector path and the work-stealing parallel panels — must
//! agree on adversarially drawn `(n, b, threads, batch)`, report identical
//! paper op counts, and the parallel path must be bit-deterministic across
//! runs and thread counts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::seq::{
    sttsv_naive, sttsv_sym, sttsv_sym_blocked, sttsv_sym_multi, sttsv_sym_ref,
};
use symtensor_core::{generate::random_symmetric, sttsv_sym_par, sttsv_sym_par_multi, Pool};

fn workload(n: usize, seed: u64) -> (symtensor_core::SymTensor3, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> =
        (0..n).map(|i| ((i * 13 + 7) as f64 * 0.011 + (seed % 97) as f64 * 0.003).sin()).collect();
    (tensor, x)
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Flat-slab, blocked and parallel kernels agree with the per-point
    /// reference to 1e-12 relative, with identical ternary-mult counts
    /// equal to the paper's n²(n+1)/2, on adversarial (n, b, threads).
    #[test]
    fn kernel_family_agrees_on_adversarial_shapes(
        n in 1usize..48,
        b in 1usize..24,
        threads in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let (tensor, x) = workload(n, seed);
        let (y_ref, c_ref) = sttsv_sym_ref(&tensor, &x);
        let (y_flat, c_flat) = sttsv_sym(&tensor, &x);
        let (y_blk, c_blk) = sttsv_sym_blocked(&tensor, &x, b);
        let pool = Pool::new(threads);
        let (y_par, c_par) = sttsv_sym_par(&tensor, &x, &pool);

        let n64 = n as u64;
        prop_assert_eq!(c_ref.ternary_mults, n64 * n64 * (n64 + 1) / 2);
        prop_assert_eq!(c_flat.ternary_mults, c_ref.ternary_mults);
        prop_assert_eq!(c_blk.ternary_mults, c_ref.ternary_mults);
        prop_assert_eq!(c_par.ternary_mults, c_ref.ternary_mults);
        prop_assert_eq!(c_flat.points, c_ref.points);
        prop_assert_eq!(c_blk.points, c_ref.points);
        prop_assert_eq!(c_par.points, c_ref.points);

        for i in 0..n {
            prop_assert!(close(y_ref[i], y_flat[i], 1e-12), "flat y[{}]", i);
            prop_assert!(close(y_ref[i], y_blk[i], 1e-12), "blocked y[{}]", i);
            prop_assert!(close(y_ref[i], y_par[i], 1e-12), "par y[{}]", i);
        }
    }

    /// The naive n³ kernel is the ground truth the symmetric family must
    /// reproduce (looser tolerance: completely different summation order).
    #[test]
    fn symmetric_kernels_match_naive(n in 1usize..32, seed in 0u64..1_000_000) {
        let (tensor, x) = workload(n, seed);
        let (y_naive, c_naive) = sttsv_naive(&tensor, &x);
        let (y_flat, _) = sttsv_sym(&tensor, &x);
        let n64 = n as u64;
        prop_assert_eq!(c_naive.ternary_mults, n64 * n64 * n64);
        for i in 0..n {
            prop_assert!(close(y_naive[i], y_flat[i], 1e-9), "y[{}]", i);
        }
    }

    /// The batched kernel is bit-identical per vector to the single-vector
    /// flat-slab kernel for any batch size, and counts the batch's work.
    #[test]
    fn batched_kernel_is_bitwise_per_vector(
        n in 1usize..40,
        batch in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let (tensor, _) = workload(n, seed);
        let xs: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|i| ((i * 5 + v * 17 + 1) as f64 * 0.019).cos()).collect())
            .collect();
        let (ys, count) = sttsv_sym_multi(&tensor, &xs);
        prop_assert_eq!(ys.len(), batch);
        let mut expect_mults = 0;
        for (v, x) in xs.iter().enumerate() {
            let (y_one, c_one) = sttsv_sym(&tensor, x);
            expect_mults += c_one.ternary_mults;
            for i in 0..n {
                prop_assert_eq!(ys[v][i].to_bits(), y_one[i].to_bits(), "vector {} y[{}]", v, i);
            }
        }
        prop_assert_eq!(count.ternary_mults, expect_mults);
    }

    /// The parallel kernel is bit-deterministic: run-to-run and across
    /// thread counts (fixed panel decomposition + tree reduction).
    #[test]
    fn parallel_kernel_is_bit_deterministic(n in 1usize..48, seed in 0u64..1_000_000) {
        let (tensor, x) = workload(n, seed);
        let baseline = sttsv_sym_par(&tensor, &x, &Pool::new(3)).0;
        for threads in [1usize, 2, 4, 7] {
            let pool = Pool::new(threads);
            for _run in 0..2 {
                let (y, _) = sttsv_sym_par(&tensor, &x, &pool);
                for i in 0..n {
                    prop_assert_eq!(
                        y[i].to_bits(),
                        baseline[i].to_bits(),
                        "threads {} y[{}]", threads, i
                    );
                }
            }
        }
    }

    /// The parallel batched kernel agrees per-vector with the parallel
    /// single-vector kernel bitwise, across thread counts.
    #[test]
    fn parallel_batched_matches_parallel_single(
        n in 1usize..36,
        batch in 1usize..4,
        threads in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let (tensor, _) = workload(n, seed);
        let xs: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|i| ((i * 7 + v * 3 + 2) as f64 * 0.021).sin()).collect())
            .collect();
        let pool = Pool::new(threads);
        let (ys, _) = sttsv_sym_par_multi(&tensor, &xs, &pool);
        for (v, x) in xs.iter().enumerate() {
            let (y_one, _) = sttsv_sym_par(&tensor, x, &pool);
            for i in 0..n {
                prop_assert_eq!(ys[v][i].to_bits(), y_one[i].to_bits(), "vector {} y[{}]", v, i);
            }
        }
    }
}
