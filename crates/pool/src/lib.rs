#![warn(missing_docs)]
//! A dependency-free scoped work-stealing thread pool with deterministic
//! reduction, in the same philosophy as the `shims/` crates: exactly the
//! API surface this workspace needs, built on `std` alone (the build
//! environment is offline, so no `rayon`/`crossbeam`).
//!
//! # Design
//!
//! Work is expressed as `chunks` numbered `0..c`: the caller picks the
//! decomposition (e.g. row-panels of a tetrahedron), the pool executes
//! `work(chunk)` once per chunk across its workers and returns the results
//! **in chunk order**, regardless of which worker computed what.
//!
//! * **Per-worker chunk deques** — each worker starts with a contiguous
//!   stripe of the chunk range in its own deque (good locality: stripes
//!   walk adjacent memory). A worker pops from the *front* of its own
//!   deque and, when empty, steals from the *back* of a victim's, so
//!   stolen work is the work its owner would have reached last.
//! * **Scoped execution** — workers are scoped threads spawned per call
//!   ([`std::thread::scope`]), so `work` may borrow from the caller's
//!   stack with no `'static` bounds and no channel plumbing. For the
//!   kernel sizes this workspace targets (≥ 10⁵ points per call) the
//!   spawn cost is noise; a persistent pool would buy nothing but
//!   complexity.
//! * **Deterministic reduction** — [`tree_reduce`] combines per-chunk
//!   results pairwise in fixed chunk order. Because the tree shape depends
//!   only on the chunk count — never on thread count or scheduling — a
//!   caller whose chunk decomposition is a function of the problem alone
//!   gets bit-identical floating-point results run-to-run *and across
//!   thread counts*.
//!
//! ```
//! use symtensor_pool::{Pool, tree_reduce};
//! let pool = Pool::new(4);
//! // Sum of squares over 0..1000, chunked by hundreds.
//! let partial = pool.run_chunks(10, |c| -> u64 {
//!     (c as u64 * 100..(c as u64 + 1) * 100).map(|v| v * v).sum()
//! });
//! let total = tree_reduce(partial, |a, b| a + b).unwrap();
//! assert_eq!(total, (0..1000u64).map(|v| v * v).sum());
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

pub(crate) mod sync;
use crate::sync::{AtomicU64, Ordering};

/// How many chunks a worker claims from its own deque per lock
/// acquisition. 1 keeps stealing granularity maximal; the deques are so
/// cheap (one uncontended `Mutex` lock per chunk) that batching is not
/// worth the imbalance it can cause.
const OWN_POP: usize = 1;

/// A free-list of reusable `Vec<f64>` scratch buffers.
///
/// The compute hot paths need per-worker partial accumulators every call;
/// allocating (and zero-filling freshly allocated pages of) those each
/// invocation is pure steady-state overhead. A `WorkspacePool` amortizes
/// it: [`WorkspacePool::lease_zeroed`] hands out a zeroed buffer, reusing
/// a previously returned one when its capacity suffices, and
/// [`WorkspacePool::give_back`] returns it for the next lease.
///
/// Two counters make the steady state observable (and testable):
/// * `lease_count` — total leases served;
/// * `fresh_count` — leases that had to **grow** a buffer (i.e. touched
///   the heap). In steady state this stays flat: after warm-up every
///   lease is served from the free list with sufficient capacity.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<Vec<f64>>>,
    leases: AtomicU64,
    fresh: AtomicU64,
    /// The request currently charged for leases, stored as `id + 1`
    /// (0 = untagged) so the untagged state needs no `Option` in an
    /// atomic.
    current_request: AtomicU64,
    request_leases: AtomicU64,
}

impl WorkspacePool {
    /// An empty workspace pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases a buffer of exactly `len` zeroed elements.
    ///
    /// Reuses a returned buffer when one is available (largest-capacity
    /// first would need a heap; plain LIFO is enough because the hot paths
    /// lease uniform sizes). Counts a *fresh* allocation whenever the
    /// served buffer's capacity had to grow.
    pub fn lease_zeroed(&self, len: usize) -> Vec<f64> {
        // ordering: Relaxed — independent monotone counters; nothing
        // synchronizes on them.
        self.leases.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — advisory tag; see `set_request`.
        if self.current_request.load(Ordering::Relaxed) != 0 {
            // ordering: Relaxed — monotone counter, same as `leases`.
            self.request_leases.fetch_add(1, Ordering::Relaxed);
        }
        // A poisoned free list only means some lease-holder panicked;
        // the list itself (a Vec of owned buffers) is still valid, so
        // recover it rather than cascading the abort.
        let mut buf = self.free.lock().unwrap_or_else(|p| p.into_inner()).pop().unwrap_or_default();
        if buf.capacity() < len {
            // ordering: Relaxed — monotone counter.
            self.fresh.fetch_add(1, Ordering::Relaxed);
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a leased buffer to the free list for reuse.
    pub fn give_back(&self, buf: Vec<f64>) {
        // Poison recovery: the free list stays structurally valid (see
        // `lease_zeroed`).
        self.free.lock().unwrap_or_else(|p| p.into_inner()).push(buf);
    }

    /// Total leases served since construction.
    pub fn lease_count(&self) -> u64 {
        // ordering: Relaxed — monotone counter read; staleness is fine.
        self.leases.load(Ordering::Relaxed)
    }

    /// Leases that required growing a buffer (touching the heap). Flat
    /// across iterations ⇔ allocation-free steady state.
    pub fn fresh_count(&self) -> u64 {
        // ordering: Relaxed — monotone counter read.
        self.fresh.load(Ordering::Relaxed)
    }

    /// Buffers currently sitting in the free list.
    pub fn pooled(&self) -> usize {
        // Poison recovery: see `lease_zeroed`.
        self.free.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Tags subsequent leases with serving request `id` — the batched
    /// serving driver sets this around each request's compute so pool
    /// activity is attributable per request.
    pub fn set_request(&self, id: u64) {
        // ordering: Relaxed — an advisory attribution tag, not a
        // synchronization edge; misattributing a racing lease is benign.
        self.current_request.store(id.saturating_add(1), Ordering::Relaxed);
    }

    /// Clears the request tag; subsequent leases are untagged.
    pub fn clear_request(&self) {
        // ordering: Relaxed — same advisory tag as `set_request`.
        self.current_request.store(0, Ordering::Relaxed);
    }

    /// The request currently charged for leases, if any.
    pub fn current_request(&self) -> Option<u64> {
        // ordering: Relaxed — advisory tag read.
        match self.current_request.load(Ordering::Relaxed) {
            0 => None,
            tagged => Some(tagged - 1),
        }
    }

    /// Leases served while a request tag was active.
    pub fn request_lease_count(&self) -> u64 {
        // ordering: Relaxed — monotone counter read.
        self.request_leases.load(Ordering::Relaxed)
    }
}

/// A work-stealing pool of `threads` workers.
///
/// The pool itself is tiny — it holds the thread count, cumulative
/// statistics and a [`WorkspacePool`] of reusable scratch buffers;
/// workers are scoped threads spawned per [`Pool::run_chunks`]
/// call so that work closures can borrow caller state.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    steals: AtomicU64,
    runs: AtomicU64,
    workspaces: WorkspacePool,
}

impl Pool {
    /// A pool that runs work on `threads` workers. `threads == 1` (or `0`,
    /// normalized to 1) executes inline on the calling thread with zero
    /// synchronization.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
            steals: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            workspaces: WorkspacePool::new(),
        }
    }

    /// The pool's shared [`WorkspacePool`] of reusable scratch buffers.
    #[inline]
    pub fn workspaces(&self) -> &WorkspacePool {
        &self.workspaces
    }

    /// Worker count this pool was built with.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative number of successful steals across all
    /// [`Pool::run_chunks`] calls (0 while everything stays balanced).
    pub fn steal_count(&self) -> u64 {
        // ordering: Relaxed — statistics counter read.
        self.steals.load(Ordering::Relaxed)
    }

    /// Cumulative number of `run_chunks` invocations.
    pub fn run_count(&self) -> u64 {
        // ordering: Relaxed — statistics counter read.
        self.runs.load(Ordering::Relaxed)
    }

    /// Executes `work(chunk)` for every `chunk in 0..chunks` across the
    /// pool's workers and returns the results **in chunk order**.
    ///
    /// Each worker starts with a contiguous stripe of chunks and steals
    /// from peers once its own stripe is drained. Every chunk is executed
    /// exactly once; which worker executes it is scheduling-dependent, but
    /// the returned `Vec` is always indexed by chunk, so callers composing
    /// results in chunk order are deterministic.
    ///
    /// # Panics
    /// Propagates the first panic raised inside `work`.
    pub fn run_chunks<T, F>(&self, chunks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // ordering: Relaxed — statistics counter.
        self.runs.fetch_add(1, Ordering::Relaxed);
        if chunks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(chunks);
        if workers <= 1 {
            return (0..chunks).map(work).collect();
        }

        // Per-worker deques seeded with contiguous stripes.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = w * chunks / workers;
                let hi = (w + 1) * chunks / workers;
                Mutex::new((lo..hi).collect())
            })
            .collect();
        let steals = AtomicU64::new(0);

        let mut slots: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let work = &work;
                    let steals = &steals;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, T)> = Vec::new();
                        loop {
                            // Drain our own deque front-first (stripe order).
                            let mut own = {
                                // Poison recovery: a panicking peer
                                // poisons the deques, but the chunk
                                // queues stay structurally valid and the
                                // panic itself is re-raised at `join`.
                                let mut dq = deques[w].lock().unwrap_or_else(|p| p.into_inner());
                                let take = OWN_POP.min(dq.len());
                                dq.drain(..take).collect::<Vec<_>>()
                            };
                            if !own.is_empty() {
                                for c in own.drain(..) {
                                    done.push((c, work(c)));
                                }
                                continue;
                            }
                            // Steal from the back of the first non-empty
                            // victim, scanning round-robin from our right
                            // neighbour so contention spreads out.
                            let mut stolen = None;
                            for off in 1..workers {
                                let victim = (w + off) % workers;
                                // Poison recovery: same as above.
                                if let Some(c) = deques[victim]
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .pop_back()
                                {
                                    stolen = Some(c);
                                    break;
                                }
                            }
                            match stolen {
                                Some(c) => {
                                    // ordering: Relaxed — statistics.
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    done.push((c, work(c)));
                                }
                                // All deques empty: any remaining chunks are
                                // already executing on other workers (chunks
                                // are fixed up-front, never re-enqueued), so
                                // this worker is finished.
                                None => break,
                            }
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                let done = match handle.join() {
                    Ok(done) => done,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                for (c, value) in done {
                    debug_assert!(slots[c].is_none(), "chunk {c} executed twice");
                    slots[c] = Some(value);
                }
            }
        });
        // ordering: Relaxed — statistics roll-up; the scope join above
        // already ordered the workers' writes.
        self.steals.fetch_add(steals.load(Ordering::Relaxed), Ordering::Relaxed);
        slots
            .into_iter()
            .enumerate()
            // lint: allow-panic — designed invariant: every chunk was
            // seeded into exactly one deque and each deque was drained.
            .map(|(c, s)| s.unwrap_or_else(|| panic!("chunk {c} never executed")))
            .collect()
    }

    /// [`Pool::run_chunks`] followed by a deterministic [`tree_reduce`] of
    /// the per-chunk results. `None` only when `chunks == 0`.
    pub fn map_reduce<T, F, R>(&self, chunks: usize, work: F, combine: R) -> Option<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        R: FnMut(T, T) -> T,
    {
        tree_reduce(self.run_chunks(chunks, work), combine)
    }
}

/// Pairwise tree reduction in fixed order: round 1 combines `(0,1)`,
/// `(2,3)`, …; round 2 combines the results of those pairs; and so on.
/// The association tree depends only on `items.len()`, so a fixed chunk
/// decomposition yields bit-identical floating-point reductions regardless
/// of how many threads produced the items. Returns `None` for no items.
pub fn tree_reduce<T, F>(mut items: Vec<T>, mut combine: F) -> Option<T>
where
    F: FnMut(T, T) -> T,
{
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_and_single_chunk() {
        let pool = Pool::new(4);
        let none: Vec<u32> = pool.run_chunks(0, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(pool.run_chunks(1, |c| c + 10), vec![10]);
    }

    #[test]
    fn zero_threads_normalizes_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run_chunks(3, |c| c), vec![0, 1, 2]);
    }

    #[test]
    fn results_are_in_chunk_order() {
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let got = pool.run_chunks(97, |c| c * c);
            let want: Vec<usize> = (0..97).map(|c| c * c).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = Pool::new(4);
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run_chunks(64, |c| counts[c].fetch_add(1, Ordering::SeqCst));
        for (c, count) in counts.iter().enumerate() {
            assert_eq!(count.load(Ordering::SeqCst), 1, "chunk {c}");
        }
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Front-loaded work: chunk 0 is much heavier than the rest. With a
        // contiguous-stripe seed, worker 0 owns the heavy chunk and the
        // other workers must steal to finish the stripe; assert the run
        // completes and (on any scheduler) the results stay correct.
        let pool = Pool::new(4);
        let got = pool.run_chunks(32, |c| {
            if c == 0 {
                // Busy work.
                let mut acc = 0u64;
                for i in 0..2_000_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                (c as u64) + (acc & 1)
            } else {
                c as u64
            }
        });
        for (c, &v) in got.iter().enumerate().skip(1) {
            assert_eq!(v, c as u64);
        }
    }

    #[test]
    fn tree_reduce_shape_is_fixed() {
        // Association: ((0+1)+(2+3)) + (4): verify with a non-associative
        // "combine" that records the tree.
        let items: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let tree = tree_reduce(items, |a, b| format!("({a}+{b})")).unwrap();
        assert_eq!(tree, "(((0+1)+(2+3))+4)");
        assert_eq!(tree_reduce(Vec::<u8>::new(), |a, _| a), None);
    }

    #[test]
    fn map_reduce_sums() {
        let pool = Pool::new(3);
        let total = pool.map_reduce(100, |c| c as u64, |a, b| a + b).unwrap();
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn float_reduction_is_identical_across_thread_counts() {
        // The per-chunk values are products of irrationals whose sum is
        // association-sensitive; the fixed tree must make every thread
        // count agree bitwise.
        let work = |c: usize| ((c as f64) * 0.7310585).sin() * 1.0e-3 + (c as f64).sqrt();
        let reference = tree_reduce(Pool::new(1).run_chunks(777, work), |a, b| a + b).unwrap();
        for threads in [2usize, 3, 5, 8] {
            let got = tree_reduce(Pool::new(threads).run_chunks(777, work), |a, b| a + b).unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn work_can_borrow_caller_state() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pool = Pool::new(4);
        let sums = pool.run_chunks(10, |c| data[c * 100..(c + 1) * 100].iter().sum::<f64>());
        let total: f64 = sums.iter().sum();
        assert_eq!(total, (0..1000).sum::<i64>() as f64);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        let pool = Pool::new(2);
        pool.run_chunks(8, |c| {
            if c == 5 {
                panic!("worker boom");
            }
            c
        });
    }

    #[test]
    fn workspace_pool_reuses_buffers() {
        let ws = WorkspacePool::new();
        let a = ws.lease_zeroed(64);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&v| v == 0.0));
        assert_eq!(ws.lease_count(), 1);
        assert_eq!(ws.fresh_count(), 1);
        ws.give_back(a);
        assert_eq!(ws.pooled(), 1);
        // Same-size lease reuses the buffer: no fresh allocation.
        let mut b = ws.lease_zeroed(64);
        assert_eq!(ws.lease_count(), 2);
        assert_eq!(ws.fresh_count(), 1);
        b[3] = 7.0;
        ws.give_back(b);
        // The returned buffer comes back zeroed on the next lease.
        let c = ws.lease_zeroed(64);
        assert!(c.iter().all(|&v| v == 0.0));
        ws.give_back(c);
        // Growing past capacity counts as fresh again.
        let d = ws.lease_zeroed(1 << 16);
        assert_eq!(ws.fresh_count(), 2);
        ws.give_back(d);
        // ... after which the large buffer serves small leases for free.
        let e = ws.lease_zeroed(64);
        assert_eq!(ws.fresh_count(), 2);
        ws.give_back(e);
    }

    #[test]
    fn request_tagging_attributes_leases() {
        let ws = WorkspacePool::new();
        assert_eq!(ws.current_request(), None);
        ws.give_back(ws.lease_zeroed(8));
        assert_eq!(ws.request_lease_count(), 0, "untagged leases are not charged");
        ws.set_request(0); // request id 0 is a valid, distinct tag
        assert_eq!(ws.current_request(), Some(0));
        ws.give_back(ws.lease_zeroed(8));
        ws.set_request(41);
        assert_eq!(ws.current_request(), Some(41));
        ws.give_back(ws.lease_zeroed(8));
        assert_eq!(ws.request_lease_count(), 2);
        ws.clear_request();
        assert_eq!(ws.current_request(), None);
        ws.give_back(ws.lease_zeroed(8));
        assert_eq!(ws.request_lease_count(), 2);
        assert_eq!(ws.lease_count(), 4);
    }

    #[test]
    fn pool_exposes_workspaces() {
        let pool = Pool::new(2);
        let w = pool.workspaces().lease_zeroed(8);
        pool.workspaces().give_back(w);
        assert_eq!(pool.workspaces().lease_count(), 1);
        assert_eq!(pool.workspaces().pooled(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let pool = Pool::new(2);
        pool.run_chunks(4, |c| c);
        pool.run_chunks(4, |c| c);
        assert_eq!(pool.run_count(), 2);
        // Steal count is scheduling-dependent; it must at least be readable.
        let _ = pool.steal_count();
    }
}
