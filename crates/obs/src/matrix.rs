//! The P×P communication matrix: words and messages per (src, dst) pair.
//!
//! Built from the timestamped `Send` events of a traced run. Row marginals
//! (words leaving a rank) and column marginals (words arriving at a rank)
//! must reconcile **exactly** with the [`CostReport`] counters maintained on
//! the send/recv hot path — [`CommMatrix::reconcile`] checks this, and the
//! integration tests assert it for Algorithm 5 runs.

use crate::json::Value;
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::{CommEvent, CostReport};

/// Dense P×P matrix of traffic, in words and message counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommMatrix {
    p: usize,
    /// `words[src * p + dst]`.
    words: Vec<u64>,
    /// `msgs[src * p + dst]`.
    msgs: Vec<u64>,
}

/// A discrepancy between the matrix marginals and a [`CostReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReconcileError {
    /// Rank whose counters disagree.
    pub rank: usize,
    /// Quantity name (`words_sent`, `msgs_recv`, …).
    pub quantity: &'static str,
    /// Value derived from the matrix.
    pub from_matrix: u64,
    /// Value recorded in the cost report.
    pub from_report: u64,
}

impl std::fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {}: {} disagrees (matrix {}, report {})",
            self.rank, self.quantity, self.from_matrix, self.from_report
        )
    }
}

impl std::error::Error for ReconcileError {}

impl CommMatrix {
    /// An all-zero P×P matrix.
    pub fn new(p: usize) -> Self {
        CommMatrix { p, words: vec![0; p * p], msgs: vec![0; p * p] }
    }

    /// Builds the matrix from per-rank event logs (indexed by rank, as
    /// returned by [`symtensor_mpsim::Universe::run_traced`]). Only `Send`
    /// events contribute; in the simulator every send is eventually
    /// received, so using sends avoids double counting.
    pub fn from_traces(traces: &[Vec<CommEvent>]) -> Self {
        let p = traces.len();
        let mut m = CommMatrix::new(p);
        for (src, events) in traces.iter().enumerate() {
            for event in events {
                if let CommEventKind::Send { dst, words, .. } = event.kind {
                    m.add(src, dst, words);
                }
            }
        }
        m
    }

    /// Records one message of `words` words from `src` to `dst`.
    pub fn add(&mut self, src: usize, dst: usize, words: u64) {
        self.words[src * self.p + dst] += words;
        self.msgs[src * self.p + dst] += 1;
    }

    /// Number of ranks P.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Words shipped from `src` to `dst` over the whole run.
    pub fn words(&self, src: usize, dst: usize) -> u64 {
        self.words[src * self.p + dst]
    }

    /// Messages shipped from `src` to `dst`.
    pub fn msgs(&self, src: usize, dst: usize) -> u64 {
        self.msgs[src * self.p + dst]
    }

    /// Row marginal: total words sent by `src`.
    pub fn row_words(&self, src: usize) -> u64 {
        self.words[src * self.p..(src + 1) * self.p].iter().sum()
    }

    /// Column marginal: total words received by `dst`.
    pub fn col_words(&self, dst: usize) -> u64 {
        (0..self.p).map(|src| self.words[src * self.p + dst]).sum()
    }

    /// Row marginal in messages.
    pub fn row_msgs(&self, src: usize) -> u64 {
        self.msgs[src * self.p..(src + 1) * self.p].iter().sum()
    }

    /// Column marginal in messages.
    pub fn col_msgs(&self, dst: usize) -> u64 {
        (0..self.p).map(|src| self.msgs[src * self.p + dst]).sum()
    }

    /// Total words across all pairs.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }

    /// Checks that every rank's row/column marginals equal the hot-path
    /// counters in `report` exactly (words and messages, sent and
    /// received). Returns the first discrepancy found.
    pub fn reconcile(&self, report: &CostReport) -> Result<(), ReconcileError> {
        if report.per_rank.len() != self.p {
            return Err(ReconcileError {
                rank: 0,
                quantity: "rank count",
                from_matrix: self.p as u64,
                from_report: report.per_rank.len() as u64,
            });
        }
        for (rank, cost) in report.per_rank.iter().enumerate() {
            let checks = [
                ("words_sent", self.row_words(rank), cost.words_sent),
                ("words_recv", self.col_words(rank), cost.words_recv),
                ("msgs_sent", self.row_msgs(rank), cost.msgs_sent),
                ("msgs_recv", self.col_msgs(rank), cost.msgs_recv),
            ];
            for (quantity, from_matrix, from_report) in checks {
                if from_matrix != from_report {
                    return Err(ReconcileError { rank, quantity, from_matrix, from_report });
                }
            }
        }
        Ok(())
    }

    /// JSON export: `{"p": P, "words": [[...]], "msgs": [[...]]}` with
    /// row-major nested arrays.
    pub fn to_json(&self) -> Value {
        let rows = |data: &[u64]| {
            Value::Array(
                (0..self.p)
                    .map(|src| {
                        Value::Array(
                            (0..self.p).map(|dst| data[src * self.p + dst].into()).collect(),
                        )
                    })
                    .collect(),
            )
        };
        Value::object()
            .with("p", self.p)
            .with("words", rows(&self.words))
            .with("msgs", rows(&self.msgs))
    }

    /// Plain-text rendering (words only), for terminal display.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let width = self.words.iter().map(|w| w.to_string().len()).max().unwrap_or(1).max(4);
        let mut out = String::new();
        let _ = write!(out, "{:>6} ", "src\\dst");
        for dst in 0..self.p {
            let _ = write!(out, "{dst:>width$} ");
        }
        let _ = writeln!(out, "{:>width$}", "Σrow");
        for src in 0..self.p {
            let _ = write!(out, "{src:>6} ");
            for dst in 0..self.p {
                let _ = write!(out, "{:>width$} ", self.words(src, dst));
            }
            let _ = writeln!(out, "{:>width$}", self.row_words(src));
        }
        let _ = write!(out, "{:>6} ", "Σcol");
        for dst in 0..self.p {
            let _ = write!(out, "{:>width$} ", self.col_words(dst));
        }
        let _ = writeln!(out, "{:>width$}", self.total_words());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    fn ring_run(p: usize) -> (CostReport, Vec<Vec<CommEvent>>) {
        let (_, report, traces) = Universe::new(p).run_traced(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, vec![0.0; 2 + comm.rank()]);
            comm.recv(prev, 0).unwrap();
        });
        (report, traces)
    }

    #[test]
    fn matrix_matches_ring_topology() {
        let (report, traces) = ring_run(4);
        let m = CommMatrix::from_traces(&traces);
        assert_eq!(m.words(0, 1), 2);
        assert_eq!(m.words(3, 0), 5);
        assert_eq!(m.words(0, 2), 0);
        assert_eq!(m.msgs(0, 1), 1);
        m.reconcile(&report).unwrap();
        assert_eq!(m.total_words(), report.total_words_sent());
    }

    #[test]
    fn reconcile_detects_missing_traffic() {
        let (report, traces) = ring_run(3);
        let mut m = CommMatrix::from_traces(&traces);
        m.add(0, 2, 10); // phantom message not in the report
        let e = m.reconcile(&report).unwrap_err();
        assert_eq!(e.quantity, "words_sent");
        assert_eq!(e.rank, 0);
    }

    #[test]
    fn json_shape() {
        let (_, traces) = ring_run(2);
        let m = CommMatrix::from_traces(&traces);
        let v = m.to_json();
        assert_eq!(v.get("p").unwrap().as_u64(), Some(2));
        let words = v.get("words").unwrap().as_array().unwrap();
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].as_array().unwrap()[1].as_u64(), Some(2));
    }

    #[test]
    fn text_render_includes_marginals() {
        let (_, traces) = ring_run(2);
        let m = CommMatrix::from_traces(&traces);
        let text = m.render_text();
        assert!(text.contains("Σrow"));
        assert!(text.contains("Σcol"));
    }
}
