//! Request-level SLO readouts for the batched serving path: per-span
//! latency histograms (queue wait, batch formation, compute, exchange and
//! end-to-end) with p50/p90/p99 quantiles and **exemplars** — each bucket
//! remembers one concrete request that landed in it, so a p99 readout
//! links to a request id whose flight-recorder trace can be pulled up.

use crate::histogram::{bucket_index, Histogram};
use crate::json::Value;

/// One concrete observation kept as the representative of a bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The request id that produced the observation.
    pub request: u64,
    /// The observed value (nanoseconds).
    pub value: u64,
}

/// A [`Histogram`] that additionally keeps, per power-of-two bucket, the
/// worst (largest-valued) request that landed there. The quantile engine
/// is the shared one, so the exemplar for a quantile is always drawn from
/// exactly the bucket the quantile readout resolves to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExemplarHistogram {
    /// The underlying latency histogram.
    pub hist: Histogram,
    /// `exemplars[i]` is the worst observation recorded in bucket `i`.
    exemplars: Vec<Option<Exemplar>>,
}

impl ExemplarHistogram {
    /// Records `value` for `request`, keeping it as the bucket's exemplar
    /// if it is the worst seen there so far.
    pub fn observe(&mut self, value: u64, request: u64) {
        self.hist.observe(value);
        let bucket = bucket_index(value);
        if self.exemplars.len() <= bucket {
            self.exemplars.resize(bucket + 1, None);
        }
        let slot = &mut self.exemplars[bucket];
        if slot.is_none_or(|e| value > e.value) {
            *slot = Some(Exemplar { request, value });
        }
    }

    /// The exemplar of the bucket holding the `q`-quantile, if any.
    pub fn quantile_exemplar(&self, q: f64) -> Option<Exemplar> {
        let bucket = self.hist.quantile_bucket(q)?;
        self.exemplars.get(bucket).copied().flatten()
    }

    /// The p99 bucket's exemplar — the concrete request to pull a trace
    /// for when the tail looks wrong.
    pub fn p99_exemplar(&self) -> Option<Exemplar> {
        self.quantile_exemplar(0.99)
    }

    /// JSON form: the histogram plus `{bucket_le, request, value}` exemplar
    /// links for every non-empty bucket.
    pub fn to_json(&self) -> Value {
        self.hist.to_json().with(
            "exemplars",
            Value::Array(
                self.exemplars
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
                    .map(|(i, e)| {
                        Value::object()
                            .with("bucket_le", 1u64 << i)
                            .with("request", e.request)
                            .with("value", e.value)
                    })
                    .collect(),
            ),
        )
    }
}

/// The latency decomposition of one served request, as measured by the
/// serving driver (straggler semantics: each span is the slowest rank's).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestLatency {
    /// Request id.
    pub id: u64,
    /// Arrival → the batch containing this request starting to form.
    pub queue_wait_ns: u64,
    /// Shard extraction / batch assembly.
    pub batch_form_ns: u64,
    /// This request's vector kernel time (slowest rank).
    pub compute_ns: u64,
    /// Gather + reduce exchange time of the batch (slowest rank each).
    pub exchange_ns: u64,
    /// Arrival → result extracted on every rank.
    pub e2e_ns: u64,
}

/// SLO report over a stream of served requests: one exemplar histogram per
/// span of the request lifecycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SloReport {
    /// Queue-wait span.
    pub queue_wait: ExemplarHistogram,
    /// Batch-formation span.
    pub batch_form: ExemplarHistogram,
    /// Per-request compute span.
    pub compute: ExemplarHistogram,
    /// Exchange (gather + reduce) span.
    pub exchange: ExemplarHistogram,
    /// End-to-end latency.
    pub e2e: ExemplarHistogram,
}

/// Renders a quantile cell: the value, or `-` when the histogram is empty
/// (an empty histogram has no quantiles; printing 0 would read as a real
/// 0 ns measurement).
pub fn quantile_cell(hist: &Histogram, q: f64) -> String {
    hist.try_quantile(q).map_or_else(|| "-".to_string(), |v| v.to_string())
}

impl SloReport {
    /// Folds one request's latency decomposition into the report.
    pub fn observe(&mut self, lat: &RequestLatency) {
        self.queue_wait.observe(lat.queue_wait_ns, lat.id);
        self.batch_form.observe(lat.batch_form_ns, lat.id);
        self.compute.observe(lat.compute_ns, lat.id);
        self.exchange.observe(lat.exchange_ns, lat.id);
        self.e2e.observe(lat.e2e_ns, lat.id);
    }

    /// Number of requests observed.
    pub fn count(&self) -> u64 {
        self.e2e.hist.count
    }

    fn rows(&self) -> [(&'static str, &ExemplarHistogram); 5] {
        [
            ("queue_wait", &self.queue_wait),
            ("batch_form", &self.batch_form),
            ("compute", &self.compute),
            ("exchange", &self.exchange),
            ("e2e", &self.e2e),
        ]
    }

    /// Plain-text SLO table (ns): p50/p90/p99/max per span, `-` for empty,
    /// with the p99 exemplar request named per row.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10} {:>10}  p99 exemplar",
            "span (ns)", "p50", "p90", "p99", "max"
        );
        for (name, h) in self.rows() {
            let exemplar = h
                .p99_exemplar()
                .map_or_else(String::new, |e| format!("request {} ({} ns)", e.request, e.value));
            let max = if h.hist.count == 0 { "-".to_string() } else { h.hist.max.to_string() };
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10} {:>10} {:>10}  {}",
                name,
                quantile_cell(&h.hist, 0.50),
                quantile_cell(&h.hist, 0.90),
                quantile_cell(&h.hist, 0.99),
                max,
                exemplar
            );
        }
        out
    }

    /// JSON form: `{requests, spans: {name: histogram+exemplars}}`.
    pub fn to_json(&self) -> Value {
        let mut spans = Value::object();
        for (name, h) in self.rows() {
            spans = spans.with(name, h.to_json());
        }
        Value::object().with("requests", self.count()).with("spans", spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemplar_tracks_the_worst_request_per_bucket() {
        let mut h = ExemplarHistogram::default();
        h.observe(100, 1); // bucket le=128
        h.observe(120, 2); // same bucket, worse
        h.observe(90, 3); // same bucket, better — must not displace
        h.observe(5000, 9); // tail bucket
        let p99 = h.p99_exemplar().unwrap();
        assert_eq!(p99.request, 9);
        assert_eq!(p99.value, 5000);
        let p50 = h.quantile_exemplar(0.50).unwrap();
        assert_eq!(p50.request, 2, "bucket exemplar is the worst value in the bucket");
        assert_eq!(p50.value, 120);
    }

    #[test]
    fn quantile_exemplar_comes_from_the_quantile_bucket() {
        let mut h = ExemplarHistogram::default();
        for v in 1..=100u64 {
            h.observe(v, v * 10);
        }
        // p50 resolves to the bucket with upper bound 64 (values 33..=64);
        // its worst value is 64, recorded for request 640.
        assert_eq!(h.hist.p50(), 64);
        let e = h.quantile_exemplar(0.50).unwrap();
        assert_eq!(e.value, 64);
        assert_eq!(e.request, 640);
    }

    #[test]
    fn empty_report_renders_dashes() {
        let report = SloReport::default();
        assert_eq!(report.count(), 0);
        let text = report.render();
        assert!(text.contains('-'), "empty spans render '-', got:\n{text}");
        assert!(!text.lines().skip(1).any(|l| l.contains(" 0 ")), "no fake-zero quantiles");
        assert!(report.e2e.p99_exemplar().is_none());
    }

    #[test]
    fn report_aggregates_and_serializes() {
        let mut report = SloReport::default();
        for i in 0..50u64 {
            report.observe(&RequestLatency {
                id: i,
                queue_wait_ns: 10 + i,
                batch_form_ns: 5,
                compute_ns: 1000 + i * 17,
                exchange_ns: 300,
                e2e_ns: 2000 + i * 20,
            });
        }
        assert_eq!(report.count(), 50);
        let text = report.render();
        assert!(text.contains("e2e"));
        assert!(text.contains("p99 exemplar"));
        assert!(text.contains("request 49"), "worst e2e request named, got:\n{text}");
        let json = report.to_json();
        assert_eq!(json.get("requests").unwrap().as_u64(), Some(50));
        let e2e = json.get("spans").unwrap().get("e2e").unwrap();
        assert_eq!(e2e.get("count").unwrap().as_u64(), Some(50));
        assert!(!e2e.get("exemplars").unwrap().as_array().unwrap().is_empty());
    }
}
