//! Flight-recorder export and post-mortem crash dumps.
//!
//! Three consumers of the per-rank ring buffers
//! ([`symtensor_mpsim::FlightSnapshot`]):
//!
//! * [`flight_json`] — the obs-JSON form of a clean run's final window
//!   (`symtensor-flight-v1`), including each recorder's self-overhead;
//! * [`chrome_from_flight`] — a Perfetto-loadable Chrome trace rebuilt
//!   purely from flight records (phase `X` spans from enter/exit pairing,
//!   send/recv instants), with the failing rank's track highlighted;
//! * [`postmortem_json`] — the crash dump (`symtensor-postmortem-v1`)
//!   assembled from a [`RankFailure`]: who failed, where (last
//!   phase/round), the panic message, every rank's final window, the cost
//!   counters up to the abort, and an embedded Chrome trace.
//!
//! [`reconcile_postmortem`] closes the loop the acceptance criteria ask
//! for: each surviving rank's recorded flight words must agree with the
//! trace-derived comm matrix *and* the hot-path counters up to the abort
//! point (exact only for ranks whose rings did not wrap).

use crate::json::Value;
use crate::matrix::CommMatrix;
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::{FlightEvent, FlightKind, FlightSnapshot, RankFailure};

/// Process id used for all ranks (matches [`crate::chrome`]).
const PID: u64 = 1;

fn us(t_ns: u64) -> f64 {
    t_ns as f64 / 1_000.0
}

fn kind_str(kind: FlightKind) -> &'static str {
    match kind {
        FlightKind::Send => "send",
        FlightKind::Recv => "recv",
        FlightKind::PhaseEnter => "phase_enter",
        FlightKind::PhaseExit => "phase_exit",
        FlightKind::Fault => "fault",
        FlightKind::Alert => "alert",
    }
}

fn event_json(e: &FlightEvent) -> Value {
    let mut v = Value::object().with("t_ns", e.t_ns).with("kind", kind_str(e.kind));
    if let Some(phase) = e.phase {
        v.set("phase", phase);
    }
    if let Some(round) = e.round {
        v.set("round", round);
    }
    if let Some(peer) = e.peer {
        v.set("peer", peer);
    }
    if matches!(e.kind, FlightKind::Send | FlightKind::Recv | FlightKind::Fault) {
        v.set("words", e.words);
    }
    // An alert record carries the alert id in the packed word field.
    if e.kind == FlightKind::Alert {
        v.set("alert", e.words);
    }
    if let Some(request) = e.request {
        v.set("request", request);
    }
    if e.saturated {
        v.set("saturated", true);
    }
    v
}

fn overhead_json(snap: &FlightSnapshot) -> Value {
    Value::object()
        .with("capacity", snap.overhead.capacity)
        .with("recorded", snap.overhead.recorded)
        .with("dropped", snap.overhead.dropped)
        .with("saturated_deltas", snap.overhead.saturated_deltas)
        .with("overhead_ns", snap.overhead.overhead_ns)
}

fn rank_json(snap: &FlightSnapshot, failed: Option<usize>) -> Value {
    Value::object()
        .with("rank", snap.rank)
        .with("failed", failed == Some(snap.rank))
        .with("words_sent", snap.words_sent())
        .with("words_recv", snap.words_recv())
        .with("overhead", overhead_json(snap))
        .with("events", Value::Array(snap.events.iter().map(event_json).collect()))
}

/// The obs-JSON document for a set of per-rank flight windows
/// (`symtensor-flight-v1`).
pub fn flight_json(snapshots: &[FlightSnapshot]) -> Value {
    Value::object()
        .with("version", "symtensor-flight-v1")
        .with("ranks", Value::Array(snapshots.iter().map(|s| rank_json(s, None)).collect()))
}

/// Rebuilds a Chrome trace purely from flight records: `X` phase spans
/// from enter/exit pairing (spans still open at the end of the window —
/// e.g. the phase a rank panicked in — are closed at the window's last
/// timestamp and flagged `unterminated`), and send/recv instants. When
/// `failing` names a rank, its track is renamed `rank N [FAILED]` and a
/// `panic` instant is placed at its last recorded timestamp.
pub fn chrome_from_flight(snapshots: &[FlightSnapshot], failing: Option<usize>) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for snap in snapshots {
        let name = if failing == Some(snap.rank) {
            format!("rank {} [FAILED]", snap.rank)
        } else {
            format!("rank {}", snap.rank)
        };
        events.push(
            Value::object()
                .with("name", "thread_name")
                .with("ph", "M")
                .with("pid", PID)
                .with("tid", snap.rank)
                .with("args", Value::object().with("name", name)),
        );
        let window_end = snap.events.last().map_or(0, |e| e.t_ns);
        // Pair phase enters/exits into complete spans; a panic leaves the
        // enclosing phases unterminated, which is precisely the signal a
        // post-mortem reader needs.
        let mut stack: Vec<(Option<&'static str>, u64)> = Vec::new();
        fn push_span(
            events: &mut Vec<Value>,
            tid: usize,
            phase: Option<&'static str>,
            start: u64,
            end: u64,
            open: bool,
        ) {
            let mut args = Value::object();
            if open {
                args.set("unterminated", true);
            }
            events.push(
                Value::object()
                    .with("name", phase.unwrap_or("<unlabelled>"))
                    .with("cat", "phase")
                    .with("ph", "X")
                    .with("pid", PID)
                    .with("tid", tid)
                    .with("ts", us(start))
                    .with("dur", us(end.saturating_sub(start)))
                    .with("args", args),
            );
        }
        for e in &snap.events {
            match e.kind {
                FlightKind::PhaseEnter => stack.push((e.phase, e.t_ns)),
                FlightKind::PhaseExit => {
                    // The ring may have evicted the matching enter; only
                    // pop when one is present.
                    if let Some((phase, start)) = stack.pop() {
                        push_span(&mut events, snap.rank, phase, start, e.t_ns, false);
                    }
                }
                FlightKind::Send | FlightKind::Recv | FlightKind::Fault | FlightKind::Alert => {
                    let mut args = Value::object();
                    if let Some(peer) = e.peer {
                        args.set("peer", peer);
                    }
                    args.set("words", e.words);
                    if let Some(round) = e.round {
                        args.set("round", round);
                    }
                    if let Some(request) = e.request {
                        args.set("request", request);
                    }
                    // Injected faults and SLO alerts get their own
                    // categories so a post-mortem reader can separate
                    // chaos and burning SLOs from organic traffic at a
                    // glance.
                    let cat = match e.kind {
                        FlightKind::Fault => "fault",
                        FlightKind::Alert => "alert",
                        _ => "comm",
                    };
                    events.push(
                        Value::object()
                            .with("name", kind_str(e.kind))
                            .with("cat", cat)
                            .with("ph", "i")
                            .with("s", "t")
                            .with("pid", PID)
                            .with("tid", snap.rank)
                            .with("ts", us(e.t_ns))
                            .with("args", args),
                    );
                }
            }
        }
        while let Some((phase, start)) = stack.pop() {
            push_span(&mut events, snap.rank, phase, start, window_end, true);
        }
        if failing == Some(snap.rank) {
            events.push(
                Value::object()
                    .with("name", "panic")
                    .with("cat", "abort")
                    .with("ph", "i")
                    .with("s", "t")
                    .with("pid", PID)
                    .with("tid", snap.rank)
                    .with("ts", us(window_end))
                    .with("args", Value::object()),
            );
        }
    }
    // Metadata first, then chronological — same convention as
    // `crate::chrome`, so consumers can share a parser.
    events.sort_by(|a, b| {
        let key = |e: &Value| match e.get("ph").and_then(Value::as_str) {
            Some("M") => (0u8, 0.0f64),
            _ => (1, e.get("ts").and_then(Value::as_f64).unwrap_or(0.0)),
        };
        let (ka, kb) = (key(a), key(b));
        ka.0.cmp(&kb.0).then(ka.1.partial_cmp(&kb.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    Value::object().with("traceEvents", Value::Array(events)).with("displayTimeUnit", "ns")
}

/// Assembles the post-mortem crash dump (`symtensor-postmortem-v1`) from a
/// structured rank failure: attribution, per-rank cost counters up to the
/// abort, every rank's flight window, and an embedded Chrome trace of the
/// final window with the failing rank highlighted.
pub fn postmortem_json(failure: &RankFailure) -> Value {
    let per_rank = Value::Array(
        failure
            .report
            .per_rank
            .iter()
            .enumerate()
            .map(|(rank, c)| {
                Value::object()
                    .with("rank", rank)
                    .with("words_sent", c.words_sent)
                    .with("words_recv", c.words_recv)
                    .with("msgs_sent", c.msgs_sent)
                    .with("msgs_recv", c.msgs_recv)
                    .with("rounds", c.rounds)
            })
            .collect(),
    );
    Value::object()
        .with("version", "symtensor-postmortem-v1")
        .with("failing_rank", failure.rank)
        .with("phase", failure.phase.map(Value::from).unwrap_or(Value::Null))
        .with("round", failure.round.map(Value::from).unwrap_or(Value::Null))
        .with("message", failure.message.as_str())
        .with("report", Value::object().with("per_rank", per_rank))
        .with(
            "ranks",
            Value::Array(failure.flight.iter().map(|s| rank_json(s, Some(failure.rank))).collect()),
        )
        .with("chrome", chrome_from_flight(&failure.flight, Some(failure.rank)))
}

/// Checks that each rank's flight-recorded traffic reconciles with the
/// trace-derived comm matrices and the hot-path cost counters, up to the
/// abort point.
///
/// An aborted run breaks the clean-run invariant that every send is
/// eventually received ([`CommMatrix::from_traces`] counts sends only), so
/// two matrices are reconciled independently: the send matrix's row
/// marginals against `words_sent`, and a receive matrix (built from `Recv`
/// events) column marginals against `words_recv` — both hold even mid-
/// abort because counters and trace records are written at the same call
/// sites. Then, for every rank whose ring did **not** wrap
/// (`dropped == 0`), the flight-recorded send/recv word sums must equal
/// those same marginals; ranks with evicted records are skipped — their
/// window is partial by design and says so in its overhead counters.
pub fn reconcile_postmortem(failure: &RankFailure) -> Result<(), String> {
    let send_matrix = CommMatrix::from_traces(&failure.traces);
    let mut recv_matrix = CommMatrix::new(failure.traces.len());
    for (dst, events) in failure.traces.iter().enumerate() {
        for event in events {
            if let CommEventKind::Recv { src, words, .. } = event.kind {
                recv_matrix.add(src, dst, words);
            }
        }
    }
    // No link can deliver more than was sent on it — injected duplicates
    // are deduplicated before accounting and injected drops never charge
    // the sender, so this holds even for chaos-injected aborted runs.
    let p = failure.traces.len();
    for src in 0..p {
        for dst in 0..p {
            if recv_matrix.words(src, dst) > send_matrix.words(src, dst) {
                return Err(format!(
                    "link {src}->{dst}: {} words received but only {} sent",
                    recv_matrix.words(src, dst),
                    send_matrix.words(src, dst)
                ));
            }
        }
    }
    for (rank, cost) in failure.report.per_rank.iter().enumerate() {
        if send_matrix.row_words(rank) != cost.words_sent {
            return Err(format!(
                "rank {rank}: trace says {} words sent but counters say {}",
                send_matrix.row_words(rank),
                cost.words_sent
            ));
        }
        if recv_matrix.col_words(rank) != cost.words_recv {
            return Err(format!(
                "rank {rank}: trace says {} words received but counters say {}",
                recv_matrix.col_words(rank),
                cost.words_recv
            ));
        }
    }
    for snap in &failure.flight {
        if snap.overhead.dropped > 0 {
            continue;
        }
        let checks = [
            ("words_sent", snap.words_sent(), send_matrix.row_words(snap.rank)),
            ("words_recv", snap.words_recv(), recv_matrix.col_words(snap.rank)),
        ];
        for (what, from_flight, from_matrix) in checks {
            if from_flight != from_matrix {
                return Err(format!(
                    "rank {}: flight {what} = {from_flight} but comm matrix says {from_matrix}",
                    snap.rank
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use symtensor_mpsim::Universe;

    fn crash_run() -> Box<RankFailure> {
        Universe::new(3)
            .try_run_traced(|comm| {
                comm.with_phase("gather-x", || {
                    comm.annotate_round(2);
                    let next = (comm.rank() + 1) % 3;
                    comm.send(next, 0, vec![1.0; 6]);
                    if comm.rank() == 1 {
                        panic!("injected mid-exchange failure");
                    }
                    let prev = (comm.rank() + 2) % 3;
                    let _ = comm.recv(prev, 0);
                    comm.clear_round();
                });
            })
            .unwrap_err()
    }

    #[test]
    fn flight_json_has_version_and_per_rank_windows() {
        let (_, _, flight) = Universe::new(2).run_flight(|comm| {
            comm.with_phase("swap", || {
                comm.exchange(1 - comm.rank(), 0, vec![0.0; 3]).unwrap();
            });
        });
        let doc = flight_json(&flight);
        assert_eq!(doc.get("version").unwrap().as_str(), Some("symtensor-flight-v1"));
        let ranks = doc.get("ranks").unwrap().as_array().unwrap();
        assert_eq!(ranks.len(), 2);
        for r in ranks {
            assert_eq!(r.get("words_sent").unwrap().as_u64(), Some(3));
            assert!(r.get("overhead").unwrap().get("recorded").unwrap().as_u64().unwrap() >= 4);
            assert!(!r.get("events").unwrap().as_array().unwrap().is_empty());
        }
        // The document round-trips through the parser.
        assert!(json::parse(&doc.to_string_pretty()).is_ok());
    }

    #[test]
    fn postmortem_names_the_failure_and_embeds_a_valid_chrome_trace() {
        let failure = crash_run();
        assert_eq!(failure.rank, 1);
        assert_eq!(failure.phase, Some("gather-x"));
        assert_eq!(failure.round, Some(2));
        let dump = postmortem_json(&failure);
        assert_eq!(dump.get("version").unwrap().as_str(), Some("symtensor-postmortem-v1"));
        assert_eq!(dump.get("failing_rank").unwrap().as_u64(), Some(1));
        assert_eq!(dump.get("phase").unwrap().as_str(), Some("gather-x"));
        assert!(dump.get("message").unwrap().as_str().unwrap().contains("mid-exchange"));
        let chrome = dump.get("chrome").unwrap();
        let events = chrome.get("traceEvents").unwrap().as_array().unwrap();
        // The failing rank's track is renamed and carries a panic instant.
        assert!(events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .is_some_and(|n| n.contains("[FAILED]"))
        }));
        assert!(events.iter().any(|e| e.get("name").and_then(Value::as_str) == Some("panic")));
        // The failing rank's gather-x span exists and is unterminated.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("gather-x")
                && e.get("args").and_then(|a| a.get("unterminated")).is_some()
        }));
    }

    #[test]
    fn postmortem_reconciles_flight_against_matrix_and_report() {
        let failure = crash_run();
        reconcile_postmortem(&failure).unwrap();
        // Every rank sent exactly its 6-word gather message before the
        // abort could interrupt it.
        for snap in &failure.flight {
            assert_eq!(snap.overhead.dropped, 0);
            assert_eq!(snap.words_sent(), 6);
        }
    }

    #[test]
    fn postmortem_reconciles_after_injected_faults() {
        use std::time::Duration;
        use symtensor_mpsim::{CrashSpec, FaultPlan};
        // Chaos run: rank 1's only send is dropped, rank 2 crashes on
        // schedule. Counters, trace matrices and flight sums must still
        // reconcile — the dropped transfer appears in none of them.
        let plan = FaultPlan::seeded(11).drop_nth_send(1, 0).with_crash(CrashSpec {
            rank: 2,
            phase: "gather-x".into(),
            round: 2,
            on_attempt: None,
        });
        let failure = Universe::new(3)
            .with_recv_timeout(Duration::from_millis(200))
            .with_poll_interval(Duration::from_millis(2))
            .with_faults(plan)
            .try_run_traced(|comm| {
                comm.with_phase("gather-x", || {
                    comm.annotate_round(2);
                    let next = (comm.rank() + 1) % 3;
                    comm.send(next, 0, vec![1.0; 6]);
                    let prev = (comm.rank() + 2) % 3;
                    let _ = comm.recv(prev, 0);
                    comm.clear_round();
                });
            })
            .unwrap_err();
        assert_eq!(failure.rank, 2, "the scheduled crash is the root cause");
        assert!(failure.message.contains("chaos"), "got: {}", failure.message);
        reconcile_postmortem(&failure).unwrap();
        // Rank 1's send was dropped before the network: 0 accountable
        // words, but the injected fault is visible in its telemetry.
        assert_eq!(failure.report.per_rank[1].words_sent, 0);
        assert_eq!(failure.flight[1].words_sent(), 0);
        let rank1_faults: Vec<_> = failure.traces[1]
            .iter()
            .filter_map(|e| match e.kind {
                CommEventKind::Fault { fault, peer, words } => Some((fault, peer, words)),
                _ => None,
            })
            .collect();
        assert_eq!(
            rank1_faults,
            vec![(symtensor_mpsim::InjectedFault::Drop, 2, 6)],
            "the drop must be recorded as injected, not organic"
        );
        assert!(
            failure.flight[2].events.iter().any(|e| e.kind == FlightKind::Fault),
            "the crash leaves a fault record in rank 2's flight window"
        );
        // The dump renders and validates end to end.
        let dump = postmortem_json(&failure);
        assert_eq!(crate::validate(&dump), Ok(crate::ArtifactKind::Postmortem));
    }

    #[test]
    fn chrome_from_flight_is_monotone_per_track() {
        let failure = crash_run();
        let doc = chrome_from_flight(&failure.flight, Some(failure.rank));
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut last_ts = std::collections::BTreeMap::new();
        for e in events {
            if e.get("ph").and_then(Value::as_str) == Some("M") {
                continue;
            }
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            if let Some(&prev) = last_ts.get(&tid) {
                assert!(ts >= prev, "track {tid} went backwards: {prev} -> {ts}");
            }
            last_ts.insert(tid, ts);
        }
    }
}
