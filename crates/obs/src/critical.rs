//! Critical-path extraction and straggler analysis over a replayed run.
//!
//! After [`crate::replay`] assigns every op a modeled `start`/`end` and a
//! *binding predecessor* (the dependency that actually determined its
//! start), the critical path is recovered by walking binding predecessors
//! back from the op with the global maximum end time. Each step's
//! contribution `end − pred.end` telescopes, so the contributions sum to
//! the makespan exactly — the path *is* the makespan's explanation.
//!
//! Straggler analysis is orthogonal and uses **measured** span durations:
//! per phase, the load-imbalance factor `λ = max / mean` over ranks and
//! the top-k ranks by excess time over the mean.

use crate::json::Value;
use crate::replay::{OpId, OpKind, ReplayReport};
use crate::span::PhaseSpan;
use std::collections::BTreeMap;

/// One hop of the critical path (stored source-to-sink).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CriticalStep {
    /// The op this step refers to.
    pub op: OpId,
    /// What the op was.
    pub kind: OpKind,
    /// Phase annotation.
    pub phase: Option<&'static str>,
    /// Round annotation.
    pub round: Option<u64>,
    /// Modeled start/end of the op.
    pub start: f64,
    /// Modeled end of the op.
    pub end: f64,
    /// This step's contribution to the makespan: `end − pred.end`
    /// (or `end` for the path's first op). Contributions telescope to the
    /// makespan.
    pub contribution: f64,
}

/// The critical path of a replayed run plus per-rank attribution.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Path ops from the run's start to the makespan-defining op.
    pub steps: Vec<CriticalStep>,
    /// The modeled makespan the path explains.
    pub makespan_ns: f64,
    /// Per-rank share of the path: `attribution[rank] = (compute, send,
    /// recv_wait)` contributions in virtual ns.
    pub attribution: Vec<RankAttribution>,
}

/// One rank's share of the critical path, by op category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankAttribution {
    /// Critical-path time spent in this rank's compute ops.
    pub compute_ns: f64,
    /// Critical-path time spent in this rank's sends.
    pub send_ns: f64,
    /// Critical-path time this rank spent blocked on a receive whose
    /// sender was *itself* on the path (rare under the postal model: a
    /// waiting receive binds to the send, so the wait shows up as the
    /// sender's send time; this bucket only catches zero-weight binding
    /// edges).
    pub recv_wait_ns: f64,
    /// Number of path ops on this rank.
    pub ops: usize,
}

impl RankAttribution {
    /// Total critical-path time attributed to this rank.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.send_ns + self.recv_wait_ns
    }
}

impl CriticalPath {
    /// Extracts the critical path from a replayed run. Returns an empty
    /// path for an empty replay.
    pub fn extract(replay: &ReplayReport) -> CriticalPath {
        let p = replay.ranks.len();
        let mut attribution = vec![RankAttribution::default(); p];
        // Sink: the op with the global max end (ties: the last such op in
        // (rank, index) order, so a zero-weight finishing recv is chosen
        // over the send it binds to and the full chain is reported).
        let mut sink: Option<(OpId, f64)> = None;
        for (rank, r) in replay.ranks.iter().enumerate() {
            for (index, op) in r.ops.iter().enumerate() {
                let better = match sink {
                    None => true,
                    Some((_, best)) => op.end >= best,
                };
                if better {
                    sink = Some((OpId { rank, index }, op.end));
                }
            }
        }
        let Some((sink_id, makespan)) = sink else {
            return CriticalPath { steps: Vec::new(), makespan_ns: 0.0, attribution };
        };

        let mut steps = Vec::new();
        let mut cur = Some(sink_id);
        while let Some(id) = cur {
            let op = replay.ranks[id.rank].ops[id.index];
            let pred_end = op.pred.map(|p| replay.ranks[p.rank].ops[p.index].end).unwrap_or(0.0);
            steps.push(CriticalStep {
                op: id,
                kind: op.kind,
                phase: op.phase,
                round: op.round,
                start: op.start,
                end: op.end,
                contribution: op.end - pred_end,
            });
            cur = op.pred;
        }
        steps.reverse();

        for step in &steps {
            let a = &mut attribution[step.op.rank];
            a.ops += 1;
            match step.kind {
                OpKind::Compute { .. } => a.compute_ns += step.contribution,
                OpKind::Send { .. } => a.send_ns += step.contribution,
                OpKind::Recv { .. } => a.recv_wait_ns += step.contribution,
            }
        }
        CriticalPath { steps, makespan_ns: makespan, attribution }
    }

    /// Total path length = Σ contributions (equals the makespan).
    pub fn length_ns(&self) -> f64 {
        self.steps.iter().map(|s| s.contribution).sum()
    }

    /// Ranks that appear on the path, in order of first appearance.
    pub fn ranks_on_path(&self) -> Vec<usize> {
        let mut seen = Vec::new();
        for step in &self.steps {
            if !seen.contains(&step.op.rank) {
                seen.push(step.op.rank);
            }
        }
        seen
    }

    /// Plain-text per-rank attribution table (ranks with nonzero share).
    pub fn render_attribution(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>6}\n",
            "rank", "compute", "send", "recv-wait", "total", "ops"
        ));
        for (rank, a) in self.attribution.iter().enumerate() {
            if a.ops == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:>5} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>6}\n",
                rank,
                a.compute_ns,
                a.send_ns,
                a.recv_wait_ns,
                a.total_ns(),
                a.ops
            ));
        }
        out.push_str(&format!(
            "path: {} ops across {} ranks, length {:.1} = makespan {:.1}\n",
            self.steps.len(),
            self.ranks_on_path().len(),
            self.length_ns(),
            self.makespan_ns
        ));
        out
    }

    /// JSON form: the path's per-rank attribution and the step list.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("makespan_ns", self.makespan_ns)
            .with("length_ns", self.length_ns())
            .with(
                "attribution",
                Value::Array(
                    self.attribution
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.ops > 0)
                        .map(|(rank, a)| {
                            Value::object()
                                .with("rank", rank)
                                .with("compute_ns", a.compute_ns)
                                .with("send_ns", a.send_ns)
                                .with("recv_wait_ns", a.recv_wait_ns)
                                .with("ops", a.ops)
                        })
                        .collect(),
                ),
            )
            .with(
                "steps",
                Value::Array(
                    self.steps
                        .iter()
                        .map(|s| {
                            let kind = match s.kind {
                                OpKind::Compute { .. } => "compute",
                                OpKind::Send { .. } => "send",
                                OpKind::Recv { .. } => "recv",
                            };
                            let mut v = Value::object()
                                .with("rank", s.op.rank)
                                .with("kind", kind)
                                .with("end_ns", s.end)
                                .with("contribution_ns", s.contribution);
                            if let Some(phase) = s.phase {
                                v = v.with("phase", phase);
                            }
                            if let Some(round) = s.round {
                                v = v.with("round", round);
                            }
                            v
                        })
                        .collect(),
                ),
            )
    }
}

/// Per-phase load imbalance over **measured** span durations.
#[derive(Clone, Debug)]
pub struct PhaseImbalance {
    /// Phase name.
    pub phase: String,
    /// Per-rank total measured ns in this phase (indexed by rank).
    pub per_rank_ns: Vec<u64>,
    /// `max / mean` over ranks with the phase (1.0 = perfectly balanced).
    pub lambda: f64,
    /// The slowest rank.
    pub max_rank: usize,
}

/// One straggler-table row: a rank whose measured phase time exceeds the
/// phase mean.
#[derive(Clone, Debug, PartialEq)]
pub struct Straggler {
    /// Phase name.
    pub phase: String,
    /// The straggling rank.
    pub rank: usize,
    /// Its measured time in the phase.
    pub rank_ns: u64,
    /// The phase mean across ranks.
    pub mean_ns: f64,
    /// `rank_ns − mean_ns` (> 0 by construction).
    pub excess_ns: f64,
}

/// The straggler report for one run: measured per-phase imbalance plus the
/// top-k excess table.
#[derive(Clone, Debug)]
pub struct StragglerReport {
    /// Per-phase imbalance, phase-name order (top-level spans only).
    pub phases: Vec<PhaseImbalance>,
    /// Top-k `(rank, phase)` cells by excess over the phase mean.
    pub top: Vec<Straggler>,
}

impl StragglerReport {
    /// Builds the report from measured spans (top-level only, which
    /// partition each rank's run), keeping the `k` worst stragglers.
    pub fn from_spans(spans: &[PhaseSpan], num_ranks: usize, k: usize) -> StragglerReport {
        let mut per_phase: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        for span in spans.iter().filter(|s| s.depth == 0) {
            let slot = per_phase.entry(span.name).or_insert_with(|| vec![0; num_ranks]);
            if span.rank < num_ranks {
                slot[span.rank] += span.duration_ns();
            }
        }
        let mut phases = Vec::new();
        let mut all: Vec<Straggler> = Vec::new();
        for (name, per_rank_ns) in per_phase {
            let max = per_rank_ns.iter().copied().max().unwrap_or(0);
            let mean = if per_rank_ns.is_empty() {
                0.0
            } else {
                per_rank_ns.iter().sum::<u64>() as f64 / per_rank_ns.len() as f64
            };
            let max_rank =
                per_rank_ns.iter().enumerate().max_by_key(|(_, &v)| v).map(|(r, _)| r).unwrap_or(0);
            let lambda = if mean > 0.0 { max as f64 / mean } else { 1.0 };
            for (rank, &ns) in per_rank_ns.iter().enumerate() {
                if ns as f64 > mean {
                    all.push(Straggler {
                        phase: name.to_string(),
                        rank,
                        rank_ns: ns,
                        mean_ns: mean,
                        excess_ns: ns as f64 - mean,
                    });
                }
            }
            phases.push(PhaseImbalance { phase: name.to_string(), per_rank_ns, lambda, max_rank });
        }
        all.sort_by(|a, b| b.excess_ns.partial_cmp(&a.excess_ns).unwrap());
        all.truncate(k);
        StragglerReport { phases, top: all }
    }

    /// Plain-text λ table plus the top-k straggler rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:>12}\n",
            "phase", "λ=max/mean", "slowest", "max (µs)"
        ));
        for ph in &self.phases {
            let max = ph.per_rank_ns.iter().copied().max().unwrap_or(0);
            out.push_str(&format!(
                "{:<16} {:>10.3} {:>8} {:>12.1}\n",
                ph.phase,
                ph.lambda,
                ph.max_rank,
                max as f64 / 1_000.0
            ));
        }
        if !self.top.is_empty() {
            out.push_str("top stragglers (excess over phase mean):\n");
            for s in &self.top {
                out.push_str(&format!(
                    "  rank {:>3} in {:<16} {:>10.1} µs (mean {:>10.1} µs, +{:.0}%)\n",
                    s.rank,
                    s.phase,
                    s.rank_ns as f64 / 1_000.0,
                    s.mean_ns / 1_000.0,
                    if s.mean_ns > 0.0 { 100.0 * s.excess_ns / s.mean_ns } else { 0.0 }
                ));
            }
        }
        out
    }

    /// JSON form.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with(
                "phases",
                Value::Array(
                    self.phases
                        .iter()
                        .map(|ph| {
                            Value::object()
                                .with("phase", ph.phase.as_str())
                                .with("lambda", ph.lambda)
                                .with("max_rank", ph.max_rank)
                                .with(
                                    "per_rank_ns",
                                    Value::Array(
                                        ph.per_rank_ns.iter().map(|&v| Value::from(v)).collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
            .with(
                "top_stragglers",
                Value::Array(
                    self.top
                        .iter()
                        .map(|s| {
                            Value::object()
                                .with("phase", s.phase.as_str())
                                .with("rank", s.rank)
                                .with("rank_ns", s.rank_ns)
                                .with("mean_ns", s.mean_ns)
                                .with("excess_ns", s.excess_ns)
                        })
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay, AlphaBetaModel};
    use crate::span::spans;
    use symtensor_mpsim::Universe;

    #[test]
    fn path_telescopes_to_makespan_on_a_chain() {
        // 0 → 1 → 2 forwarding chain with growing payloads.
        let (_, _, traces) = Universe::new(3).run_traced(|comm| match comm.rank() {
            0 => comm.send(1, 0, vec![0.0; 4]),
            1 => {
                let mut got = comm.recv(0, 0).unwrap();
                got.extend_from_slice(&[0.0; 6]);
                comm.send(2, 1, got);
            }
            _ => {
                comm.recv(1, 1).unwrap();
            }
        });
        let rep = replay(&traces, AlphaBetaModel::bandwidth_only()).unwrap();
        let cp = CriticalPath::extract(&rep);
        assert_eq!(rep.makespan_ns, 14.0); // 4 + 10
        assert!((cp.length_ns() - cp.makespan_ns).abs() < 1e-9);
        assert_eq!(cp.ranks_on_path(), vec![0, 1, 2]);
        // Attribution: rank 0 sends 4, rank 1 sends 10; rank 2's final
        // recv contributes 0 (it binds to rank 1's send end).
        assert_eq!(cp.attribution[0].send_ns, 4.0);
        assert_eq!(cp.attribution[1].send_ns, 10.0);
        assert_eq!(cp.attribution[2].total_ns(), 0.0);
        let text = cp.render_attribution();
        assert!(text.contains("makespan"));
    }

    #[test]
    fn empty_replay_yields_empty_path() {
        let rep = replay(&[Vec::new(), Vec::new()], AlphaBetaModel::bandwidth_only()).unwrap();
        let cp = CriticalPath::extract(&rep);
        assert!(cp.steps.is_empty());
        assert_eq!(cp.makespan_ns, 0.0);
    }

    #[test]
    fn straggler_report_finds_the_slow_rank() {
        let (_, _, traces) = Universe::new(4).run_traced(|comm| {
            comm.with_phase("work", || {
                let spins = if comm.rank() == 2 { 400_000 } else { 10_000 };
                let mut acc = 0.0f64;
                for i in 0..spins {
                    acc += (i as f64).sqrt();
                }
                std::hint::black_box(acc);
            });
        });
        let all = spans(&traces);
        let report = StragglerReport::from_spans(&all, 4, 3);
        assert_eq!(report.phases.len(), 1);
        let ph = &report.phases[0];
        assert_eq!(ph.phase, "work");
        assert_eq!(ph.max_rank, 2, "rank 2 spins 40× longer");
        assert!(ph.lambda > 1.5, "λ = {}", ph.lambda);
        assert_eq!(report.top[0].rank, 2);
        assert!(report.render().contains("rank   2"));
    }
}
