//! The `symtensor-telemetry-v1` artifact: a scraped [`TelemetrySeries`]
//! rendered through the in-tree JSON builder, so a live-metrics capture
//! can be archived next to the flight / post-mortem dumps and validated
//! by the same [`crate::schema::validate`] entry point.

use crate::json::Value;
use symtensor_telemetry::{
    CellSnapshot, ClusterSnapshot, HistogramWindow, SloAlert, TelemetrySeries,
};

fn opt_u64(v: Option<u64>) -> Value {
    v.map(Value::from).unwrap_or(Value::Null)
}

fn opt_f64(v: Option<f64>) -> Value {
    v.map(Value::from).unwrap_or(Value::Null)
}

fn window_json(w: &HistogramWindow) -> Value {
    // Only populated buckets are emitted (`le` is the bucket's upper
    // bound); the fixed 40-bucket layout would otherwise bloat every
    // sample with zeros.
    let buckets: Vec<Value> = w
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            Value::object().with("le", symtensor_telemetry::bucket_upper_bound(i)).with("count", c)
        })
        .collect();
    Value::object()
        .with("count", w.count)
        .with("sum", w.sum)
        .with("min", opt_u64(w.min))
        .with("max", opt_u64(w.max))
        .with("p50", opt_u64(w.quantile(0.50)))
        .with("p99", opt_u64(w.quantile(0.99)))
        .with("buckets", buckets)
}

fn cell_json(cell: &CellSnapshot) -> Value {
    let phases: Vec<Value> = cell
        .phases
        .iter()
        .filter(|p| p.words_sent + p.words_recv + p.msgs_sent + p.msgs_recv > 0)
        .map(|p| {
            Value::object()
                .with("phase", p.label)
                .with("words_sent", p.words_sent)
                .with("words_recv", p.words_recv)
                .with("msgs_sent", p.msgs_sent)
                .with("msgs_recv", p.msgs_recv)
        })
        .collect();
    let mut gauges = Value::object();
    for g in &cell.gauges {
        gauges.set(g.name, g.value);
    }
    let mut hists = Value::object();
    for h in &cell.hists {
        hists.set(
            h.name,
            Value::object().with("long", window_json(&h.long)).with("short", window_json(&h.short)),
        );
    }
    Value::object().with("phases", phases).with("gauges", gauges).with("hists", hists)
}

fn alert_json(a: &SloAlert) -> Value {
    Value::object()
        .with("id", a.id)
        .with("t_ns", a.t_ns)
        .with("slo", a.slo)
        .with("budget_ns", a.budget_ns)
        .with("objective", a.objective)
        .with("short_burn", a.short_burn)
        .with("long_burn", a.long_burn)
        .with("short_p99_ns", opt_u64(a.short_p99_ns))
}

fn sample_json(s: &ClusterSnapshot) -> Value {
    let d = &s.derived;
    let derived = Value::object()
        .with("total_words_sent", d.total_words_sent)
        .with("straggler_lambda", opt_f64(d.straggler_lambda))
        .with("budget_ratio", opt_f64(d.budget_ratio))
        .with("hidden_comm_ns", d.hidden_comm_ns)
        .with("exposed_comm_ns", d.exposed_comm_ns)
        .with("overlap_efficiency", opt_f64(d.overlap_efficiency))
        .with("queue_depth", d.queue_depth)
        .with("batch_occupancy_pct", d.batch_occupancy_pct)
        .with("retries", d.retries)
        .with("degraded", d.degraded);
    let ranks: Vec<Value> = s
        .ranks
        .iter()
        .enumerate()
        .map(|(r, cell)| {
            let mut v = cell_json(cell);
            v.set("rank", r);
            v
        })
        .collect();
    Value::object()
        .with("t_ns", s.t_ns)
        .with("derived", derived)
        .with("ranks", ranks)
        .with("serve", cell_json(&s.serve))
        .with("alerts", s.alerts.iter().map(alert_json).collect::<Vec<_>>())
}

/// Renders a scraped series as the `symtensor-telemetry-v1` artifact.
pub fn telemetry_json(series: &TelemetrySeries) -> Value {
    Value::object()
        .with("version", "symtensor-telemetry-v1")
        .with("interval_ns", series.interval_ns)
        .with("budget_words_per_vector", opt_u64(series.budget_words_per_vector))
        .with("samples", series.samples.iter().map(sample_json).collect::<Vec<_>>())
        .with("alerts", series.alerts.iter().map(alert_json).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use symtensor_telemetry::{keys, sample_plane, ScrapeConfig, TelemetryPlane};

    #[test]
    fn series_round_trips_through_the_shared_validator() {
        let plane = Arc::new(TelemetryPlane::new(2));
        let slot = plane.phase_slot("gather-x");
        plane.rank_cell(0).on_send(slot, 12);
        plane.rank_cell(1).on_recv(slot, 12);
        let e2e = plane.hist_slot(keys::E2E_NS);
        plane.serve_cell().observe(e2e, plane.now_ns(), 1500);
        let cfg = ScrapeConfig::default().with_budget_words_per_vector(6);
        let series = symtensor_telemetry::TelemetrySeries {
            interval_ns: 50_000_000,
            budget_words_per_vector: cfg.budget_words_per_vector,
            samples: vec![sample_plane(&plane, &cfg)],
            alerts: plane.alerts(),
        };
        let doc = telemetry_json(&series);
        assert_eq!(crate::schema::validate(&doc), Ok(crate::schema::ArtifactKind::Telemetry));
        // The artifact is parseable back through the in-tree parser.
        let text = doc.to_string_pretty();
        let parsed = crate::json::parse(&text).expect("emitted JSON parses");
        assert_eq!(crate::schema::validate(&parsed), Ok(crate::schema::ArtifactKind::Telemetry));
    }
}
