//! Schedule-step occupancy: who is busy in each communication round.
//!
//! The paper's step-counted schedule (§7.2) bounds the number of
//! synchronous communication steps of the P2P exchange phase by
//! `q³/2 + 3q²/2 − 1`. When an algorithm annotates its sends with
//! [`symtensor_mpsim::Comm::annotate_round`], this module derives, per
//! round, how many ranks acted as senders and receivers and how many words
//! moved — i.e. how well the schedule packs the machine — and compares the
//! observed round count against the bound.

use crate::json::Value;
use std::collections::BTreeMap;
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::CommEvent;

/// Occupancy of one schedule round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundOccupancy {
    /// Round index (as annotated by the algorithm).
    pub round: u64,
    /// Number of distinct ranks that sent in this round.
    pub senders: usize,
    /// Number of distinct ranks that received in this round.
    pub receivers: usize,
    /// Total words moved in this round.
    pub words: u64,
    /// Total messages moved in this round.
    pub msgs: u64,
}

/// Whole-run occupancy report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OccupancyReport {
    /// Number of ranks P.
    pub p: usize,
    /// Per-round occupancy, ordered by round index.
    pub rounds: Vec<RoundOccupancy>,
    /// Words sent outside any annotated round (setup traffic, collectives).
    pub unannotated_words: u64,
}

impl OccupancyReport {
    /// Derives the report from per-rank event logs (`Send` events only, so
    /// nothing is double counted).
    pub fn from_traces(traces: &[Vec<CommEvent>]) -> Self {
        let p = traces.len();
        // round -> (sender bitset as Vec<bool>, receiver set, words, msgs)
        struct Acc {
            senders: Vec<bool>,
            receivers: Vec<bool>,
            words: u64,
            msgs: u64,
        }
        let mut per_round: BTreeMap<u64, Acc> = BTreeMap::new();
        let mut unannotated_words = 0u64;
        for (rank, events) in traces.iter().enumerate() {
            for event in events {
                if let CommEventKind::Send { dst, words, .. } = event.kind {
                    match event.round {
                        Some(round) => {
                            let acc = per_round.entry(round).or_insert_with(|| Acc {
                                senders: vec![false; p],
                                receivers: vec![false; p],
                                words: 0,
                                msgs: 0,
                            });
                            acc.senders[rank] = true;
                            acc.receivers[dst] = true;
                            acc.words += words;
                            acc.msgs += 1;
                        }
                        None => unannotated_words += words,
                    }
                }
            }
        }
        let rounds = per_round
            .into_iter()
            .map(|(round, acc)| RoundOccupancy {
                round,
                senders: acc.senders.iter().filter(|&&b| b).count(),
                receivers: acc.receivers.iter().filter(|&&b| b).count(),
                words: acc.words,
                msgs: acc.msgs,
            })
            .collect();
        OccupancyReport { p, rounds, unannotated_words }
    }

    /// Number of annotated rounds observed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Mean sender utilization across rounds: `avg(senders_r / P)`.
    pub fn mean_sender_utilization(&self) -> f64 {
        if self.rounds.is_empty() || self.p == 0 {
            return 0.0;
        }
        let total: usize = self.rounds.iter().map(|r| r.senders).sum();
        total as f64 / (self.rounds.len() * self.p) as f64
    }

    /// `true` when the observed round count is within the paper's step
    /// bound for tetrahedral partition parameter `q`.
    pub fn within_step_bound(&self, q: usize) -> bool {
        self.num_rounds() as u64 <= spherical_step_bound(q)
    }

    /// JSON export.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("p", self.p)
            .with("num_rounds", self.num_rounds())
            .with("mean_sender_utilization", self.mean_sender_utilization())
            .with("unannotated_words", self.unannotated_words)
            .with(
                "rounds",
                Value::Array(
                    self.rounds
                        .iter()
                        .map(|r| {
                            Value::object()
                                .with("round", r.round)
                                .with("senders", r.senders)
                                .with("receivers", r.receivers)
                                .with("words", r.words)
                                .with("msgs", r.msgs)
                        })
                        .collect(),
                ),
            )
    }
}

/// The paper's §7.2 step bound for the spherical/tetrahedral schedule:
/// `q³/2 + 3q²/2 − 1 = q²(q+3)/2 − 1` synchronous communication steps.
///
/// (Kept in closed form here so the observability layer does not depend on
/// the scheduling crate; `symtensor-parallel`'s `spherical_round_count` is
/// the same formula and the CLI cross-checks the two.)
pub fn spherical_step_bound(q: usize) -> u64 {
    debug_assert!(q >= 1);
    (q * q * (q + 3) / 2 - 1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    #[test]
    fn step_bound_formula() {
        // q³/2 + 3q²/2 − 1 for even/odd q (q² (q+3) is always even).
        assert_eq!(spherical_step_bound(2), 9);
        assert_eq!(spherical_step_bound(3), 26);
        assert_eq!(spherical_step_bound(4), 55);
    }

    #[test]
    fn occupancy_counts_distinct_ranks_per_round() {
        let (_, _, traces) = Universe::new(4).run_traced(|comm| {
            // Round 0: pairwise exchange (0↔1, 2↔3) — all ranks busy.
            comm.annotate_round(0);
            let partner = comm.rank() ^ 1;
            comm.exchange(partner, 0, vec![0.0; 2]).unwrap();
            // Round 1: only 0 → 2.
            comm.annotate_round(1);
            if comm.rank() == 0 {
                comm.send(2, 1, vec![0.0; 3]);
            } else if comm.rank() == 2 {
                comm.recv(0, 1).unwrap();
            }
            comm.clear_round();
            // Unannotated setup traffic.
            if comm.rank() == 3 {
                comm.send(0, 2, vec![0.0; 5]);
            } else if comm.rank() == 0 {
                comm.recv(3, 2).unwrap();
            }
        });
        let report = OccupancyReport::from_traces(&traces);
        assert_eq!(report.p, 4);
        assert_eq!(report.num_rounds(), 2);
        assert_eq!(report.rounds[0].senders, 4);
        assert_eq!(report.rounds[0].receivers, 4);
        assert_eq!(report.rounds[0].words, 8);
        assert_eq!(report.rounds[1].senders, 1);
        assert_eq!(report.rounds[1].receivers, 1);
        assert_eq!(report.rounds[1].words, 3);
        assert_eq!(report.unannotated_words, 5);
        assert!((report.mean_sender_utilization() - (4 + 1) as f64 / 8.0).abs() < 1e-12);
        assert!(report.within_step_bound(2));
    }

    #[test]
    fn json_export_has_round_entries() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.annotate_round(7);
            let other = 1 - comm.rank();
            comm.exchange(other, 0, vec![1.0]).unwrap();
            comm.clear_round();
        });
        let v = OccupancyReport::from_traces(&traces).to_json();
        assert_eq!(v.get("num_rounds").unwrap().as_u64(), Some(1));
        let rounds = v.get("rounds").unwrap().as_array().unwrap();
        assert_eq!(rounds[0].get("round").unwrap().as_u64(), Some(7));
    }
}
