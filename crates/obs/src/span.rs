//! Phase-span extraction from per-rank event logs.
//!
//! [`crate::Comm::with_phase`](symtensor_mpsim::Comm::with_phase) brackets a
//! region with `PhaseEnter`/`PhaseExit` events carrying counter snapshots.
//! This module replays a rank's event log and reconstructs the tree of
//! phases as flat [`PhaseSpan`] records: wall-clock interval, nesting depth,
//! and the *exact* [`RankCost`] delta incurred inside the phase (exit
//! snapshot minus enter snapshot).

use std::collections::BTreeMap;
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::{CommEvent, RankCost};

/// One completed phase on one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Rank the phase ran on.
    pub rank: usize,
    /// Phase label.
    pub name: &'static str,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Nanoseconds since the universe epoch at entry.
    pub start_ns: u64,
    /// Nanoseconds since the universe epoch at exit.
    pub end_ns: u64,
    /// Exact communication-cost delta incurred within the phase
    /// (including nested phases).
    pub cost: RankCost,
}

impl PhaseSpan {
    /// Wall-clock duration of the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Reconstructs the completed phase spans of one rank's event log, in order
/// of phase *entry*. Unmatched `PhaseEnter`s (phases still open when the log
/// was collected) are dropped; unmatched `PhaseExit`s are ignored.
pub fn spans_of_rank(rank: usize, events: &[CommEvent]) -> Vec<PhaseSpan> {
    // (position in `out`, start time, enter snapshot)
    let mut stack: Vec<(usize, u64, RankCost)> = Vec::new();
    let mut out: Vec<Option<PhaseSpan>> = Vec::new();
    for event in events {
        match event.kind {
            CommEventKind::PhaseEnter { name, snapshot } => {
                let depth = stack.len();
                out.push(Some(PhaseSpan {
                    rank,
                    name,
                    depth,
                    start_ns: event.t_ns,
                    end_ns: event.t_ns,
                    cost: RankCost::default(),
                }));
                stack.push((out.len() - 1, event.t_ns, snapshot));
            }
            CommEventKind::PhaseExit { name, snapshot } => {
                if let Some((slot, start_ns, entered)) = stack.pop() {
                    let span = out[slot].as_mut().expect("span slot filled at enter");
                    debug_assert_eq!(span.name, name, "mismatched phase nesting");
                    span.start_ns = start_ns;
                    span.end_ns = event.t_ns;
                    span.cost = snapshot.delta_since(&entered);
                }
            }
            _ => {}
        }
    }
    // Drop phases never exited.
    while let Some((slot, _, _)) = stack.pop() {
        out[slot] = None;
    }
    out.into_iter().flatten().collect()
}

/// All ranks' spans, flattened (rank-major, entry order within a rank).
pub fn spans(traces: &[Vec<CommEvent>]) -> Vec<PhaseSpan> {
    traces.iter().enumerate().flat_map(|(rank, events)| spans_of_rank(rank, events)).collect()
}

/// Aggregate statistics for one phase label across ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of spans with this label (across all ranks and repetitions).
    pub count: u64,
    /// Total wall-clock nanoseconds across spans.
    pub total_ns: u64,
    /// Maximum single-span duration.
    pub max_ns: u64,
    /// Summed communication cost across spans.
    pub total_cost: RankCost,
    /// Maximum over spans of `max(words_sent, words_recv)` — the per-phase
    /// bandwidth-cost contribution in the α-β-γ model.
    pub max_bandwidth: u64,
}

/// Per-phase aggregate over a set of spans, keyed by label.
///
/// Only **top-level** spans (`depth == 0`) are aggregated so that word
/// totals partition the run: nested phases would otherwise double-count
/// their parents' traffic.
pub fn phase_stats(spans: &[PhaseSpan]) -> BTreeMap<&'static str, PhaseStats> {
    let mut map: BTreeMap<&'static str, PhaseStats> = BTreeMap::new();
    for span in spans.iter().filter(|s| s.depth == 0) {
        let entry = map.entry(span.name).or_default();
        entry.count += 1;
        entry.total_ns += span.duration_ns();
        entry.max_ns = entry.max_ns.max(span.duration_ns());
        entry.total_cost = RankCost {
            words_sent: entry.total_cost.words_sent + span.cost.words_sent,
            words_recv: entry.total_cost.words_recv + span.cost.words_recv,
            msgs_sent: entry.total_cost.msgs_sent + span.cost.msgs_sent,
            msgs_recv: entry.total_cost.msgs_recv + span.cost.msgs_recv,
            rounds: entry.total_cost.rounds + span.cost.rounds,
        };
        entry.max_bandwidth = entry.max_bandwidth.max(span.cost.bandwidth());
    }
    map
}

/// Per-phase aggregate over **all** spans with a given label, at any
/// nesting depth.
///
/// Complement to [`phase_stats`]: use this to pull out *nested*
/// instrumentation such as the `compute:kernel` span that Algorithm 5 opens
/// inside its `local-compute` phase — e.g. to compare pure kernel time
/// against the enclosing phase, or to sum kernel time across a batched
/// run's repeated invocations. Because nested spans overlap their parents,
/// the returned totals do **not** partition the run; they answer "how much
/// time/traffic happened under this label", not "what share of the run was
/// this".
pub fn phase_stats_by_name(spans: &[PhaseSpan], name: &str) -> PhaseStats {
    let mut stats = PhaseStats::default();
    for span in spans.iter().filter(|s| s.name == name) {
        stats.count += 1;
        stats.total_ns += span.duration_ns();
        stats.max_ns = stats.max_ns.max(span.duration_ns());
        stats.total_cost = RankCost {
            words_sent: stats.total_cost.words_sent + span.cost.words_sent,
            words_recv: stats.total_cost.words_recv + span.cost.words_recv,
            msgs_sent: stats.total_cost.msgs_sent + span.cost.msgs_sent,
            msgs_recv: stats.total_cost.msgs_recv + span.cost.msgs_recv,
            rounds: stats.total_cost.rounds + span.cost.rounds,
        };
        stats.max_bandwidth = stats.max_bandwidth.max(span.cost.bandwidth());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    #[test]
    fn spans_reconstruct_nesting_and_cost() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("outer", || {
                comm.with_phase("inner", || {
                    if comm.rank() == 0 {
                        comm.send(1, 0, vec![0.0; 5]);
                    } else {
                        comm.recv(0, 0).unwrap();
                    }
                });
            });
        });
        let spans0 = spans_of_rank(0, &traces[0]);
        assert_eq!(spans0.len(), 2);
        let outer = spans0.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans0.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        // Nested traffic is included in the parent's delta.
        assert_eq!(outer.cost.words_sent, 5);
        assert_eq!(inner.cost.words_sent, 5);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        let spans1 = spans_of_rank(1, &traces[1]);
        assert_eq!(spans1.iter().find(|s| s.name == "inner").unwrap().cost.words_recv, 5);
    }

    #[test]
    fn stats_aggregate_top_level_only() {
        let (_, report, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("a", || {
                comm.with_phase("a-sub", || {
                    let other = 1 - comm.rank();
                    comm.exchange(other, 1, vec![1.0; 3]).unwrap();
                });
            });
            comm.with_phase("b", || {
                let other = 1 - comm.rank();
                comm.exchange(other, 2, vec![1.0; 4]).unwrap();
            });
        });
        let stats = phase_stats(&spans(&traces));
        // Nested "a-sub" is not a top-level key.
        assert!(!stats.contains_key("a-sub"));
        assert_eq!(stats["a"].total_cost.words_sent, 6); // 3 words × 2 ranks
        assert_eq!(stats["b"].total_cost.words_sent, 8);
        // Top-level phases partition the run: per-phase totals sum to the
        // whole run's totals.
        let sum: u64 = stats.values().map(|s| s.total_cost.words_sent).sum();
        assert_eq!(sum, report.total_words_sent());
    }

    #[test]
    fn by_name_stats_see_nested_spans() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("a", || {
                comm.with_phase("kernel", || {});
            });
            comm.with_phase("b", || {
                comm.with_phase("kernel", || {});
                comm.with_phase("kernel", || {});
            });
        });
        let all = spans(&traces);
        // Top-level aggregation hides the nested label entirely...
        assert!(!phase_stats(&all).contains_key("kernel"));
        // ...but the by-name view counts every occurrence: 3 per rank.
        let kernel = phase_stats_by_name(&all, "kernel");
        assert_eq!(kernel.count, 6);
        assert_eq!(phase_stats_by_name(&all, "a").count, 2);
        assert_eq!(phase_stats_by_name(&all, "nope").count, 0);
    }

    #[test]
    fn algorithm5_traces_expose_the_nested_kernel_span() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use symtensor_core::generate::random_symmetric;
        use symtensor_parallel::{parallel_sttsv_traced, Mode, TetraPartition};
        use symtensor_steiner::spherical;

        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let (_, traces) = parallel_sttsv_traced(&tensor, &part, &x, Mode::Scheduled);

        let all = spans(&traces);
        // Every rank opens exactly one compute:kernel span, nested at depth
        // 1 inside local-compute — so the top-level partition is untouched.
        let kernels: Vec<_> = all.iter().filter(|s| s.name == "compute:kernel").collect();
        assert_eq!(kernels.len(), part.num_procs());
        assert!(kernels.iter().all(|s| s.depth == 1));
        assert!(kernels.iter().all(|s| s.cost.words_sent == 0), "kernels must not communicate");
        let stats = phase_stats(&all);
        assert!(!stats.contains_key("compute:kernel"));
        assert!(stats.contains_key("local-compute"));
        // The kernel time is contained in the local-compute phase time.
        let kernel = phase_stats_by_name(&all, "compute:kernel");
        let local = phase_stats_by_name(&all, "local-compute");
        assert_eq!(kernel.count, local.count);
        assert!(kernel.total_ns <= local.total_ns);
    }

    #[test]
    fn unclosed_phase_is_dropped() {
        use symtensor_mpsim::cost::CommEventKind;
        let events = vec![CommEvent {
            t_ns: 1,
            phase: None,
            round: None,
            kind: CommEventKind::PhaseEnter { name: "open", snapshot: RankCost::default() },
        }];
        assert!(spans_of_rank(0, &events).is_empty());
    }
}
