//! Phase-span extraction from per-rank event logs.
//!
//! [`crate::Comm::with_phase`](symtensor_mpsim::Comm::with_phase) brackets a
//! region with `PhaseEnter`/`PhaseExit` events carrying counter snapshots.
//! This module replays a rank's event log and reconstructs the tree of
//! phases as flat [`PhaseSpan`] records: wall-clock interval, nesting depth,
//! and the *exact* [`RankCost`] delta incurred inside the phase (exit
//! snapshot minus enter snapshot).

use std::collections::BTreeMap;
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::{CommEvent, RankCost};

/// One completed phase on one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Rank the phase ran on.
    pub rank: usize,
    /// Phase label.
    pub name: &'static str,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Nanoseconds since the universe epoch at entry.
    pub start_ns: u64,
    /// Nanoseconds since the universe epoch at exit.
    pub end_ns: u64,
    /// Exact communication-cost delta incurred within the phase
    /// (including nested phases).
    pub cost: RankCost,
}

impl PhaseSpan {
    /// Wall-clock duration of the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Reconstructs the completed phase spans of one rank's event log, in order
/// of phase *entry*. Unmatched `PhaseEnter`s (phases still open when the log
/// was collected) are dropped; unmatched `PhaseExit`s are ignored.
pub fn spans_of_rank(rank: usize, events: &[CommEvent]) -> Vec<PhaseSpan> {
    // (position in `out`, start time, enter snapshot)
    let mut stack: Vec<(usize, u64, RankCost)> = Vec::new();
    let mut out: Vec<Option<PhaseSpan>> = Vec::new();
    for event in events {
        match event.kind {
            CommEventKind::PhaseEnter { name, snapshot } => {
                let depth = stack.len();
                out.push(Some(PhaseSpan {
                    rank,
                    name,
                    depth,
                    start_ns: event.t_ns,
                    end_ns: event.t_ns,
                    cost: RankCost::default(),
                }));
                stack.push((out.len() - 1, event.t_ns, snapshot));
            }
            CommEventKind::PhaseExit { name, snapshot } => {
                if let Some((slot, start_ns, entered)) = stack.pop() {
                    let span = out[slot].as_mut().expect("span slot filled at enter");
                    debug_assert_eq!(span.name, name, "mismatched phase nesting");
                    span.start_ns = start_ns;
                    span.end_ns = event.t_ns;
                    span.cost = snapshot.delta_since(&entered);
                }
            }
            _ => {}
        }
    }
    // Drop phases never exited.
    while let Some((slot, _, _)) = stack.pop() {
        out[slot] = None;
    }
    out.into_iter().flatten().collect()
}

/// All ranks' spans, flattened (rank-major, entry order within a rank).
pub fn spans(traces: &[Vec<CommEvent>]) -> Vec<PhaseSpan> {
    traces.iter().enumerate().flat_map(|(rank, events)| spans_of_rank(rank, events)).collect()
}

/// Aggregate statistics for one phase label across ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of spans with this label (across all ranks and repetitions).
    pub count: u64,
    /// Total wall-clock nanoseconds across spans.
    pub total_ns: u64,
    /// Maximum single-span duration.
    pub max_ns: u64,
    /// Summed communication cost across spans.
    pub total_cost: RankCost,
    /// Maximum over spans of `max(words_sent, words_recv)` — the per-phase
    /// bandwidth-cost contribution in the α-β-γ model.
    pub max_bandwidth: u64,
}

/// Per-phase aggregate over a set of spans, keyed by label.
///
/// Only **top-level** spans (`depth == 0`) are aggregated so that word
/// totals partition the run: nested phases would otherwise double-count
/// their parents' traffic.
pub fn phase_stats(spans: &[PhaseSpan]) -> BTreeMap<&'static str, PhaseStats> {
    let mut map: BTreeMap<&'static str, PhaseStats> = BTreeMap::new();
    for span in spans.iter().filter(|s| s.depth == 0) {
        let entry = map.entry(span.name).or_default();
        entry.count += 1;
        entry.total_ns += span.duration_ns();
        entry.max_ns = entry.max_ns.max(span.duration_ns());
        entry.total_cost = RankCost {
            words_sent: entry.total_cost.words_sent + span.cost.words_sent,
            words_recv: entry.total_cost.words_recv + span.cost.words_recv,
            msgs_sent: entry.total_cost.msgs_sent + span.cost.msgs_sent,
            msgs_recv: entry.total_cost.msgs_recv + span.cost.msgs_recv,
            rounds: entry.total_cost.rounds + span.cost.rounds,
        };
        entry.max_bandwidth = entry.max_bandwidth.max(span.cost.bandwidth());
    }
    map
}

/// Per-phase aggregate over **all** spans with a given label, at any
/// nesting depth.
///
/// Complement to [`phase_stats`]: use this to pull out *nested*
/// instrumentation such as the `compute:kernel` span that Algorithm 5 opens
/// inside its `local-compute` phase — e.g. to compare pure kernel time
/// against the enclosing phase, or to sum kernel time across a batched
/// run's repeated invocations. Because nested spans overlap their parents,
/// the returned totals do **not** partition the run; they answer "how much
/// time/traffic happened under this label", not "what share of the run was
/// this".
pub fn phase_stats_by_name(spans: &[PhaseSpan], name: &str) -> PhaseStats {
    let mut stats = PhaseStats::default();
    for span in spans.iter().filter(|s| s.name == name) {
        stats.count += 1;
        stats.total_ns += span.duration_ns();
        stats.max_ns = stats.max_ns.max(span.duration_ns());
        stats.total_cost = RankCost {
            words_sent: stats.total_cost.words_sent + span.cost.words_sent,
            words_recv: stats.total_cost.words_recv + span.cost.words_recv,
            msgs_sent: stats.total_cost.msgs_sent + span.cost.msgs_sent,
            msgs_recv: stats.total_cost.msgs_recv + span.cost.msgs_recv,
            rounds: stats.total_cost.rounds + span.cost.rounds,
        };
        stats.max_bandwidth = stats.max_bandwidth.max(span.cost.bandwidth());
    }
    stats
}

/// Aggregate of one annotated counter key (see
/// [`symtensor_mpsim::Comm::annotate_counter`]) across event logs.
///
/// Counters are point samples, not deltas: `last` is the most recent value
/// observed (useful for gauges such as arena bytes), `max`/`min` bound the
/// series, and `total` sums every sample (useful for per-call counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterStats {
    /// Number of samples recorded under this key.
    pub count: u64,
    /// The most recently sampled value.
    pub last: u64,
    /// Maximum sample.
    pub max: u64,
    /// Minimum sample.
    pub min: u64,
    /// Sum of all samples.
    pub total: u64,
}

impl Default for CounterStats {
    fn default() -> Self {
        CounterStats { count: 0, last: 0, max: 0, min: u64::MAX, total: 0 }
    }
}

impl CounterStats {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.last = value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.total += value;
    }
}

/// Per-key aggregates of every [`CommEventKind::Counter`] sample across all
/// ranks' event logs. Pass `phase: Some(name)` to restrict to samples taken
/// while `name` was the *innermost* active phase (the attribution recorded
/// on the event itself) — e.g. `Some("compute:kernel")` pulls out the
/// arena-bytes and steady-state-allocation gauges the compiled-plan kernel
/// annotates.
pub fn counter_stats(
    traces: &[Vec<CommEvent>],
    phase: Option<&str>,
) -> BTreeMap<&'static str, CounterStats> {
    let mut map: BTreeMap<&'static str, CounterStats> = BTreeMap::new();
    for events in traces {
        for event in events {
            if let CommEventKind::Counter { key, value } = event.kind {
                if phase.is_none_or(|p| event.phase == Some(p)) {
                    map.entry(key).or_default().record(value);
                }
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    #[test]
    fn spans_reconstruct_nesting_and_cost() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("outer", || {
                comm.with_phase("inner", || {
                    if comm.rank() == 0 {
                        comm.send(1, 0, vec![0.0; 5]);
                    } else {
                        comm.recv(0, 0).unwrap();
                    }
                });
            });
        });
        let spans0 = spans_of_rank(0, &traces[0]);
        assert_eq!(spans0.len(), 2);
        let outer = spans0.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans0.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        // Nested traffic is included in the parent's delta.
        assert_eq!(outer.cost.words_sent, 5);
        assert_eq!(inner.cost.words_sent, 5);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        let spans1 = spans_of_rank(1, &traces[1]);
        assert_eq!(spans1.iter().find(|s| s.name == "inner").unwrap().cost.words_recv, 5);
    }

    #[test]
    fn stats_aggregate_top_level_only() {
        let (_, report, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("a", || {
                comm.with_phase("a-sub", || {
                    let other = 1 - comm.rank();
                    comm.exchange(other, 1, vec![1.0; 3]).unwrap();
                });
            });
            comm.with_phase("b", || {
                let other = 1 - comm.rank();
                comm.exchange(other, 2, vec![1.0; 4]).unwrap();
            });
        });
        let stats = phase_stats(&spans(&traces));
        // Nested "a-sub" is not a top-level key.
        assert!(!stats.contains_key("a-sub"));
        assert_eq!(stats["a"].total_cost.words_sent, 6); // 3 words × 2 ranks
        assert_eq!(stats["b"].total_cost.words_sent, 8);
        // Top-level phases partition the run: per-phase totals sum to the
        // whole run's totals.
        let sum: u64 = stats.values().map(|s| s.total_cost.words_sent).sum();
        assert_eq!(sum, report.total_words_sent());
    }

    #[test]
    fn by_name_stats_see_nested_spans() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("a", || {
                comm.with_phase("kernel", || {});
            });
            comm.with_phase("b", || {
                comm.with_phase("kernel", || {});
                comm.with_phase("kernel", || {});
            });
        });
        let all = spans(&traces);
        // Top-level aggregation hides the nested label entirely...
        assert!(!phase_stats(&all).contains_key("kernel"));
        // ...but the by-name view counts every occurrence: 3 per rank.
        let kernel = phase_stats_by_name(&all, "kernel");
        assert_eq!(kernel.count, 6);
        assert_eq!(phase_stats_by_name(&all, "a").count, 2);
        assert_eq!(phase_stats_by_name(&all, "nope").count, 0);
    }

    #[test]
    fn algorithm5_traces_expose_the_nested_kernel_span() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use symtensor_core::generate::random_symmetric;
        use symtensor_parallel::{parallel_sttsv_traced, Mode, TetraPartition};
        use symtensor_steiner::spherical;

        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let (_, traces) = parallel_sttsv_traced(&tensor, &part, &x, Mode::Scheduled);

        let all = spans(&traces);
        // Every rank opens exactly one compute:kernel span, nested at depth
        // 1 inside local-compute — so the top-level partition is untouched.
        let kernels: Vec<_> = all.iter().filter(|s| s.name == "compute:kernel").collect();
        assert_eq!(kernels.len(), part.num_procs());
        assert!(kernels.iter().all(|s| s.depth == 1));
        assert!(kernels.iter().all(|s| s.cost.words_sent == 0), "kernels must not communicate");
        let stats = phase_stats(&all);
        assert!(!stats.contains_key("compute:kernel"));
        assert!(stats.contains_key("local-compute"));
        // The kernel time is contained in the local-compute phase time.
        let kernel = phase_stats_by_name(&all, "compute:kernel");
        let local = phase_stats_by_name(&all, "local-compute");
        assert_eq!(kernel.count, local.count);
        assert!(kernel.total_ns <= local.total_ns);
    }

    #[test]
    fn counter_stats_aggregate_and_filter_by_phase() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("compute", || {
                comm.annotate_counter("arena_bytes", 4096);
                comm.annotate_counter("fresh_allocs", 2);
                comm.annotate_counter("fresh_allocs", 2);
            });
            comm.annotate_counter("fresh_allocs", 7); // outside any phase
        });
        let all = counter_stats(&traces, None);
        assert_eq!(all["arena_bytes"].count, 2); // one per rank
        assert_eq!(all["arena_bytes"].last, 4096);
        assert_eq!(all["arena_bytes"].max, 4096);
        assert_eq!(all["arena_bytes"].min, 4096);
        assert_eq!(all["fresh_allocs"].count, 6);
        assert_eq!(all["fresh_allocs"].total, 2 * (2 + 2 + 7));
        assert_eq!(all["fresh_allocs"].max, 7);
        assert_eq!(all["fresh_allocs"].min, 2);
        // Phase filter keeps only samples attributed to that innermost phase.
        let inside = counter_stats(&traces, Some("compute"));
        assert_eq!(inside["fresh_allocs"].count, 4);
        assert_eq!(inside["fresh_allocs"].total, 8);
        assert!(counter_stats(&traces, Some("nope")).is_empty());
    }

    #[test]
    fn planned_sttsv_annotates_kernel_counters() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use symtensor_core::generate::random_symmetric;
        use symtensor_mpsim::Universe;
        use symtensor_parallel::{Mode, RankContext, TetraPartition};
        use symtensor_steiner::spherical;

        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let iterations = 3;

        let (_, _, traces) = Universe::new(part.num_procs()).run_traced(|comm| {
            let p = comm.rank();
            let ctx = RankContext::new(&tensor, &part, p, Mode::AllToAllSparse, None).with_plan();
            let mut shards: Vec<Vec<f64>> = part
                .r_set(p)
                .iter()
                .map(|&i| x[part.block_range(i)][part.shard_range(i, p)].to_vec())
                .collect();
            for _ in 0..iterations {
                let (y, _) = ctx.sttsv(comm, &shards);
                shards = y;
            }
        });
        // The kernel gauges live inside the nested compute:kernel span.
        let kernel = counter_stats(&traces, Some("compute:kernel"));
        let arena = kernel["plan:arena_bytes"];
        assert_eq!(arena.count as usize, iterations * part.num_procs());
        assert!(arena.last > 0);
        assert_eq!(kernel["plan:fresh_allocs"].count, arena.count);
        // Per rank: the arena gauge never moves (it is sized once at
        // compile time) and the cumulative fresh-allocation gauge is *flat*
        // across iterations — all buffer growth happens during the first
        // iteration's warm-up, before the first kernel sample.
        for events in &traces {
            let per = counter_stats(std::slice::from_ref(events), Some("compute:kernel"));
            let rank_arena = per["plan:arena_bytes"];
            assert_eq!(rank_arena.count as usize, iterations);
            assert_eq!(rank_arena.min, rank_arena.max, "the arena never reallocates");
            let fresh = per["plan:fresh_allocs"];
            assert_eq!(fresh.count as usize, iterations);
            assert_eq!(fresh.min, fresh.max, "fresh allocs must not grow after warm-up");
        }
    }

    #[test]
    fn unclosed_phase_is_dropped() {
        use symtensor_mpsim::cost::CommEventKind;
        let events = vec![CommEvent {
            t_ns: 1,
            phase: None,
            round: None,
            kind: CommEventKind::PhaseEnter { name: "open", snapshot: RankCost::default() },
        }];
        assert!(spans_of_rank(0, &events).is_empty());
    }
}
