//! Chrome trace-event (Perfetto-loadable) export.
//!
//! Emits the JSON object format `{"traceEvents": [...]}` understood by
//! `ui.perfetto.dev` and `chrome://tracing`:
//!
//! * one track per rank (`pid` 1, `tid` = rank, named via `M` metadata
//!   events),
//! * every completed phase as an `X` (complete) event with `ts`/`dur` in
//!   microseconds and the phase's exact word/message deltas in `args`,
//! * every send and receive as an `i` (instant) event carrying peer, tag,
//!   word count and (when present) the schedule round.
//!
//! Timestamps are the simulator's shared-epoch nanoseconds converted to the
//! fractional microseconds the format requires, so cross-rank ordering in
//! the UI matches real interleaving.

use crate::json::Value;
use crate::span::spans_of_rank;
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::CommEvent;

/// Process id used for all ranks (the whole universe is one process).
const PID: u64 = 1;

fn us(t_ns: u64) -> f64 {
    t_ns as f64 / 1_000.0
}

/// Builds the Chrome trace document from per-rank event logs (indexed by
/// rank, as returned by [`symtensor_mpsim::Universe::run_traced`]).
pub fn chrome_trace(traces: &[Vec<CommEvent>]) -> Value {
    Value::object()
        .with("traceEvents", Value::Array(chrome_trace_events(PID, None, traces)))
        .with("displayTimeUnit", "ns")
}

/// Builds a single document containing several labeled runs, one Perfetto
/// *process* per run (`pid` = run index + 1, named by an `M`
/// `process_name` metadata event) with one thread track per rank inside
/// it. This is how the `experiment`/`sweep` binaries merge every traced
/// run of a session into one `--trace` file.
pub fn chrome_trace_multi(runs: &[(String, Vec<Vec<CommEvent>>)]) -> Value {
    let mut events = Vec::new();
    for (idx, (label, traces)) in runs.iter().enumerate() {
        events.extend(chrome_trace_events(idx as u64 + 1, Some(label), traces));
    }
    Value::object().with("traceEvents", Value::Array(events)).with("displayTimeUnit", "ns")
}

/// The flat event list for one run under process id `pid` (optionally
/// named `process_name`).
fn chrome_trace_events(
    pid: u64,
    process_name: Option<&str>,
    traces: &[Vec<CommEvent>],
) -> Vec<Value> {
    let mut events: Vec<Value> = Vec::new();

    if let Some(name) = process_name {
        events.push(
            Value::object()
                .with("name", "process_name")
                .with("ph", "M")
                .with("pid", pid)
                .with("tid", 0u64)
                .with("args", Value::object().with("name", name)),
        );
    }
    for rank in 0..traces.len() {
        // Track naming metadata.
        events.push(
            Value::object()
                .with("name", "thread_name")
                .with("ph", "M")
                .with("pid", pid)
                .with("tid", rank)
                .with("args", Value::object().with("name", format!("rank {rank}"))),
        );
    }

    for (rank, rank_events) in traces.iter().enumerate() {
        // Completed phases as X (complete) duration events.
        for span in spans_of_rank(rank, rank_events) {
            events.push(
                Value::object()
                    .with("name", span.name)
                    .with("cat", "phase")
                    .with("ph", "X")
                    .with("pid", pid)
                    .with("tid", rank)
                    .with("ts", us(span.start_ns))
                    .with("dur", us(span.end_ns.saturating_sub(span.start_ns)))
                    .with(
                        "args",
                        Value::object()
                            .with("words_sent", span.cost.words_sent)
                            .with("words_recv", span.cost.words_recv)
                            .with("msgs_sent", span.cost.msgs_sent)
                            .with("msgs_recv", span.cost.msgs_recv)
                            .with("rounds", span.cost.rounds),
                    ),
            );
        }
        // Sends/recvs as instants, annotated counters as counter tracks.
        for event in rank_events {
            let (name, cat, peer_key, peer, tag, words) = match event.kind {
                CommEventKind::Send { dst, tag, words } => ("send", "comm", "dst", dst, tag, words),
                CommEventKind::Recv { src, tag, words } => ("recv", "comm", "src", src, tag, words),
                CommEventKind::Counter { key, value } => {
                    // `C` events render as a per-rank counter track in
                    // Perfetto; the args key names the series.
                    events.push(
                        Value::object()
                            .with("name", key)
                            .with("cat", "counter")
                            .with("ph", "C")
                            .with("pid", pid)
                            .with("tid", rank)
                            .with("ts", us(event.t_ns))
                            .with("args", Value::object().with(key, value)),
                    );
                    continue;
                }
                _ => continue,
            };
            let mut args =
                Value::object().with(peer_key, peer).with("tag", tag).with("words", words);
            if let Some(round) = event.round {
                args.set("round", round);
            }
            if let Some(phase) = event.phase {
                args.set("phase", phase);
            }
            events.push(
                Value::object()
                    .with("name", name)
                    .with("cat", cat)
                    .with("ph", "i")
                    .with("s", "t") // thread-scoped instant
                    .with("pid", pid)
                    .with("tid", rank)
                    .with("ts", us(event.t_ns))
                    .with("args", args),
            );
        }
    }

    // Emit a chronological stream: metadata first, then events by `ts`
    // (Perfetto sorts internally, but a sorted file is diffable and lets
    // simple consumers scan per-rank timelines without re-sorting).
    events.sort_by(|a, b| {
        let key = |e: &Value| match e.get("ph").and_then(Value::as_str) {
            Some("M") => (0u8, 0.0f64),
            _ => (1, e.get("ts").and_then(Value::as_f64).unwrap_or(0.0)),
        };
        let (ka, kb) = (key(a), key(b));
        ka.0.cmp(&kb.0).then(ka.1.partial_cmp(&kb.1).unwrap_or(std::cmp::Ordering::Equal))
    });

    events
}

/// Serializes [`chrome_trace`] to a pretty-printed JSON string ready to be
/// written to a `.json` file and opened in Perfetto.
pub fn chrome_trace_string(traces: &[Vec<CommEvent>]) -> String {
    chrome_trace(traces).to_string_pretty()
}

/// Like [`chrome_trace`], but with two additional *profile* counter tracks
/// derived from send/recv matching:
///
/// * `recv_wait_ns` — one `C` sample per matched message at its receive
///   time, valued at the message's measured transit (recv − send) time, on
///   the receiving rank's track;
/// * `round_step_ns` — one `C` sample per `(phase, round)` schedule step at
///   the step's last receive time, valued at the step's span (last receive
///   − first send), on `tid` 0.
///
/// These are the same quantities [`crate::ProfileHistograms`] aggregates;
/// the counter tracks let Perfetto plot them over virtual time.
pub fn chrome_trace_with_profile(traces: &[Vec<CommEvent>]) -> Value {
    let mut events = chrome_trace_events(PID, None, traces);
    events.extend(profile_counter_events(traces));
    Value::object().with("traceEvents", Value::Array(events)).with("displayTimeUnit", "ns")
}

/// The `C` (counter) events backing [`chrome_trace_with_profile`].
fn profile_counter_events(traces: &[Vec<CommEvent>]) -> Vec<Value> {
    use std::collections::BTreeMap;
    let report = symtensor_mpsim::match_messages(traces);
    let mut events = Vec::new();
    // (phase, round) → (first send ns, last recv ns).
    let mut steps: BTreeMap<(Option<&'static str>, u64), (u64, u64)> = BTreeMap::new();
    for m in &report.matches {
        events.push(
            Value::object()
                .with("name", "recv_wait_ns")
                .with("ph", "C")
                .with("cat", "profile")
                .with("ts", us(m.recv_t_ns))
                .with("pid", PID)
                .with("tid", m.dst)
                .with("args", Value::object().with("value", m.transit_ns())),
        );
        if let Some(round) = m.round {
            let entry = steps.entry((m.send_phase, round)).or_insert((m.send_t_ns, m.recv_t_ns));
            entry.0 = entry.0.min(m.send_t_ns);
            entry.1 = entry.1.max(m.recv_t_ns);
        }
    }
    for ((_, _), (first_send, last_recv)) in steps {
        events.push(
            Value::object()
                .with("name", "round_step_ns")
                .with("ph", "C")
                .with("cat", "profile")
                .with("ts", us(last_recv))
                .with("pid", PID)
                .with("tid", 0u64)
                .with("args", Value::object().with("value", last_recv - first_send)),
        );
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use symtensor_mpsim::Universe;

    fn sample_traces() -> Vec<Vec<CommEvent>> {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("exchange", || {
                comm.annotate_round(3);
                let other = 1 - comm.rank();
                comm.exchange(other, 9, vec![0.0; 4]).unwrap();
                comm.clear_round();
            });
        });
        traces
    }

    #[test]
    fn trace_is_valid_json_with_expected_events() {
        let traces = sample_traces();
        let text = chrome_trace_string(&traces);
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata + 2 phase spans + (2 sends + 2 recvs) instants.
        assert_eq!(events.len(), 2 + 2 + 4);
        let phases: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).collect();
        assert_eq!(phases.len(), 2);
        for phase in &phases {
            assert_eq!(phase.get("name").unwrap().as_str(), Some("exchange"));
            assert_eq!(phase.get("args").unwrap().get("words_sent").unwrap().as_u64(), Some(4));
        }
        let instants: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("i")).collect();
        assert_eq!(instants.len(), 4);
        for instant in &instants {
            let args = instant.get("args").unwrap();
            assert_eq!(args.get("round").unwrap().as_u64(), Some(3));
            assert_eq!(args.get("phase").unwrap().as_str(), Some("exchange"));
            assert_eq!(args.get("words").unwrap().as_u64(), Some(4));
        }
    }

    #[test]
    fn annotated_counters_become_counter_track_events() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("compute", || {
                comm.annotate_counter("arena_bytes", 1024 + comm.rank() as u64);
            });
        });
        let text = chrome_trace_string(&traces);
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("C")).collect();
        assert_eq!(counters.len(), 2);
        for counter in &counters {
            assert_eq!(counter.get("name").unwrap().as_str(), Some("arena_bytes"));
            assert_eq!(counter.get("cat").unwrap().as_str(), Some("counter"));
            let rank = counter.get("tid").unwrap().as_u64().unwrap();
            assert_eq!(
                counter.get("args").unwrap().get("arena_bytes").unwrap().as_u64(),
                Some(1024 + rank)
            );
        }
    }

    #[test]
    fn per_rank_timestamps_are_monotone() {
        let traces = sample_traces();
        for events in &traces {
            let mut last = 0;
            for e in events {
                assert!(e.t_ns >= last, "timestamps must be non-decreasing per rank");
                last = e.t_ns;
            }
        }
    }

    #[test]
    fn multi_run_document_separates_processes() {
        let runs =
            vec![("first".to_string(), sample_traces()), ("second".to_string(), sample_traces())];
        let doc = chrome_trace_multi(&runs);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let process_names: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some("process_name")
                    && e.get("ph").and_then(Value::as_str) == Some("M")
            })
            .map(|e| {
                (
                    e.get("pid").unwrap().as_u64().unwrap(),
                    e.get("args").unwrap().get("name").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(process_names, vec![(1, "first".to_string()), (2, "second".to_string())]);
        // Every non-metadata event belongs to pid 1 or 2.
        for e in events {
            let pid = e.get("pid").unwrap().as_u64().unwrap();
            assert!(pid == 1 || pid == 2);
        }
    }

    #[test]
    fn profile_counters_add_wait_and_step_tracks() {
        let traces = sample_traces();
        let doc = chrome_trace_with_profile(&traces);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let base = chrome_trace(&traces);
        let base_len = base.get("traceEvents").unwrap().as_array().unwrap().len();
        // 2 matched messages → 2 recv_wait samples + 1 (phase, round) step.
        assert_eq!(events.len(), base_len + 3);
        let waits: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("recv_wait_ns"))
            .collect();
        assert_eq!(waits.len(), 2);
        for w in &waits {
            assert_eq!(w.get("ph").unwrap().as_str(), Some("C"));
            assert!(w.get("args").unwrap().get("value").unwrap().as_u64().is_some());
        }
        let steps: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("round_step_ns"))
            .collect();
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn metadata_names_every_rank_track() {
        let traces = sample_traces();
        let doc = chrome_trace(&traces);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["rank 0", "rank 1"]);
    }
}
