#![warn(missing_docs)]
//! Observability for the simulated α-β-γ machine: phase-scoped spans, a
//! metrics registry, the P×P communication matrix, schedule-step occupancy
//! and Perfetto-loadable trace export.
//!
//! The `symtensor-mpsim` runtime counts every word on the send/recv hot
//! path and — when tracing is enabled — records timestamped, phase- and
//! round-annotated [`CommEvent`]s per rank. This crate turns those raw logs
//! into things a person can look at:
//!
//! * [`span`] — reconstructs the tree of [`Comm::with_phase`] regions as
//!   [`span::PhaseSpan`]s whose cost deltas are *exact* (snapshot
//!   subtraction, not sampling), and aggregates per-phase statistics that
//!   partition the run's total traffic.
//! * [`metrics`] — a thread-safe counters/gauges/histograms registry with
//!   power-of-two buckets; [`metrics::MetricsRegistry::record_run`] ingests
//!   a whole run including the per-message word-size histogram.
//! * [`matrix`] — the P×P words/messages matrix, whose row and column
//!   marginals must [reconcile](matrix::CommMatrix::reconcile) exactly with
//!   the hot-path [`CostReport`] counters.
//! * [`occupancy`] — per-round sender/receiver utilization of
//!   round-annotated schedules, checked against the paper's
//!   `q³/2 + 3q²/2 − 1` step bound.
//! * [`chrome`] — Chrome trace-event JSON export (one track per rank,
//!   phases as duration events, sends/recvs as instants) loadable in
//!   Perfetto.
//! * [`json`] — the minimal JSON value/serializer/parser the exporters are
//!   built on (the build environment is offline; no `serde_json`).
//!
//! Everything here consumes the *output* of a run ([`Universe::run_traced`]
//! returns `(results, CostReport, Vec<Vec<CommEvent>>)`); nothing in this
//! crate runs on the communication hot path, so enabling observability
//! cannot change the measured costs.
//!
//! [`Comm::with_phase`]: symtensor_mpsim::Comm::with_phase
//! [`Universe::run_traced`]: symtensor_mpsim::Universe::run_traced

pub mod chrome;
pub mod critical;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod matrix;
pub mod metrics;
pub mod occupancy;
pub mod regress;
pub mod replay;
pub mod schema;
pub mod slo;
pub mod span;
pub mod telemetry;

pub use chrome::{
    chrome_trace, chrome_trace_multi, chrome_trace_string, chrome_trace_with_profile,
};
pub use critical::{CriticalPath, StragglerReport};
pub use flight::{chrome_from_flight, flight_json, postmortem_json, reconcile_postmortem};
pub use histogram::{Histogram, ProfileHistograms};
pub use matrix::CommMatrix;
pub use metrics::MetricsRegistry;
pub use occupancy::{spherical_step_bound, OccupancyReport};
pub use regress::{parse_snapshot, BenchKey, BenchRecord, RegressionReport};
pub use replay::{AlphaBetaModel, PhaseOverlap, ReplayReport, OVERLAP_COMPUTE_PHASES};
pub use schema::{validate, ArtifactKind};
pub use slo::{quantile_cell, Exemplar, ExemplarHistogram, RequestLatency, SloReport};
pub use span::{
    counter_stats, phase_stats, phase_stats_by_name, spans, CounterStats, PhaseSpan, PhaseStats,
};
pub use telemetry::telemetry_json;

use symtensor_mpsim::{CommEvent, CostReport};

/// Everything observable about one traced run, bundled for export.
pub struct RunObservation {
    /// The exact per-rank cost counters.
    pub report: CostReport,
    /// Per-rank event logs.
    pub traces: Vec<Vec<CommEvent>>,
}

impl RunObservation {
    /// Bundles a report and its traces.
    pub fn new(report: CostReport, traces: Vec<Vec<CommEvent>>) -> Self {
        RunObservation { report, traces }
    }

    /// The P×P communication matrix (validated against the report).
    ///
    /// # Panics
    /// Panics if the trace-derived marginals disagree with the hot-path
    /// counters — that would mean the tracer dropped events.
    pub fn comm_matrix(&self) -> CommMatrix {
        let m = CommMatrix::from_traces(&self.traces);
        if let Err(e) = m.reconcile(&self.report) {
            panic!("trace/counter mismatch: {e}");
        }
        m
    }

    /// Flat list of completed phase spans across ranks.
    pub fn spans(&self) -> Vec<PhaseSpan> {
        spans(&self.traces)
    }

    /// Schedule-round occupancy.
    pub fn occupancy(&self) -> OccupancyReport {
        OccupancyReport::from_traces(&self.traces)
    }

    /// Chrome trace-event JSON document.
    pub fn chrome_trace(&self) -> json::Value {
        chrome_trace(&self.traces)
    }

    /// Virtual-clock replay of the traced run under `model`.
    ///
    /// # Panics
    /// Panics if the trace is not replayable (a receive with no matching
    /// send) — a run that completed on the simulator cannot produce such a
    /// trace unless events were dropped.
    pub fn replay(&self, model: AlphaBetaModel) -> ReplayReport {
        match replay::replay(&self.traces, model) {
            Ok(rep) => rep,
            Err(e) => panic!("trace is not replayable: {e}"),
        }
    }

    /// Replays an **overlapped-exchange** trace under `model`: compute is
    /// charged for both `local-compute` and the `compute:overlap` spans
    /// interleaved with the exchanges, so the virtual clock reproduces the
    /// pipelining instead of modeling the gather as pure waiting (see
    /// [`replay::replay_overlapped`]).
    ///
    /// # Panics
    /// Panics if the trace is not replayable, like [`RunObservation::replay`].
    pub fn replay_overlapped(&self, model: AlphaBetaModel) -> ReplayReport {
        match replay::replay_overlapped(&self.traces, model) {
            Ok(rep) => rep,
            Err(e) => panic!("trace is not replayable: {e}"),
        }
    }

    /// Critical path of the replayed run under `model`.
    pub fn critical_path(&self, model: AlphaBetaModel) -> CriticalPath {
        CriticalPath::extract(&self.replay(model))
    }

    /// Latency/profile histograms (round-step span, per-message transit,
    /// message sizes) from send/recv matching.
    pub fn histograms(&self) -> ProfileHistograms {
        ProfileHistograms::from_traces(&self.traces)
    }

    /// Chrome trace with the profile counter tracks included.
    pub fn chrome_trace_with_profile(&self) -> json::Value {
        chrome_trace_with_profile(&self.traces)
    }

    /// A metrics registry pre-populated from this run (cost counters,
    /// message-size histogram, per-round word volumes, per-phase words).
    pub fn metrics(&self) -> MetricsRegistry {
        let metrics = MetricsRegistry::new();
        metrics.record_run(&self.report, &self.traces);
        for (name, stats) in phase_stats(&self.spans()) {
            metrics.counter_add(&format!("phase.{name}.words_sent"), stats.total_cost.words_sent);
            metrics.counter_add(&format!("phase.{name}.words_recv"), stats.total_cost.words_recv);
            metrics.counter_add(&format!("phase.{name}.spans"), stats.count);
            metrics.gauge_set(&format!("phase.{name}.max_bandwidth"), stats.max_bandwidth as f64);
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    #[test]
    fn observation_bundle_end_to_end() {
        let (_, report, traces) = Universe::new(3).run_traced(|comm| {
            comm.with_phase("shift", || {
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.annotate_round(0);
                comm.send(next, 0, vec![0.0; 3]);
                comm.recv(prev, 0).unwrap();
                comm.clear_round();
            });
        });
        let obs = RunObservation::new(report, traces);
        let m = obs.comm_matrix();
        assert_eq!(m.total_words(), obs.report.total_words_sent());
        assert_eq!(obs.spans().len(), 3);
        assert_eq!(obs.occupancy().num_rounds(), 1);
        let metrics = obs.metrics();
        assert_eq!(metrics.counter("phase.shift.words_sent"), 9);
        // Per-phase words partition the run's totals exactly.
        assert_eq!(metrics.counter("phase.shift.words_sent"), obs.report.total_words_sent());
        let doc = obs.chrome_trace();
        assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() >= 3);
    }
}
