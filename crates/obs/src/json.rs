//! A small self-contained JSON value type with a serializer and parser.
//!
//! The build environment is offline, so instead of `serde_json` the exporters
//! in this crate emit JSON through this module. The parser exists so tests
//! can round-trip exported traces and validate structure (e.g. "the Chrome
//! trace is valid JSON and per-rank timestamps are monotone").
//!
//! Scope: the JSON data model (null, bool, number, string, array, object)
//! with `f64` numbers, object key order preserved via insertion-ordered
//! `Vec<(String, Value)>`. Good enough for trace/metrics files; not a
//! general-purpose JSON library.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved when serializing.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object value; panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        let key = key.into();
        match self {
            Value::Object(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key, value));
                }
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Value::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64 if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional lossy encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

/// A JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError { message: message.to_string(), offset }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", byte as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(&format!("unexpected character '{}'", *c as char), *pos)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{word}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf8", start))?;
    text.parse::<f64>().map(Value::Number).map_err(|_| err("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("invalid utf8 in string", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let v = Value::object()
            .with("name", "sttsv")
            .with("q", 3u64)
            .with("ok", true)
            .with("ratio", 1.5f64)
            .with("ranks", Value::Array(vec![0u64.into(), 1u64.into(), 2u64.into()]))
            .with("nested", Value::object().with("empty", Value::Array(vec![])));
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Value::from(42u64).to_string_compact(), "42");
        assert_eq!(Value::from(-7i64).to_string_compact(), "-7");
        assert_eq!(Value::from(2.5f64).to_string_compact(), "2.5");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::from("a\"b\\c\nd\tµ");
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""µs""#).unwrap(), Value::from("µs"));
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Value::object().with("k", 1u64);
        v.set("k", 2u64);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2.5], "s": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(Value::from(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::from(f64::INFINITY).to_string_compact(), "null");
    }
}
