//! One shared validator for every JSON artifact the workspace emits.
//!
//! The CLI binaries write five artifact families — metrics documents,
//! Chrome traces, perf-regression diffs, bench snapshots, and the flight /
//! post-mortem dumps added by the flight recorder. Each consumer used to
//! assume its own shape; this module centralizes the contracts so a CI
//! job (and the `schema` acceptance test) can walk *any* emitted file
//! through [`validate`] and learn what it is — or exactly which field is
//! malformed.

use crate::json::Value;

/// The artifact families the workspace emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A metrics document: either a bare registry
    /// (`{counters, gauges, histograms}`) or the CLI's per-label bundle
    /// (`{label: {metrics, comm_matrix, occupancy}}`).
    Metrics,
    /// A Chrome trace-event document (`{"traceEvents": [...]}`).
    ChromeTrace,
    /// A perf-regression diff (`{threshold, regressed, rows}`).
    RegressDiff,
    /// A bench snapshot (`{benchmark?, results: [{kernel, n, ns_per_iter}]}`).
    Bench,
    /// A flight-recorder window dump (`symtensor-flight-v1`).
    Flight,
    /// A post-mortem crash dump (`symtensor-postmortem-v1`).
    Postmortem,
    /// A scraped live-metrics series (`symtensor-telemetry-v1`).
    Telemetry,
    /// A concurrency-checker run (`symtensor-check-v1`): model-check
    /// outcomes, the race-demo verdict, the mutation sweep, lint findings.
    Check,
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ArtifactKind::Metrics => "metrics",
            ArtifactKind::ChromeTrace => "chrome-trace",
            ArtifactKind::RegressDiff => "regress-diff",
            ArtifactKind::Bench => "bench-snapshot",
            ArtifactKind::Flight => "flight",
            ArtifactKind::Postmortem => "postmortem",
            ArtifactKind::Telemetry => "telemetry",
            ArtifactKind::Check => "check",
        };
        write!(f, "{name}")
    }
}

fn require<'a>(doc: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    doc.get(key).ok_or_else(|| format!("{what}: missing `{key}`"))
}

fn require_array<'a>(doc: &'a Value, key: &str, what: &str) -> Result<&'a [Value], String> {
    require(doc, key, what)?.as_array().ok_or_else(|| format!("{what}: `{key}` is not an array"))
}

fn require_u64(doc: &Value, key: &str, what: &str) -> Result<u64, String> {
    require(doc, key, what)?.as_u64().ok_or_else(|| format!("{what}: `{key}` is not a number"))
}

fn require_str<'a>(doc: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    require(doc, key, what)?.as_str().ok_or_else(|| format!("{what}: `{key}` is not a string"))
}

/// A histogram object as emitted by `Histogram::to_json`: exact stats plus
/// quantiles that are numbers — or `null` for an empty histogram, never a
/// fake 0.
fn check_histogram(h: &Value, what: &str) -> Result<(), String> {
    let count = require_u64(h, "count", what)?;
    for q in ["p50", "p90", "p99"] {
        let v = require(h, q, what)?;
        match v {
            Value::Null if count == 0 => {}
            Value::Number(_) if count > 0 => {}
            Value::Null => return Err(format!("{what}: `{q}` is null but count = {count}")),
            Value::Number(_) => return Err(format!("{what}: `{q}` is a number but count = 0")),
            _ => return Err(format!("{what}: `{q}` is neither number nor null")),
        }
    }
    for b in require_array(h, "buckets", what)? {
        require_u64(b, "le", what)?;
        require_u64(b, "count", what)?;
    }
    Ok(())
}

fn check_chrome(doc: &Value, what: &str) -> Result<(), String> {
    let events = require_array(doc, "traceEvents", what)?;
    for (i, e) in events.iter().enumerate() {
        let ctx = format!("{what}: traceEvents[{i}]");
        let ph = require_str(e, "ph", &ctx)?;
        require(e, "pid", &ctx)?;
        require(e, "tid", &ctx)?;
        if ph != "M" {
            let ts = require(e, "ts", &ctx)?;
            if ts.as_f64().is_none() {
                return Err(format!("{ctx}: `ts` is not a number"));
            }
        }
    }
    Ok(())
}

fn check_flight_ranks(doc: &Value, what: &str) -> Result<(), String> {
    for (i, r) in require_array(doc, "ranks", what)?.iter().enumerate() {
        let ctx = format!("{what}: ranks[{i}]");
        require_u64(r, "rank", &ctx)?;
        require_u64(r, "words_sent", &ctx)?;
        require_u64(r, "words_recv", &ctx)?;
        let overhead = require(r, "overhead", &ctx)?;
        for key in ["capacity", "recorded", "dropped", "saturated_deltas", "overhead_ns"] {
            require_u64(overhead, key, &ctx)?;
        }
        let mut last = 0u64;
        for (j, e) in require_array(r, "events", &ctx)?.iter().enumerate() {
            let ectx = format!("{ctx}: events[{j}]");
            let t = require_u64(e, "t_ns", &ectx)?;
            if t < last {
                return Err(format!("{ectx}: timestamps went backwards ({last} -> {t})"));
            }
            last = t;
            let kind = require_str(e, "kind", &ectx)?;
            if !["send", "recv", "phase_enter", "phase_exit", "fault", "alert"].contains(&kind) {
                return Err(format!("{ectx}: unknown kind `{kind}`"));
            }
            // The saturation flag is optional but, when present, must be a
            // boolean — a numeric 1 would be ambiguous with a word count.
            if let Some(sat) = e.get("saturated") {
                if !matches!(sat, Value::Bool(_)) {
                    return Err(format!("{ectx}: `saturated` is not a boolean"));
                }
            }
        }
    }
    Ok(())
}

fn check_metrics_registry(doc: &Value, what: &str) -> Result<(), String> {
    for key in ["counters", "gauges", "histograms"] {
        if !matches!(require(doc, key, what)?, Value::Object(_)) {
            return Err(format!("{what}: `{key}` is not an object"));
        }
    }
    if let Some(Value::Object(hists)) = doc.get("histograms") {
        for (name, h) in hists {
            check_histogram(h, &format!("{what}: histogram `{name}`"))?;
        }
    }
    Ok(())
}

fn check_alerts(doc: &Value, what: &str) -> Result<(), String> {
    for (i, a) in require_array(doc, "alerts", what)?.iter().enumerate() {
        let ctx = format!("{what}: alerts[{i}]");
        require_u64(a, "id", &ctx)?;
        require_u64(a, "t_ns", &ctx)?;
        require_str(a, "slo", &ctx)?;
        require_u64(a, "budget_ns", &ctx)?;
        for key in ["objective", "short_burn", "long_burn"] {
            if require(a, key, &ctx)?.as_f64().is_none() {
                return Err(format!("{ctx}: `{key}` is not a number"));
            }
        }
    }
    Ok(())
}

fn check_telemetry(doc: &Value, what: &str) -> Result<(), String> {
    require_u64(doc, "interval_ns", what)?;
    let mut last = 0u64;
    for (i, s) in require_array(doc, "samples", what)?.iter().enumerate() {
        let ctx = format!("{what}: samples[{i}]");
        let t = require_u64(s, "t_ns", &ctx)?;
        if t < last {
            return Err(format!("{ctx}: sample times went backwards ({last} -> {t})"));
        }
        last = t;
        let derived = require(s, "derived", &ctx)?;
        for key in [
            "total_words_sent",
            "hidden_comm_ns",
            "exposed_comm_ns",
            "queue_depth",
            "batch_occupancy_pct",
            "retries",
            "degraded",
        ] {
            require_u64(derived, key, &ctx)?;
        }
        for (r, cell) in require_array(s, "ranks", &ctx)?.iter().enumerate() {
            let rctx = format!("{ctx}: ranks[{r}]");
            require_u64(cell, "rank", &rctx)?;
            for (p, phase) in require_array(cell, "phases", &rctx)?.iter().enumerate() {
                let pctx = format!("{rctx}: phases[{p}]");
                require_str(phase, "phase", &pctx)?;
                for key in ["words_sent", "words_recv", "msgs_sent", "msgs_recv"] {
                    require_u64(phase, key, &pctx)?;
                }
            }
        }
        check_alerts(s, &ctx)?;
    }
    check_alerts(doc, what)
}

fn require_bool(doc: &Value, key: &str, what: &str) -> Result<bool, String> {
    match require(doc, key, what)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{what}: `{key}` is not a boolean")),
    }
}

fn check_check(doc: &Value, what: &str) -> Result<(), String> {
    for (i, m) in require_array(doc, "models", what)?.iter().enumerate() {
        let ctx = format!("{what}: models[{i}]");
        require_str(m, "name", &ctx)?;
        require_u64(m, "interleavings", &ctx)?;
        require_u64(m, "pruned", &ctx)?;
        require_u64(m, "wall_ms", &ctx)?;
        require_bool(m, "capped", &ctx)?;
        let violations = require_u64(m, "violations", &ctx)?;
        match require(m, "violation", &ctx)? {
            Value::Null if violations == 0 => {}
            Value::String(_) if violations > 0 => {}
            _ => {
                return Err(format!(
                    "{ctx}: `violation` disagrees with `violations` = {violations}"
                ))
            }
        }
    }
    if let Some(demo) = doc.get("race_demo") {
        let ctx = format!("{what}: race_demo");
        require_str(demo, "name", &ctx)?;
        require_bool(demo, "detected", &ctx)?;
        require_u64(demo, "interleavings", &ctx)?;
    }
    if let Some(m) = doc.get("mutation") {
        let ctx = format!("{what}: mutation");
        let total = require_u64(m, "total", &ctx)?;
        let killed = require_u64(m, "killed", &ctx)?;
        if killed > total {
            return Err(format!("{ctx}: killed = {killed} exceeds total = {total}"));
        }
        if require(m, "kill_rate", &ctx)?.as_f64().is_none_or(|r| !(0.0..=1.0).contains(&r)) {
            return Err(format!("{ctx}: `kill_rate` is not a number in [0, 1]"));
        }
        let runs = require_array(m, "runs", &ctx)?;
        if runs.len() as u64 != total {
            return Err(format!("{ctx}: `total` = {total} but runs has {} entries", runs.len()));
        }
        for (i, r) in runs.iter().enumerate() {
            let rctx = format!("{ctx}: runs[{i}]");
            require_str(r, "model", &rctx)?;
            require_str(r, "slot", &rctx)?;
            require_str(r, "from", &rctx)?;
            require_bool(r, "killed", &rctx)?;
            require_u64(r, "interleavings", &rctx)?;
        }
    }
    let lint = require(doc, "lint", what)?;
    let ctx = format!("{what}: lint");
    let findings = require_u64(lint, "findings", &ctx)?;
    let items = require_array(lint, "items", &ctx)?;
    if items.len() as u64 != findings {
        return Err(format!(
            "{ctx}: `findings` = {findings} but items has {} entries",
            items.len()
        ));
    }
    for (i, f) in items.iter().enumerate() {
        let fctx = format!("{ctx}: items[{i}]");
        require_str(f, "file", &fctx)?;
        require_u64(f, "line", &fctx)?;
        require_str(f, "rule", &fctx)?;
    }
    Ok(())
}

/// Validates `doc` against the workspace's artifact contracts, returning
/// which kind it is — or a message naming the first malformed field.
pub fn validate(doc: &Value) -> Result<ArtifactKind, String> {
    let Value::Object(fields) = doc else {
        return Err("artifact is not a JSON object".to_string());
    };
    match doc.get("version").and_then(Value::as_str) {
        Some("symtensor-flight-v1") => {
            check_flight_ranks(doc, "flight")?;
            return Ok(ArtifactKind::Flight);
        }
        Some("symtensor-postmortem-v1") => {
            let what = "postmortem";
            require_u64(doc, "failing_rank", what)?;
            require_str(doc, "message", what)?;
            let report = require(doc, "report", what)?;
            for (i, r) in require_array(report, "per_rank", what)?.iter().enumerate() {
                let ctx = format!("{what}: report.per_rank[{i}]");
                for key in ["rank", "words_sent", "words_recv", "msgs_sent", "msgs_recv"] {
                    require_u64(r, key, &ctx)?;
                }
            }
            check_flight_ranks(doc, what)?;
            check_chrome(require(doc, "chrome", what)?, "postmortem: embedded chrome")?;
            return Ok(ArtifactKind::Postmortem);
        }
        Some("symtensor-telemetry-v1") => {
            check_telemetry(doc, "telemetry")?;
            return Ok(ArtifactKind::Telemetry);
        }
        Some("symtensor-check-v1") => {
            check_check(doc, "check")?;
            return Ok(ArtifactKind::Check);
        }
        Some(other) => return Err(format!("unknown artifact version `{other}`")),
        None => {}
    }
    if doc.get("traceEvents").is_some() {
        check_chrome(doc, "chrome-trace")?;
        return Ok(ArtifactKind::ChromeTrace);
    }
    if doc.get("rows").is_some() && doc.get("threshold").is_some() {
        let what = "regress-diff";
        if require(doc, "threshold", what)?.as_f64().is_none() {
            return Err(format!("{what}: `threshold` is not a number"));
        }
        require(doc, "regressed", what)?;
        for (i, row) in require_array(doc, "rows", what)?.iter().enumerate() {
            let ctx = format!("{what}: rows[{i}]");
            require_str(row, "kernel", &ctx)?;
            require_str(row, "verdict", &ctx)?;
        }
        return Ok(ArtifactKind::RegressDiff);
    }
    if doc.get("results").is_some() {
        let what = "bench-snapshot";
        for (i, r) in require_array(doc, "results", what)?.iter().enumerate() {
            let ctx = format!("{what}: results[{i}]");
            require_str(r, "kernel", &ctx)?;
            require_u64(r, "n", &ctx)?;
            if require(r, "ns_per_iter", &ctx)?.as_f64().is_none() {
                return Err(format!("{ctx}: `ns_per_iter` is not a number"));
            }
        }
        return Ok(ArtifactKind::Bench);
    }
    if doc.get("counters").is_some() {
        check_metrics_registry(doc, "metrics")?;
        return Ok(ArtifactKind::Metrics);
    }
    // The CLI's per-label metrics bundle: every top-level value is an
    // object wrapping a registry under `metrics`.
    if !fields.is_empty()
        && fields.iter().all(|(_, v)| matches!(v, Value::Object(_)) && v.get("metrics").is_some())
    {
        for (label, entry) in fields {
            check_metrics_registry(entry.get("metrics").unwrap(), &format!("metrics[{label}]"))?;
        }
        return Ok(ArtifactKind::Metrics);
    }
    Err("unrecognized artifact shape".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn registry_and_chrome_and_flight_docs_validate() {
        use symtensor_mpsim::Universe;
        let (_, report, traces, flight) = Universe::new(2)
            .try_run_traced(|comm| {
                comm.with_phase("swap", || comm.exchange(1 - comm.rank(), 0, vec![0.0; 2]).unwrap())
            })
            .unwrap();
        let metrics = crate::MetricsRegistry::new();
        metrics.record_run(&report, &traces);
        assert_eq!(validate(&metrics.to_json()), Ok(ArtifactKind::Metrics));
        assert_eq!(validate(&crate::chrome_trace(&traces)), Ok(ArtifactKind::ChromeTrace));
        assert_eq!(validate(&crate::flight::flight_json(&flight)), Ok(ArtifactKind::Flight));
    }

    #[test]
    fn malformed_documents_name_the_offending_field() {
        let doc = json::parse(r#"{"traceEvents": [{"ph": "X", "pid": 1, "tid": 0}]}"#).unwrap();
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("ts"), "got: {err}");

        let doc = json::parse(r#"{"version": "symtensor-flight-v9"}"#).unwrap();
        assert!(validate(&doc).unwrap_err().contains("version"));

        // `saturated` must be a real boolean, and `fault` is a known kind.
        let doc = json::parse(
            r#"{"version": "symtensor-flight-v1", "ranks": [
                {"rank": 0, "words_sent": 0, "words_recv": 0,
                 "overhead": {"capacity": 1, "recorded": 1, "dropped": 0,
                              "saturated_deltas": 0, "overhead_ns": 0},
                 "events": [{"t_ns": 1, "kind": "fault", "saturated": 1}]}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("saturated"));
        let doc = json::parse(
            r#"{"version": "symtensor-flight-v1", "ranks": [
                {"rank": 0, "words_sent": 0, "words_recv": 0,
                 "overhead": {"capacity": 1, "recorded": 1, "dropped": 0,
                              "saturated_deltas": 0, "overhead_ns": 0},
                 "events": [{"t_ns": 1, "kind": "fault", "words": 6, "saturated": true}]}]}"#,
        )
        .unwrap();
        assert_eq!(validate(&doc), Ok(ArtifactKind::Flight));

        let doc =
            json::parse(r#"{"rows": [{"kernel": "k"}], "threshold": 0.25, "regressed": false}"#)
                .unwrap();
        assert!(validate(&doc).unwrap_err().contains("verdict"));

        assert!(validate(&Value::Array(vec![])).is_err());
    }

    #[test]
    fn empty_histogram_must_report_null_quantiles_not_zero() {
        let doc = json::parse(
            r#"{"counters": {}, "gauges": {}, "histograms":
                {"h": {"count": 0, "sum": 0, "min": 0, "max": 0, "mean": 0.0,
                       "p50": 0, "p90": 0, "p99": 0, "buckets": []}}}"#,
        )
        .unwrap();
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("p50"), "a 0-quantile on an empty histogram must be rejected: {err}");
    }

    #[test]
    fn bench_snapshot_shape_validates() {
        let doc = json::parse(
            r#"{"benchmark": "kernels",
                "results": [{"kernel": "flat", "n": 128, "q": null, "ns_per_iter": 1234.5}]}"#,
        )
        .unwrap();
        assert_eq!(validate(&doc), Ok(ArtifactKind::Bench));
    }

    #[test]
    fn check_artifact_validates_and_bad_shapes_are_named() {
        let doc = json::parse(
            r#"{"version": "symtensor-check-v1",
                "models": [{"name": "seqlock", "interleavings": 497, "pruned": 210,
                            "capped": false, "wall_ms": 12, "violations": 0, "violation": null}],
                "race_demo": {"name": "racy-counter-demo", "detected": true, "interleavings": 2},
                "mutation": {"total": 1, "killed": 1, "kill_rate": 1.0,
                             "runs": [{"model": "seqlock", "slot": "writer-exit",
                                       "from": "Release", "killed": true, "interleavings": 3}]},
                "lint": {"findings": 1,
                         "items": [{"file": "crates/pool/src/lib.rs", "line": 9,
                                    "rule": "no-panic-path"}]}}"#,
        )
        .unwrap();
        assert_eq!(validate(&doc), Ok(ArtifactKind::Check));
        assert_eq!(ArtifactKind::Check.to_string(), "check");

        // A violation string with `violations` = 0 is inconsistent.
        let bad = json::parse(
            r#"{"version": "symtensor-check-v1",
                "models": [{"name": "seqlock", "interleavings": 1, "pruned": 0,
                            "capped": false, "wall_ms": 0, "violations": 0,
                            "violation": "torn read"}],
                "lint": {"findings": 0, "items": []}}"#,
        )
        .unwrap();
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("violation"), "{err}");

        // The lint count must match the item list.
        let bad = json::parse(
            r#"{"version": "symtensor-check-v1", "models": [],
                "lint": {"findings": 2, "items": []}}"#,
        )
        .unwrap();
        let err = validate(&bad).unwrap_err();
        assert!(err.contains("findings"), "{err}");
    }
}
