//! Virtual-clock replay of a traced run under a configurable α-β-γ cost
//! model.
//!
//! The simulator's traces record *what happened in which order* (per-rank
//! program order plus the send→recv pairing); wall-clock timestamps on a
//! single oversubscribed host are noisy and machine-dependent. Replay
//! discards the timestamps' absolute values and re-executes the run's
//! happens-before DAG on a virtual clock where costs come from the model
//! the paper analyzes:
//!
//! * a send occupies its sender for `α + β·words`,
//! * a receive completes at `max(receiver clock, matched send's end)` —
//!   the *postal* model: messages are in flight the moment they are sent,
//!   and a receiver only pays when it would outrun a message that has not
//!   arrived yet (`recv-wait`),
//! * compute is charged `γ ×` the **measured** duration of each
//!   designated compute-phase span (default `local-compute`) — the only
//!   place wall time enters, scaled so `γ = 0` gives pure communication
//!   schedules and `γ = 1` replays measured compute under ideal
//!   communication.
//!
//! The replayed op list (every op with modeled start/end and its *binding
//! predecessor* — the dependency that actually determined its start time)
//! is what [`crate::critical`] walks to extract the critical path.

use crate::json::Value;
use crate::span::{spans, PhaseSpan};
use std::collections::{BTreeMap, HashMap, VecDeque};
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::CommEvent;

/// The α-β-γ machine model: per-message latency, per-word inverse
/// bandwidth (both in virtual nanoseconds), and a dimensionless multiplier
/// on measured compute-span durations. The optional `link_ns` term is a
/// one-way network flight time: the sender is released after `α + β·w`,
/// but the message only becomes receivable `link_ns` later. With
/// `link_ns = 0` (the default and every pre-existing construction) the
/// model is unchanged — a message is available the instant the sender's
/// clock finishes the send, which makes perfectly regular round-paired
/// schedules lockstep (zero modeled recv-wait). A nonzero `link_ns` models
/// the wire itself, so even a lockstep schedule pays `link_ns` of recv-wait
/// per message **unless the receiver has other work to do in the meantime**
/// — which is exactly what the overlapped exchange pipeline provides.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlphaBetaModel {
    /// Cost charged to the sender per message (latency term), in virtual ns.
    pub alpha: f64,
    /// Cost charged to the sender per word (bandwidth term), in virtual ns.
    pub beta: f64,
    /// Multiplier on each measured compute-phase span duration.
    pub gamma: f64,
    /// One-way network flight time per message, in virtual ns: a message
    /// sent at sender-clock `t` with `w` words becomes receivable at
    /// `t + α + β·w + link_ns`. Occupies neither endpoint — pure pipeline
    /// depth, hideable by overlapping independent work.
    pub link_ns: f64,
}

impl Default for AlphaBetaModel {
    /// `bandwidth_only()` — the unit the paper's bounds are stated in.
    fn default() -> Self {
        AlphaBetaModel::bandwidth_only()
    }
}

impl AlphaBetaModel {
    /// Pure bandwidth accounting: `α = 0, β = 1, γ = 0` — the virtual
    /// clock then reads directly in *words*, the unit of the paper's
    /// bandwidth cost and of `symtensor_parallel::bounds::
    /// scheduled_words_per_vector`.
    pub fn bandwidth_only() -> Self {
        AlphaBetaModel { alpha: 0.0, beta: 1.0, gamma: 0.0, link_ns: 0.0 }
    }

    /// Pure compute accounting: `α = β = 0, γ = 1` — makespan equals the
    /// maximum per-rank measured compute total (communication is free).
    pub fn compute_only() -> Self {
        AlphaBetaModel { alpha: 0.0, beta: 0.0, gamma: 1.0, link_ns: 0.0 }
    }

    /// The same model with a one-way network flight time of `link_ns`
    /// virtual nanoseconds per message.
    pub fn with_link(self, link_ns: f64) -> Self {
        AlphaBetaModel { link_ns, ..self }
    }
}

/// The phase whose measured span durations are charged as compute when no
/// override is given — Algorithm 5's local ternary-multiplication phase.
pub const DEFAULT_COMPUTE_PHASE: &str = "local-compute";

/// The compute phases of the **overlapped** exchange pipeline: the barrier
/// path's tail compute plus the `compute:overlap` spans the pipelined
/// driver runs *inside* its exchange phases (owned-only blocks during the
/// gather, dependency groups on each arrival). Replaying with both charges
/// that interleaved compute where it actually ran, so the virtual clock
/// sees the overlap instead of modeling the gather as pure waiting.
pub const OVERLAP_COMPUTE_PHASES: [&str; 2] = [DEFAULT_COMPUTE_PHASE, "compute:overlap"];

/// Identifies one replayed op: `ranks[rank].ops[index]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpId {
    /// The owning rank.
    pub rank: usize,
    /// Index into that rank's op list.
    pub index: usize,
}

/// What a replayed op is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OpKind {
    /// A designated compute-phase span (measured `dur_ns`, charged
    /// `γ × dur_ns`).
    Compute {
        /// Measured span duration in wall ns.
        dur_ns: u64,
    },
    /// A message send (charged `α + β·words` on the sender).
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Payload words.
        words: u64,
    },
    /// A message receive (completes at the matched send's modeled end).
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Payload words.
        words: u64,
    },
}

/// One op with its modeled schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayOp {
    /// What the op is.
    pub kind: OpKind,
    /// Phase annotation carried over from the trace.
    pub phase: Option<&'static str>,
    /// Round annotation carried over from the trace.
    pub round: Option<u64>,
    /// Modeled start time (virtual ns).
    pub start: f64,
    /// Modeled end time (virtual ns).
    pub end: f64,
    /// The dependency that determined `start`/`end`: the matched send for
    /// a receive that had to wait, otherwise the previous op on the same
    /// rank (`None` for a rank's first op).
    pub pred: Option<OpId>,
    /// For a receive: the send it was matched to (recorded whether or not
    /// the receive had to wait — `pred` only names the sender when it was
    /// binding). `None` for sends and compute ops.
    pub matched_send: Option<OpId>,
}

/// One rank's replay: its op schedule and the per-rank decomposition of
/// modeled time.
#[derive(Clone, Debug, Default)]
pub struct RankReplay {
    /// Ops in program order with modeled times.
    pub ops: Vec<ReplayOp>,
    /// Total modeled compute (`γ × Σ` measured compute spans).
    pub compute_ns: f64,
    /// Total modeled send occupancy (`Σ α + β·words`).
    pub send_busy_ns: f64,
    /// Total modeled blocking on not-yet-arrived messages.
    pub recv_wait_ns: f64,
    /// This rank's modeled finish time.
    pub finish_ns: f64,
}

impl RankReplay {
    /// Time this rank sat finished while the slowest rank still ran:
    /// `makespan − finish`.
    pub fn idle_ns(&self, makespan: f64) -> f64 {
        (makespan - self.finish_ns).max(0.0)
    }
}

/// Replay failures (only possible on incomplete traces).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A rank's receive has no matching send anywhere in the traces —
    /// the virtual machine would deadlock.
    Starved {
        /// The blocked rank.
        rank: usize,
        /// Index of the blocked op.
        op_index: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Starved { rank, op_index } => write!(
                f,
                "replay starved: rank {rank} op {op_index} waits for a send absent from the trace"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The full replay of a run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// The model that produced the virtual times.
    pub model: AlphaBetaModel,
    /// Per-rank schedules, indexed by rank.
    pub ranks: Vec<RankReplay>,
    /// Modeled makespan: `max_p finish_p`.
    pub makespan_ns: f64,
}

/// Per-phase modeled vs measured totals — the model-drift table.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseDrift {
    /// Phase name.
    pub phase: String,
    /// Modeled time attributed to the phase, summed across ranks.
    pub modeled_ns: f64,
    /// Measured wall time of the phase's spans, summed across ranks.
    pub measured_ns: f64,
}

impl PhaseDrift {
    /// `modeled / measured` (how fast the model thinks this phase should
    /// be relative to what the host delivered); ∞-free: 0 when unmeasured.
    pub fn ratio(&self) -> f64 {
        if self.measured_ns <= 0.0 {
            0.0
        } else {
            self.modeled_ns / self.measured_ns
        }
    }
}

/// The overlap decomposition of one phase's receives, summed across ranks:
/// of each matched message's flight window (modeled send start → arrival),
/// how much elapsed while the receiver was doing something else
/// (**hidden**) versus how much the receiver spent blocked (**exposed**).
///
/// `hidden + exposed` is not the flight time — `hidden` is capped at the
/// flight window while `exposed` is the receiver's actual wait — but the
/// A/B contrast is exactly the paper's overlap question: a pipelined
/// exchange moves time from `exposed` into `hidden` without changing a
/// single message.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseOverlap {
    /// Phase name the receives were annotated with.
    pub phase: String,
    /// Flight time that passed before the receiver claimed each message —
    /// communication the phase *hid* behind other work, in virtual ns.
    pub hidden_ns: f64,
    /// Receiver blocking on not-yet-arrived messages — communication the
    /// phase *exposed*, in virtual ns (this phase's slice of
    /// [`RankReplay::recv_wait_ns`]).
    pub exposed_ns: f64,
    /// Modeled compute charged to ops annotated with this phase (nonzero
    /// only for compute phases like `compute:overlap`), in virtual ns.
    pub compute_ns: f64,
}

impl PhaseOverlap {
    /// Fraction of the accounted flight time this phase hid:
    /// `hidden / (hidden + exposed)`; 0 when nothing was in flight.
    pub fn hidden_fraction(&self) -> f64 {
        let total = self.hidden_ns + self.exposed_ns;
        if total <= 0.0 {
            0.0
        } else {
            self.hidden_ns / total
        }
    }
}

impl ReplayReport {
    /// Maximum modeled send occupancy over ranks — under
    /// [`AlphaBetaModel::bandwidth_only`] this is exactly `β ×` the
    /// per-rank words-sent maximum, i.e. the paper's bandwidth cost in
    /// virtual ns.
    pub fn max_send_busy_ns(&self) -> f64 {
        self.ranks.iter().map(|r| r.send_busy_ns).fold(0.0, f64::max)
    }

    /// Maximum modeled compute over ranks.
    pub fn max_compute_ns(&self) -> f64 {
        self.ranks.iter().map(|r| r.compute_ns).fold(0.0, f64::max)
    }

    /// Sum of every op's modeled weight (`end − start` contributions that
    /// advance a rank clock) — a trivial upper bound on any path length.
    pub fn total_weight_ns(&self) -> f64 {
        self.ranks.iter().map(|r| r.compute_ns + r.send_busy_ns + r.recv_wait_ns).sum()
    }

    /// Per-phase modeled totals (clock advance attributed to the phase
    /// annotation of each op, summed across ranks), in phase-name order.
    pub fn phase_modeled_ns(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for rank in &self.ranks {
            for op in &rank.ops {
                let advance = op.end - op.start;
                if advance > 0.0 {
                    let name = match op.kind {
                        OpKind::Compute { .. } => op.phase.unwrap_or(DEFAULT_COMPUTE_PHASE),
                        _ => op.phase.unwrap_or("(unphased)"),
                    };
                    *out.entry(name.to_string()).or_insert(0.0) += advance;
                }
            }
        }
        out
    }

    /// The model-drift table: per phase, modeled total vs the measured
    /// wall time of the same phase's **top-level** spans (which partition
    /// the run). Phases appear if either side is nonzero.
    pub fn drift(&self, spans: &[PhaseSpan]) -> Vec<PhaseDrift> {
        let modeled = self.phase_modeled_ns();
        let mut measured: BTreeMap<String, f64> = BTreeMap::new();
        for span in spans.iter().filter(|s| s.depth == 0) {
            *measured.entry(span.name.to_string()).or_insert(0.0) += span.duration_ns() as f64;
        }
        let mut names: Vec<String> = modeled.keys().chain(measured.keys()).cloned().collect();
        names.sort();
        names.dedup();
        names
            .into_iter()
            .map(|phase| PhaseDrift {
                modeled_ns: modeled.get(&phase).copied().unwrap_or(0.0),
                measured_ns: measured.get(&phase).copied().unwrap_or(0.0),
                phase,
            })
            .collect()
    }

    /// This rank-indexed vector holds each rank's modeled recv-wait summed
    /// over the receives annotated with `phase` — the per-rank "how long
    /// did gather-x block" number the overlap A/B compares.
    pub fn phase_recv_wait_per_rank(&self, phase: &str) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|rank| {
                rank.ops
                    .iter()
                    .filter(|op| matches!(op.kind, OpKind::Recv { .. }) && op.phase == Some(phase))
                    .map(|op| {
                        let arrival = op
                            .matched_send
                            .map(|s| self.ranks[s.rank].ops[s.index].end + self.model.link_ns)
                            .unwrap_or(op.start);
                        (arrival - op.start).max(0.0)
                    })
                    .sum()
            })
            .collect()
    }

    /// The hidden/exposed decomposition of every phase that received
    /// messages or ran compute, in phase-name order. For each receive, the
    /// matched send's modeled window `[send.start, send.end + link_ns]` is
    /// the message's flight; the part that elapsed before the receiver's
    /// claim is **hidden**, the receiver's block (if it outran the arrival)
    /// is **exposed**.
    pub fn overlap_decomposition(&self) -> Vec<PhaseOverlap> {
        fn slot<'a>(
            acc: &'a mut BTreeMap<String, PhaseOverlap>,
            name: &str,
        ) -> &'a mut PhaseOverlap {
            acc.entry(name.to_string()).or_insert_with(|| PhaseOverlap {
                phase: name.to_string(),
                hidden_ns: 0.0,
                exposed_ns: 0.0,
                compute_ns: 0.0,
            })
        }
        let mut acc: BTreeMap<String, PhaseOverlap> = BTreeMap::new();
        for rank in &self.ranks {
            for op in &rank.ops {
                match op.kind {
                    OpKind::Recv { .. } => {
                        let Some(s) = op.matched_send else { continue };
                        let send = &self.ranks[s.rank].ops[s.index];
                        let arrive = send.end + self.model.link_ns;
                        let po = slot(&mut acc, op.phase.unwrap_or("(unphased)"));
                        po.hidden_ns += (op.start.min(arrive) - send.start).max(0.0);
                        po.exposed_ns += (arrive - op.start).max(0.0);
                    }
                    OpKind::Compute { .. } => {
                        let advance = op.end - op.start;
                        if advance > 0.0 {
                            slot(&mut acc, op.phase.unwrap_or(DEFAULT_COMPUTE_PHASE)).compute_ns +=
                                advance;
                        }
                    }
                    OpKind::Send { .. } => {}
                }
            }
        }
        acc.into_values().collect()
    }

    /// JSON form of [`ReplayReport::overlap_decomposition`]: one object
    /// per phase with `hidden_ns` / `exposed_ns` / `compute_ns` and the
    /// hidden fraction — the E16 A/B table.
    pub fn overlap_json(&self) -> Value {
        Value::Array(
            self.overlap_decomposition()
                .into_iter()
                .map(|po| {
                    Value::object()
                        .with("phase", po.phase.as_str())
                        .with("hidden_ns", po.hidden_ns)
                        .with("exposed_ns", po.exposed_ns)
                        .with("compute_ns", po.compute_ns)
                        .with("hidden_fraction", po.hidden_fraction())
                })
                .collect(),
        )
    }

    /// JSON form: the model, makespan, per-rank decomposition.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with(
                "model",
                Value::object()
                    .with("alpha", self.model.alpha)
                    .with("beta", self.model.beta)
                    .with("gamma", self.model.gamma),
            )
            .with("makespan_ns", self.makespan_ns)
            .with("max_send_busy_ns", self.max_send_busy_ns())
            .with("max_compute_ns", self.max_compute_ns())
            .with(
                "ranks",
                Value::Array(
                    self.ranks
                        .iter()
                        .enumerate()
                        .map(|(rank, r)| {
                            Value::object()
                                .with("rank", rank)
                                .with("compute_ns", r.compute_ns)
                                .with("send_busy_ns", r.send_busy_ns)
                                .with("recv_wait_ns", r.recv_wait_ns)
                                .with("finish_ns", r.finish_ns)
                                .with("idle_ns", r.idle_ns(self.makespan_ns))
                        })
                        .collect(),
                ),
            )
    }
}

/// One extracted op: `(kind, phase, round)`, as recorded on the trace
/// event that produced it.
pub type ExtractedOp = (OpKind, Option<&'static str>, Option<u64>);

/// Extracts each rank's replayable op list from its trace: sends and
/// receives in program order, plus one `Compute` op per **outermost**
/// span of the designated compute phase (nested re-entries of the same
/// name are folded into the outer span).
pub fn extract_ops(traces: &[Vec<CommEvent>], compute_phase: &str) -> Vec<Vec<ExtractedOp>> {
    extract_ops_multi(traces, &[compute_phase])
}

/// [`extract_ops`] over a *set* of compute phases: a `Compute` op is
/// emitted per outermost span of any listed phase. The phases must not
/// nest within each other (the overlapped pipeline's `compute:overlap`
/// and `local-compute` never do; `compute:kernel` nests inside
/// `local-compute` and must therefore not be listed alongside it).
pub fn extract_ops_multi(
    traces: &[Vec<CommEvent>],
    compute_phases: &[&str],
) -> Vec<Vec<ExtractedOp>> {
    traces
        .iter()
        .map(|trace| {
            let mut ops = Vec::new();
            let mut depth = 0usize;
            let mut entered_at = 0u64;
            let mut entered_phase: Option<&'static str> = None;
            for event in trace {
                match event.kind {
                    CommEventKind::Send { dst, tag, words } => {
                        ops.push((OpKind::Send { dst, tag, words }, event.phase, event.round));
                    }
                    CommEventKind::Recv { src, tag, words } => {
                        ops.push((OpKind::Recv { src, tag, words }, event.phase, event.round));
                    }
                    CommEventKind::PhaseEnter { name, .. } if compute_phases.contains(&name) => {
                        if depth == 0 {
                            entered_at = event.t_ns;
                            entered_phase = Some(name);
                        }
                        depth += 1;
                    }
                    CommEventKind::PhaseExit { name, .. } if compute_phases.contains(&name) => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            ops.push((
                                OpKind::Compute { dur_ns: event.t_ns.saturating_sub(entered_at) },
                                entered_phase,
                                event.round,
                            ));
                        }
                    }
                    _ => {}
                }
            }
            ops
        })
        .collect()
}

/// Replays the traces under `model` with the default compute phase
/// ([`DEFAULT_COMPUTE_PHASE`]).
pub fn replay(
    traces: &[Vec<CommEvent>],
    model: AlphaBetaModel,
) -> Result<ReplayReport, ReplayError> {
    replay_with_compute_phase(traces, model, DEFAULT_COMPUTE_PHASE)
}

/// Replays a trace from the **overlapped** exchange pipeline: compute is
/// charged for both the barrier-tail `local-compute` spans and the
/// `compute:overlap` spans interleaved with the exchanges
/// ([`OVERLAP_COMPUTE_PHASES`]). Use [`ReplayReport::overlap_decomposition`]
/// on the result to see how much message flight time each phase hid.
pub fn replay_overlapped(
    traces: &[Vec<CommEvent>],
    model: AlphaBetaModel,
) -> Result<ReplayReport, ReplayError> {
    replay_with_compute_phases(traces, model, &OVERLAP_COMPUTE_PHASES)
}

/// Replays the traces under `model`, charging `γ ×` the measured duration
/// of every outermost `compute_phase` span as compute.
///
/// Sends are matched to receives FIFO per `(src, dst, tag)` — the exact
/// pairing the simulator performed (see [`symtensor_mpsim::matching`]).
/// The replay is deterministic and independent of host timing except
/// through the measured compute durations (which `γ = 0` removes).
pub fn replay_with_compute_phase(
    traces: &[Vec<CommEvent>],
    model: AlphaBetaModel,
    compute_phase: &str,
) -> Result<ReplayReport, ReplayError> {
    replay_with_compute_phases(traces, model, &[compute_phase])
}

/// [`replay_with_compute_phase`] over a set of non-nesting compute phases
/// (see [`extract_ops_multi`]) — the general entry point behind both the
/// barrier and overlapped replays.
pub fn replay_with_compute_phases(
    traces: &[Vec<CommEvent>],
    model: AlphaBetaModel,
    compute_phases: &[&str],
) -> Result<ReplayReport, ReplayError> {
    let raw = extract_ops_multi(traces, compute_phases);
    let p = raw.len();
    let mut ranks: Vec<RankReplay> = raw
        .iter()
        .map(|ops| RankReplay {
            ops: ops
                .iter()
                .map(|&(kind, phase, round)| ReplayOp {
                    kind,
                    phase,
                    round,
                    start: 0.0,
                    end: 0.0,
                    pred: None,
                    matched_send: None,
                })
                .collect(),
            ..RankReplay::default()
        })
        .collect();

    // In-flight messages: (src, dst, tag) -> FIFO of (modeled send end,
    // sender op id). A send enqueues the moment it is replayed; a receive
    // can only be replayed once its match is in the queue.
    let mut in_flight: HashMap<(usize, usize, u64), VecDeque<(f64, OpId)>> = HashMap::new();
    let mut cursor = vec![0usize; p];
    let mut clock = vec![0.0f64; p];
    let mut remaining: usize = ranks.iter().map(|r| r.ops.len()).sum();

    while remaining > 0 {
        let mut progressed = false;
        for rank in 0..p {
            while cursor[rank] < ranks[rank].ops.len() {
                let index = cursor[rank];
                let program_pred = (index > 0).then(|| OpId { rank, index: index - 1 });
                let op_kind = ranks[rank].ops[index].kind;
                match op_kind {
                    OpKind::Compute { dur_ns } => {
                        let weight = model.gamma * dur_ns as f64;
                        let op = &mut ranks[rank].ops[index];
                        op.start = clock[rank];
                        op.end = op.start + weight;
                        op.pred = program_pred;
                        clock[rank] = op.end;
                        ranks[rank].compute_ns += weight;
                    }
                    OpKind::Send { dst, tag, words } => {
                        let weight = model.alpha + model.beta * words as f64;
                        let start = clock[rank];
                        let end = start + weight;
                        let op = &mut ranks[rank].ops[index];
                        op.start = start;
                        op.end = end;
                        op.pred = program_pred;
                        clock[rank] = end;
                        ranks[rank].send_busy_ns += weight;
                        in_flight
                            .entry((rank, dst, tag))
                            .or_default()
                            .push_back((end + model.link_ns, OpId { rank, index }));
                    }
                    OpKind::Recv { src, tag, .. } => {
                        let Some(&(arrival, sender)) =
                            in_flight.get(&(src, rank, tag)).and_then(VecDeque::front)
                        else {
                            break; // sender not replayed yet — try other ranks
                        };
                        in_flight.get_mut(&(src, rank, tag)).unwrap().pop_front();
                        let start = clock[rank];
                        let (end, pred, wait) = if arrival > start {
                            (arrival, Some(sender), arrival - start)
                        } else {
                            (start, program_pred, 0.0)
                        };
                        let op = &mut ranks[rank].ops[index];
                        op.start = start;
                        op.end = end;
                        op.pred = pred;
                        op.matched_send = Some(sender);
                        clock[rank] = end;
                        ranks[rank].recv_wait_ns += wait;
                    }
                }
                cursor[rank] += 1;
                remaining -= 1;
                progressed = true;
            }
        }
        if !progressed {
            // Every unfinished rank is blocked on a receive whose send is
            // absent from the traces.
            let rank = (0..p).find(|&r| cursor[r] < ranks[r].ops.len()).unwrap();
            return Err(ReplayError::Starved { rank, op_index: cursor[rank] });
        }
    }

    for (rank, r) in ranks.iter_mut().enumerate() {
        r.finish_ns = clock[rank];
    }
    let makespan_ns = clock.iter().copied().fold(0.0, f64::max);
    Ok(ReplayReport { model, ranks, makespan_ns })
}

/// Convenience: replay plus the drift table in one call (spans are
/// reconstructed from the same traces).
pub fn replay_with_drift(
    traces: &[Vec<CommEvent>],
    model: AlphaBetaModel,
) -> Result<(ReplayReport, Vec<PhaseDrift>), ReplayError> {
    let report = replay(traces, model)?;
    let all_spans: Vec<PhaseSpan> = spans(traces);
    let drift = report.drift(&all_spans);
    Ok((report, drift))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    fn ring_traces(p: usize, words: usize, rounds: u64) -> Vec<Vec<CommEvent>> {
        let (_, _, traces) = Universe::new(p).run_traced(|comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            for round in 0..rounds {
                comm.annotate_round(round);
                comm.send(next, round, vec![0.0; words]);
                comm.recv(prev, round).unwrap();
            }
            comm.clear_round();
        });
        traces
    }

    #[test]
    fn bandwidth_only_ring_makespan_is_exact() {
        // Uniform lockstep ring: every rank sends `words` each round, so
        // under α=0, β=1, γ=0 every clock advances `words` per round and
        // the makespan is rounds × words, equal to every rank's send-busy.
        let (p, words, rounds) = (4usize, 7usize, 3u64);
        let traces = ring_traces(p, words, rounds);
        let report = replay(&traces, AlphaBetaModel::bandwidth_only()).unwrap();
        let expect = (rounds * words as u64) as f64;
        assert_eq!(report.makespan_ns, expect);
        for r in &report.ranks {
            assert_eq!(r.send_busy_ns, expect);
            assert_eq!(r.recv_wait_ns, 0.0, "lockstep ⇒ nothing waits");
            assert_eq!(r.finish_ns, expect);
        }
    }

    #[test]
    fn alpha_counts_messages() {
        let traces = ring_traces(3, 5, 2);
        let model = AlphaBetaModel { alpha: 100.0, beta: 0.0, gamma: 0.0, link_ns: 0.0 };
        let report = replay(&traces, model).unwrap();
        // 2 messages per rank, 100 ns each, lockstep.
        assert_eq!(report.makespan_ns, 200.0);
    }

    #[test]
    fn straggler_chain_is_modeled() {
        // Rank 0 sends to 1, 1 forwards to 2: the chain serializes, so the
        // makespan is the sum of both send costs even though each rank's
        // own busy time is one send.
        let (_, _, traces) = Universe::new(3).run_traced(|comm| match comm.rank() {
            0 => comm.send(1, 0, vec![0.0; 10]),
            1 => {
                let got = comm.recv(0, 0).unwrap();
                comm.send(2, 1, got);
            }
            _ => {
                comm.recv(1, 1).unwrap();
            }
        });
        let report = replay(&traces, AlphaBetaModel::bandwidth_only()).unwrap();
        assert_eq!(report.makespan_ns, 20.0);
        assert_eq!(report.ranks[1].recv_wait_ns, 10.0);
        assert_eq!(report.ranks[2].recv_wait_ns, 20.0);
        // The receive that waited binds to its sender, not program order.
        let recv_op =
            report.ranks[1].ops.iter().find(|o| matches!(o.kind, OpKind::Recv { .. })).unwrap();
        assert_eq!(recv_op.pred, Some(OpId { rank: 0, index: 0 }));
    }

    #[test]
    fn compute_only_makespan_is_max_rank_compute() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("local-compute", || {
                // Rank 1 computes ~3× longer.
                let spins = if comm.rank() == 0 { 20_000 } else { 60_000 };
                let mut acc = 0.0f64;
                for i in 0..spins {
                    acc += (i as f64).sqrt();
                }
                std::hint::black_box(acc);
            });
            let partner = 1 - comm.rank();
            comm.send(partner, 0, vec![1.0; 64]);
            comm.recv(partner, 0).unwrap();
        });
        let report = replay(&traces, AlphaBetaModel::compute_only()).unwrap();
        let max_compute = report.max_compute_ns();
        assert!(max_compute > 0.0);
        assert_eq!(
            report.makespan_ns, max_compute,
            "α=β=0 ⇒ makespan equals the max per-rank compute total"
        );
        for r in &report.ranks {
            assert_eq!(r.send_busy_ns, 0.0);
        }
    }

    #[test]
    fn starved_recv_is_an_error() {
        // Hand-build a trace with a recv whose send never happened.
        let recv_only = vec![CommEvent {
            t_ns: 5,
            phase: None,
            round: None,
            kind: CommEventKind::Recv { src: 0, tag: 9, words: 3 },
        }];
        let traces = vec![Vec::new(), recv_only];
        let err = replay(&traces, AlphaBetaModel::bandwidth_only()).unwrap_err();
        assert_eq!(err, ReplayError::Starved { rank: 1, op_index: 0 });
    }

    #[test]
    fn overlapped_replay_shifts_gather_wait_into_hidden() {
        use symtensor_parallel::{
            parallel_sttsv_overlapped_traced, parallel_sttsv_planned_traced, Mode, TetraPartition,
        };
        use symtensor_steiner::spherical;
        // One barrier and one overlapped run of the same problem at each q —
        // same messages, same bits — replayed under a model with a nonzero
        // network flight time (`link_ns`), so messages have transit to hide.
        // With link = 0 a perfectly regular round-paired schedule is
        // lockstep (every arrival beats its receiver; recv-wait ≡ 0) and an
        // A/B would be vacuous; the link term is what the overlap hides.
        for q in [2u64, 3] {
            let n = 30; // divisible by both row-block counts (5 and 10)
            let part = TetraPartition::new(spherical(q), n).unwrap();
            let mut tensor = symtensor_core::SymTensor3::zeros(n);
            for i in 0..n {
                for j in 0..=i {
                    for k in 0..=j {
                        tensor.set(i, j, k, ((i + 2 * j + 3 * k) % 7) as f64 - 3.0);
                    }
                }
            }
            let x: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) as f64 * 0.01).cos()).collect();
            let (b_run, b_traces) =
                parallel_sttsv_planned_traced(&tensor, &part, &x, Mode::Scheduled, 1);
            let (o_run, o_traces) =
                parallel_sttsv_overlapped_traced(&tensor, &part, &x, Mode::Scheduled, 1);
            assert_eq!(o_run.y, b_run.y, "A/B must compare identical computations");

            let model =
                AlphaBetaModel { alpha: 20_000.0, beta: 50.0, gamma: 1.0, link_ns: 100_000.0 };
            let barrier = replay(&b_traces, model).unwrap();
            let overlapped = replay_overlapped(&o_traces, model).unwrap();

            let b_wait: f64 = barrier.phase_recv_wait_per_rank("gather-x").iter().sum();
            let o_wait: f64 = overlapped.phase_recv_wait_per_rank("gather-x").iter().sum();
            assert!(b_wait > 0.0, "q={q}: barrier gather must have modeled wait to hide");
            assert!(
                o_wait < b_wait,
                "q={q}: overlap must reduce gather recv-wait: {o_wait} vs {b_wait}"
            );

            let hidden = |rep: &ReplayReport| {
                rep.overlap_decomposition()
                    .into_iter()
                    .find(|po| po.phase == "gather-x")
                    .map(|po| po.hidden_ns)
                    .unwrap_or(0.0)
            };
            assert!(
                hidden(&overlapped) > hidden(&barrier),
                "q={q}: overlap must hide more gather flight time"
            );
            // The overlapped trace charges its interleaved compute under
            // its own phase, visible in the decomposition.
            assert!(overlapped
                .overlap_decomposition()
                .iter()
                .any(|po| po.phase == "compute:overlap" && po.compute_ns > 0.0));
            // Same messages, same per-rank send occupancy under the model.
            for (b, o) in barrier.ranks.iter().zip(&overlapped.ranks) {
                assert_eq!(b.send_busy_ns, o.send_busy_ns, "identical wire traffic");
            }
        }
    }

    #[test]
    fn drift_table_covers_phases() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("gather-x", || {
                let partner = 1 - comm.rank();
                comm.send(partner, 0, vec![0.0; 8]);
                comm.recv(partner, 0).unwrap();
            });
            comm.with_phase("local-compute", || {
                std::hint::black_box((0..2000).map(|i| i as f64).sum::<f64>());
            });
        });
        let (report, drift) = replay_with_drift(
            &traces,
            AlphaBetaModel { alpha: 0.0, beta: 1.0, gamma: 1.0, link_ns: 0.0 },
        )
        .unwrap();
        assert!(report.makespan_ns > 0.0);
        let gather = drift.iter().find(|d| d.phase == "gather-x").unwrap();
        assert_eq!(gather.modeled_ns, 16.0, "two ranks × 8 words");
        assert!(gather.measured_ns > 0.0);
        let compute = drift.iter().find(|d| d.phase == "local-compute").unwrap();
        assert!(compute.modeled_ns > 0.0);
        assert!((compute.ratio() - 1.0).abs() < 0.5, "γ=1 compute drift ≈ 1");
    }
}
