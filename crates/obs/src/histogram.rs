//! Log-bucketed latency histograms: power-of-two buckets, mergeable, with
//! p50/p90/p99/max readouts, plus the profiler's standard set
//! ([`ProfileHistograms`]) recording per-round step latency and
//! per-message recv-wait from a traced run.
//!
//! [`Histogram`] started life in [`crate::metrics`] (which re-exports it
//! for compatibility); it lives here so the profiling layer and the
//! metrics registry share one implementation.

use crate::json::Value;
use std::collections::BTreeMap;
use symtensor_mpsim::matching::match_messages;
use symtensor_mpsim::CommEvent;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v` with `2^(i-1) < v ≤ 2^i` (bucket 0
/// counts `v ≤ 1`), i.e. upper bounds 1, 2, 4, 8, … Sum/min/max/count are
/// tracked exactly; quantiles are read from the buckets and therefore
/// resolve to a bucket upper bound (≤ one octave of error), clamped to the
/// exact `[min, max]` range.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Power-of-two bucket counts; `buckets[i]` has upper bound `2^i`.
    pub buckets: Vec<u64>,
}

/// The power-of-two bucket index for observation `v` — shared by
/// [`Histogram`] and the exemplar histograms in [`crate::slo`] so the two
/// always agree on which bucket an observation lands in.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        64 - ((v - 1).leading_zeros() as usize)
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = bucket_index(v);
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Folds `other` into `self` — the result is exactly the histogram of
    /// the union of both observation streams (power-of-two buckets align
    /// across instances by construction). This is what makes per-rank or
    /// per-shard histograms aggregatable.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a bucket upper bound clamped to
    /// `[min, max]`, or `None` when the histogram is empty — an empty
    /// histogram has no quantiles, and reporting 0 would be
    /// indistinguishable from a real 0 ns measurement. `try_quantile(1.0)`
    /// is the exact max.
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        let i = self.quantile_bucket(q)?;
        if q >= 1.0 {
            return Some(self.max);
        }
        Some((1u64 << i).clamp(self.min, self.max))
    }

    /// The bucket index holding the `q`-quantile observation (`None` when
    /// empty) — exemplar histograms use this to link a quantile readout to
    /// a concrete request recorded in that bucket.
    pub(crate) fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0));
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(i);
            }
        }
        Some(self.buckets.len().saturating_sub(1))
    }

    /// Infallible form of [`Histogram::try_quantile`]: 0 when empty. Kept
    /// for call sites that fold the empty case into "no latency"; report
    /// rendering should prefer `try_quantile` and print `-` for `None`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.try_quantile(q).unwrap_or(0)
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket-resolution).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// JSON form: exact stats, the percentile readouts (`null` when the
    /// histogram is empty — there is no quantile to report), and the
    /// non-empty buckets as `{le, count}` pairs.
    pub fn to_json(&self) -> Value {
        let quantile = |q: f64| self.try_quantile(q).map(Value::from).unwrap_or(Value::Null);
        Value::object()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", self.min)
            .with("max", self.max)
            .with("mean", self.mean())
            .with("p50", quantile(0.50))
            .with("p90", quantile(0.90))
            .with("p99", quantile(0.99))
            .with(
                "buckets",
                Value::Array(
                    self.buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| Value::object().with("le", 1u64 << i).with("count", c))
                        .collect(),
                ),
            )
    }
}

/// The profiler's standard latency histograms, computed from one traced
/// run's matched messages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileHistograms {
    /// Per-round step latency: for every `(phase, round)` group of matched
    /// messages, `max(recv time) − min(send time)` — how long the whole
    /// round took wall-clock, across all participating ranks.
    pub round_step_ns: Histogram,
    /// Per-message recv-wait: `recv time − send time` for every matched
    /// pair (an upper bound on receiver blocking; see
    /// [`symtensor_mpsim::MessageMatch::transit_ns`]).
    pub recv_wait_ns: Histogram,
    /// Per-message payload sizes in words (the β term's distribution).
    pub message_words: Histogram,
}

impl ProfileHistograms {
    /// Builds all three histograms from per-rank traces (send/recv pairs
    /// matched FIFO per `(src, dst, tag)`; rounds grouped per phase so the
    /// gather and reduce exchanges of one schedule don't alias).
    pub fn from_traces(traces: &[Vec<CommEvent>]) -> Self {
        let report = match_messages(traces);
        let mut out = ProfileHistograms::default();
        // (phase, round) -> (min send t, max recv t).
        let mut rounds: BTreeMap<(Option<&'static str>, u64), (u64, u64)> = BTreeMap::new();
        for m in &report.matches {
            out.recv_wait_ns.observe(m.transit_ns());
            out.message_words.observe(m.words);
            if let Some(round) = m.round {
                let entry =
                    rounds.entry((m.send_phase, round)).or_insert((m.send_t_ns, m.recv_t_ns));
                entry.0 = entry.0.min(m.send_t_ns);
                entry.1 = entry.1.max(m.recv_t_ns);
            }
        }
        for (start, end) in rounds.into_values() {
            out.round_step_ns.observe(end.saturating_sub(start));
        }
        out
    }

    /// Folds another run's histograms into this one (e.g. aggregating a
    /// sweep).
    pub fn merge(&mut self, other: &ProfileHistograms) {
        self.round_step_ns.merge(&other.round_step_ns);
        self.recv_wait_ns.merge(&other.recv_wait_ns);
        self.message_words.merge(&other.message_words);
    }

    /// JSON form, one object per histogram.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("round_step_ns", self.round_step_ns.to_json())
            .with("recv_wait_ns", self.recv_wait_ns.to_json())
            .with("message_words", self.message_words.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count, 100);
        // p50 target = observation #50 → bucket with upper bound 64
        // (values 33..=64 live there; cumulative through 32 is 32).
        assert_eq!(h.p50(), 64);
        assert_eq!(h.p90(), 128.min(h.max)); // clamped to max = 100
        assert_eq!(h.p99(), 100);
        assert_eq!(h.try_quantile(0.50), Some(64));
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 1); // clamps to min
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.try_quantile(0.5), None, "empty histogram has no quantiles");
        assert_eq!(h.try_quantile(1.0), None);
        assert_eq!(h.to_json().get("p99"), Some(&Value::Null), "JSON renders null, not 0");
        assert_eq!(h.mean(), 0.0);
        let mut other = Histogram::default();
        other.observe(5);
        let mut merged = h.clone();
        merged.merge(&other);
        assert_eq!(merged, other);
        let mut back = other.clone();
        back.merge(&h);
        assert_eq!(back, other);
    }

    #[test]
    fn merge_equals_union_stream() {
        let observations_a = [1u64, 7, 9, 130, 4096];
        let observations_b = [2u64, 7, 888, 1_000_000];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut union = Histogram::default();
        for v in observations_a {
            a.observe(v);
            union.observe(v);
        }
        for v in observations_b {
            b.observe(v);
            union.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
        assert_eq!(a.p99(), union.p99());
    }

    #[test]
    fn profile_histograms_from_a_ring_run() {
        let p = 4;
        let (_, _, traces) = Universe::new(p).run_traced(|comm| {
            comm.with_phase("shift", || {
                let next = (comm.rank() + 1) % p;
                let prev = (comm.rank() + p - 1) % p;
                for round in 0..3u64 {
                    comm.annotate_round(round);
                    comm.send(next, round, vec![0.0; 5]);
                    comm.recv(prev, round).unwrap();
                }
                comm.clear_round();
            });
        });
        let h = ProfileHistograms::from_traces(&traces);
        assert_eq!(h.message_words.count, (p * 3) as u64);
        assert_eq!(h.message_words.min, 5);
        assert_eq!(h.message_words.max, 5);
        assert_eq!(h.recv_wait_ns.count, (p * 3) as u64);
        assert_eq!(h.round_step_ns.count, 3, "three annotated rounds in one phase");
        let json = h.to_json();
        assert_eq!(
            json.get("message_words").unwrap().get("count").unwrap().as_u64(),
            Some((p * 3) as u64)
        );
        assert!(json.get("round_step_ns").unwrap().get("p99").is_some());
    }
}
