//! A small thread-safe metrics registry: counters, gauges and histograms.
//!
//! Ranks are OS threads, so the registry is `Sync` and can be shared across
//! a [`symtensor_mpsim::Universe::run`] closure. Histograms use
//! power-of-two buckets, which is the right resolution for message sizes
//! (the quantities the α-β-γ model counts) and for nanosecond latencies.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;
use symtensor_mpsim::cost::CommEventKind;
use symtensor_mpsim::{CommEvent, CostReport};

// The histogram implementation moved to `crate::histogram` (where the
// profiling layer extends it with merge + percentile readouts); re-exported
// here so existing `metrics::Histogram` users keep working.
pub use crate::histogram::Histogram;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named monotonic counter (creating it at 0).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets the named gauge to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), v);
    }

    /// Records one observation in the named histogram.
    pub fn histogram_observe(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Reads back a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().unwrap().counters.get(name).copied().unwrap_or(0)
    }

    /// Reads back a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }

    /// Snapshot of a histogram.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().unwrap().histograms.get(name).cloned()
    }

    /// Ingests a full run: per-rank cost counters from `report` and, when
    /// traces are available, the per-message word-size histogram
    /// (`comm.message_words`) and per-round word volumes
    /// (`comm.round_words`) the issue's observability spec calls for.
    pub fn record_run(&self, report: &CostReport, traces: &[Vec<CommEvent>]) {
        self.counter_add("comm.total_words_sent", report.total_words_sent());
        self.counter_add("comm.total_words_recv", report.total_words_recv());
        self.gauge_set("comm.bandwidth_cost", report.bandwidth_cost() as f64);
        self.gauge_set("comm.max_msgs_sent", report.max_msgs_sent() as f64);
        self.gauge_set("comm.max_rounds", report.max_rounds() as f64);
        for (rank, cost) in report.per_rank.iter().enumerate() {
            self.gauge_set(&format!("comm.rank.{rank}.words_sent"), cost.words_sent as f64);
            self.gauge_set(&format!("comm.rank.{rank}.words_recv"), cost.words_recv as f64);
        }
        let mut round_words: BTreeMap<u64, u64> = BTreeMap::new();
        for events in traces {
            for event in events {
                if let CommEventKind::Send { words, .. } = event.kind {
                    self.histogram_observe("comm.message_words", words);
                    if let Some(round) = event.round {
                        *round_words.entry(round).or_insert(0) += words;
                    }
                }
            }
        }
        for (_, words) in round_words {
            self.histogram_observe("comm.round_words", words);
        }
    }

    /// Serializes the registry as a flat JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Value {
        let inner = self.inner.lock().unwrap();
        let counters = Value::Object(
            inner.counters.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect(),
        );
        let gauges =
            Value::Object(inner.gauges.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect());
        let histograms =
            Value::Object(inner.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect());
        Value::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_mpsim::Universe;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 9);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 2); // 0, 1
        assert_eq!(h.buckets[1], 1); // 2
        assert_eq!(h.buckets[2], 2); // 3, 4
        assert_eq!(h.buckets[3], 2); // 5, 8
        assert_eq!(h.buckets[4], 1); // 9
        assert_eq!(h.buckets[10], 1); // 1024
    }

    #[test]
    fn registry_is_threadsafe_across_ranks() {
        let metrics = MetricsRegistry::new();
        Universe::new(4).run(|comm| {
            metrics.counter_add("ticks", 1 + comm.rank() as u64);
        });
        assert_eq!(metrics.counter("ticks"), 1 + 2 + 3 + 4);
    }

    #[test]
    fn record_run_builds_message_histogram() {
        let metrics = MetricsRegistry::new();
        let (_, report, traces) = Universe::new(2).run_traced(|comm| {
            let other = 1 - comm.rank();
            comm.annotate_round(0);
            comm.exchange(other, 0, vec![0.0; 3]).unwrap();
            comm.annotate_round(1);
            comm.exchange(other, 1, vec![0.0; 7]).unwrap();
            comm.clear_round();
        });
        metrics.record_run(&report, &traces);
        let h = metrics.histogram("comm.message_words").unwrap();
        assert_eq!(h.count, 4); // 2 ranks × 2 sends
        assert_eq!(h.sum, 2 * (3 + 7));
        let rounds = metrics.histogram("comm.round_words").unwrap();
        assert_eq!(rounds.count, 2);
        assert_eq!(rounds.sum, 2 * (3 + 7));
        assert_eq!(metrics.counter("comm.total_words_sent"), report.total_words_sent());
    }

    #[test]
    fn json_export_contains_sections() {
        let metrics = MetricsRegistry::new();
        metrics.counter_add("c", 2);
        metrics.gauge_set("g", 1.5);
        metrics.histogram_observe("h", 10);
        let v = metrics.to_json();
        assert_eq!(v.get("counters").unwrap().get("c").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("gauges").unwrap().get("g").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            v.get("histograms").unwrap().get("h").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }
}
