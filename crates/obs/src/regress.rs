//! The perf-regression gate over `BENCH_*.json` snapshots.
//!
//! A bench snapshot is the JSON document the `symtensor-bench` harness
//! writes: `{"benchmark": ..., "results": [{"kernel", "n", "q",
//! "ns_per_iter", ...}, ...]}`. This module parses two snapshots (a
//! checked-in baseline and a freshly measured current), joins their rows on
//! the `(kernel, n, q)` key, and flags every row whose `ns_per_iter` grew by
//! more than a configurable threshold.
//!
//! Two snapshot dialects are accepted for `q`:
//! * the legacy sentinel `"q": 0` (sequential kernels have no schedule
//!   parameter, older snapshots wrote a zero), and
//! * the current shape, where `q` is `null` or omitted for sequential
//!   kernels.
//!
//! Both normalize to [`BenchKey::q`]` == None`, so a new snapshot gates
//! cleanly against an old baseline and vice versa.
//!
//! Gate semantics ([`RegressionReport::regressed`]):
//! * a row slower than `baseline × (1 + threshold)` **fails**;
//! * a row present in the baseline but missing from the current run
//!   **fails** (a silently dropped benchmark must not pass the gate);
//! * a row new in the current run is reported but does **not** fail;
//! * everything else (faster, or within the noise band) passes.

use crate::json::{self, Value};
use std::fmt;

/// Join key for one benchmark row.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BenchKey {
    /// Kernel name (e.g. `"flat_slab"`).
    pub kernel: String,
    /// Problem size.
    pub n: u64,
    /// Schedule parameter; `None` for sequential kernels (accepts the
    /// legacy `"q": 0` sentinel, `null`, or an absent field).
    pub q: Option<u64>,
}

impl fmt::Display for BenchKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.q {
            Some(q) => write!(f, "{} n={} q={}", self.kernel, self.n, q),
            None => write!(f, "{} n={}", self.kernel, self.n),
        }
    }
}

/// One parsed benchmark row.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Join key.
    pub key: BenchKey,
    /// Nanoseconds per iteration (the gated quantity).
    pub ns_per_iter: f64,
}

/// Error produced when a snapshot cannot be parsed into bench records.
#[derive(Debug)]
pub struct SnapshotError(String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Parses a bench snapshot document into its rows.
///
/// Accepts both `q` dialects (see the module docs) and ignores fields it
/// does not know about, so snapshots can grow columns without breaking the
/// gate.
pub fn parse_snapshot(text: &str) -> Result<Vec<BenchRecord>, SnapshotError> {
    let doc = json::parse(text).map_err(|e| SnapshotError(format!("invalid JSON: {e}")))?;
    let results = doc
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| SnapshotError("missing \"results\" array".into()))?;
    let mut records = Vec::with_capacity(results.len());
    for (i, row) in results.iter().enumerate() {
        let kernel = row
            .get("kernel")
            .and_then(Value::as_str)
            .ok_or_else(|| SnapshotError(format!("results[{i}]: missing \"kernel\"")))?
            .to_string();
        let n = row
            .get("n")
            .and_then(Value::as_u64)
            .ok_or_else(|| SnapshotError(format!("results[{i}]: missing \"n\"")))?;
        let q = match row.get("q") {
            None | Some(Value::Null) => None,
            Some(v) => match v.as_u64() {
                Some(0) => None, // legacy sentinel for "no schedule parameter"
                Some(q) => Some(q),
                None => {
                    return Err(SnapshotError(format!("results[{i}]: \"q\" is not an integer")))
                }
            },
        };
        let ns_per_iter = row
            .get("ns_per_iter")
            .and_then(Value::as_f64)
            .ok_or_else(|| SnapshotError(format!("results[{i}]: missing \"ns_per_iter\"")))?;
        records.push(BenchRecord { key: BenchKey { kernel, n, q }, ns_per_iter });
    }
    Ok(records)
}

/// Verdict for one joined row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Slower by more than the threshold — fails the gate.
    Regressed,
    /// Within ±threshold of the baseline.
    Unchanged,
    /// Faster by more than the threshold (reported, never fails).
    Improved,
    /// In the baseline but not in the current run — fails the gate.
    Missing,
    /// In the current run but not in the baseline — reported, never fails.
    New,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Regressed => "REGRESSED",
            Verdict::Unchanged => "ok",
            Verdict::Improved => "improved",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One row of the diff table.
#[derive(Clone, Debug)]
pub struct RegressionRow {
    /// Join key.
    pub key: BenchKey,
    /// Baseline `ns_per_iter` (`None` for rows new in the current run).
    pub baseline_ns: Option<f64>,
    /// Current `ns_per_iter` (`None` for rows missing from the current run).
    pub current_ns: Option<f64>,
    /// Verdict under the report's threshold.
    pub verdict: Verdict,
}

impl RegressionRow {
    /// `current / baseline`, when both sides exist.
    pub fn ratio(&self) -> Option<f64> {
        match (self.baseline_ns, self.current_ns) {
            (Some(b), Some(c)) if b > 0.0 => Some(c / b),
            _ => None,
        }
    }
}

/// The joined diff of two snapshots under one threshold.
#[derive(Clone, Debug)]
pub struct RegressionReport {
    /// Relative slowdown tolerated before a row fails (0.15 = +15%).
    pub threshold: f64,
    /// All joined rows, sorted by key.
    pub rows: Vec<RegressionRow>,
}

impl RegressionReport {
    /// Joins `baseline` and `current` rows on `(kernel, n, q)` and assigns
    /// verdicts under `threshold`.
    pub fn evaluate(
        baseline: &[BenchRecord],
        current: &[BenchRecord],
        threshold: f64,
    ) -> RegressionReport {
        let mut keys: Vec<&BenchKey> =
            baseline.iter().chain(current.iter()).map(|r| &r.key).collect();
        keys.sort();
        keys.dedup();
        let find = |records: &[BenchRecord], key: &BenchKey| {
            records.iter().find(|r| r.key == *key).map(|r| r.ns_per_iter)
        };
        let rows = keys
            .into_iter()
            .map(|key| {
                let baseline_ns = find(baseline, key);
                let current_ns = find(current, key);
                let verdict = match (baseline_ns, current_ns) {
                    (Some(b), Some(c)) => {
                        if c > b * (1.0 + threshold) {
                            Verdict::Regressed
                        } else if c < b * (1.0 - threshold) {
                            Verdict::Improved
                        } else {
                            Verdict::Unchanged
                        }
                    }
                    (Some(_), None) => Verdict::Missing,
                    (None, Some(_)) => Verdict::New,
                    (None, None) => unreachable!("key came from one of the two sets"),
                };
                RegressionRow { key: key.clone(), baseline_ns, current_ns, verdict }
            })
            .collect();
        RegressionReport { threshold, rows }
    }

    /// `true` when any row fails the gate (regressed or missing).
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
    }

    /// Rows that fail the gate.
    pub fn failures(&self) -> Vec<&RegressionRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
            .collect()
    }

    /// Renders the diff as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>14} {:>14} {:>8}  {}\n",
            "kernel", "baseline ns", "current ns", "ratio", "verdict"
        ));
        for row in &self.rows {
            let fmt_ns = |v: Option<f64>| match v {
                Some(v) => format!("{v:.1}"),
                None => "-".to_string(),
            };
            let ratio = match row.ratio() {
                Some(r) => format!("{r:.3}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<28} {:>14} {:>14} {:>8}  {}\n",
                row.key.to_string(),
                fmt_ns(row.baseline_ns),
                fmt_ns(row.current_ns),
                ratio,
                row.verdict.label(),
            ));
        }
        let failures = self.failures().len();
        out.push_str(&format!(
            "{} rows, {} failure(s) at threshold +{:.0}%\n",
            self.rows.len(),
            failures,
            self.threshold * 100.0
        ));
        out
    }

    /// Serializes the diff (one object per row) for artifact upload.
    pub fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let opt = |v: Option<f64>| v.map(Value::Number).unwrap_or(Value::Null);
                Value::object()
                    .with("kernel", Value::String(row.key.kernel.clone()))
                    .with("n", Value::from(row.key.n))
                    .with("q", row.key.q.map(Value::from).unwrap_or(Value::Null))
                    .with("baseline_ns", opt(row.baseline_ns))
                    .with("current_ns", opt(row.current_ns))
                    .with("ratio", row.ratio().map(Value::Number).unwrap_or(Value::Null))
                    .with("verdict", Value::String(row.verdict.label().to_string()))
            })
            .collect();
        Value::object()
            .with("threshold", Value::Number(self.threshold))
            .with("regressed", Value::Bool(self.regressed()))
            .with("rows", Value::Array(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kernel: &str, n: u64, q: Option<u64>, ns: f64) -> BenchRecord {
        BenchRecord { key: BenchKey { kernel: kernel.into(), n, q }, ns_per_iter: ns }
    }

    #[test]
    fn parses_legacy_q0_and_null_q_identically() {
        let legacy =
            r#"{"results": [{"kernel": "flat_slab", "n": 128, "q": 0, "ns_per_iter": 100.0}]}"#;
        let modern =
            r#"{"results": [{"kernel": "flat_slab", "n": 128, "q": null, "ns_per_iter": 100.0}]}"#;
        let omitted = r#"{"results": [{"kernel": "flat_slab", "n": 128, "ns_per_iter": 100.0}]}"#;
        let a = parse_snapshot(legacy).unwrap();
        let b = parse_snapshot(modern).unwrap();
        let c = parse_snapshot(omitted).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a[0].key.q, None);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(parse_snapshot("not json").is_err());
        assert!(parse_snapshot("{}").is_err());
        let no_ns = r#"{"results": [{"kernel": "k", "n": 1}]}"#;
        let err = parse_snapshot(no_ns).unwrap_err().to_string();
        assert!(err.contains("ns_per_iter"), "{err}");
    }

    #[test]
    fn gate_fails_on_regression_and_missing_only() {
        let baseline = vec![
            rec("a", 64, None, 100.0),
            rec("b", 64, None, 100.0),
            rec("c", 64, Some(3), 100.0),
            rec("gone", 64, None, 50.0),
        ];
        let current = vec![
            rec("a", 64, None, 130.0),    // +30% → regressed
            rec("b", 64, None, 104.0),    // +4% → within noise
            rec("c", 64, Some(3), 60.0),  // −40% → improved
            rec("fresh", 64, None, 10.0), // new → ok
        ];
        let report = RegressionReport::evaluate(&baseline, &current, 0.15);
        assert!(report.regressed());
        let verdicts: Vec<(String, Verdict)> =
            report.rows.iter().map(|r| (r.key.to_string(), r.verdict)).collect();
        assert!(verdicts.contains(&("a n=64".into(), Verdict::Regressed)));
        assert!(verdicts.contains(&("b n=64".into(), Verdict::Unchanged)));
        assert!(verdicts.contains(&("c n=64 q=3".into(), Verdict::Improved)));
        assert!(verdicts.contains(&("gone n=64".into(), Verdict::Missing)));
        assert!(verdicts.contains(&("fresh n=64".into(), Verdict::New)));
        assert_eq!(report.failures().len(), 2);
    }

    #[test]
    fn checked_in_snapshot_covers_overlap_kernels() {
        // The repository's BENCH_kernels.json is the perf-gate baseline;
        // the overlapped-exchange kernel rows must be present there (so a
        // vanished `plan_overlap` is a Missing verdict, not silence) and
        // must join cleanly against themselves.
        let snapshot = include_str!("../../../BENCH_kernels.json");
        let rows = parse_snapshot(snapshot).unwrap();
        for q in [2u64, 3] {
            assert!(
                rows.iter().any(|r| r.key.kernel == "plan_overlap" && r.key.q == Some(q)),
                "baseline snapshot must carry a plan_overlap row for q={q}"
            );
        }
        let report = RegressionReport::evaluate(&rows, &rows, 0.15);
        assert!(!report.regressed());
        let mut dropped = rows.clone();
        dropped.retain(|r| r.key.kernel != "plan_overlap");
        let report = RegressionReport::evaluate(&rows, &dropped, 0.15);
        assert!(report.regressed(), "losing the overlap rows must trip the gate");
        assert!(report
            .failures()
            .iter()
            .all(|r| r.key.kernel == "plan_overlap" && r.verdict == Verdict::Missing));
    }

    #[test]
    fn identical_snapshots_pass() {
        let rows = vec![rec("a", 64, None, 100.0), rec("b", 128, Some(2), 7.5)];
        let report = RegressionReport::evaluate(&rows, &rows, 0.15);
        assert!(!report.regressed());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
    }

    #[test]
    fn table_and_json_round_out() {
        let baseline = vec![rec("a", 64, None, 100.0)];
        let current = vec![rec("a", 64, None, 140.0)];
        let report = RegressionReport::evaluate(&baseline, &current, 0.15);
        let table = report.render_table();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("1.400"));
        let doc = report.to_json();
        assert_eq!(doc.get("regressed"), Some(&Value::Bool(true)));
        let reparsed = json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(
            reparsed.get("rows").unwrap().as_array().unwrap()[0].get("verdict").unwrap().as_str(),
            Some("REGRESSED")
        );
    }
}
