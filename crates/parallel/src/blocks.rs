//! Per-rank owned tensor storage and the local STTSV kernels.
//!
//! Under the owner-compute rule each processor extracts its blocks from the
//! global tensor **once** and never communicates them. Storage layouts:
//!
//! * off-diagonal block `(I, J, K)`, `I > J > K`: dense `b³`, index
//!   `(li·b + lj)·b + lk` with `li/lj/lk` local to `I/J/K`,
//! * non-central `(I, I, K)`: the `li ≥ lj` triangle over `I` crossed with
//!   `K`, index `tri(li, lj)·b + lk`,
//! * non-central `(I, K, K)`: `I` crossed with the `lj ≥ lk` triangle over
//!   `K`, index `li·tri_len + tri(lj, lk)`,
//! * central `(I, I, I)`: the packed `li ≥ lj ≥ lk` tetrahedron.
//!
//! The kernels perform, per stored element, exactly the updates of the
//! paper's Algorithm 4 case analysis (lines 24–36 of Algorithm 5), and
//! count ternary multiplications in the paper's model (3 / 2 / 1 updates
//! per element depending on index coincidences).

use crate::partition::TetraPartition;
use crate::tetra::{BlockIdx, BlockKind};
use symtensor_core::seq::row_segment;
use symtensor_core::SymTensor3;

#[inline]
fn tet_idx(a: usize, b: usize, c: usize) -> usize {
    debug_assert!(a >= b && b >= c);
    a * (a + 1) * (a + 2) / 6 + b * (b + 1) / 2 + c
}

/// Chunk-count cap for the parallel compute paths: bounds the
/// `chunks · |R_p| · b` words of partial-accumulator workspace while still
/// leaving plenty of stealable units for any realistic worker count. The
/// chunk decomposition is a function of the block count alone — never of
/// the thread count — which is what makes the parallel paths bit-identical
/// across thread counts.
pub(crate) const MAX_COMPUTE_CHUNKS: usize = 32;

/// One extracted tensor block with its data in the kind-specific layout.
#[derive(Clone, Debug)]
pub struct OwnedBlock {
    /// The block's (sorted) row-block triple.
    pub idx: BlockIdx,
    /// Its classification (off-diagonal / non-central / central).
    pub kind: BlockKind,
    /// Entries in the kind-specific layout documented at module level.
    pub data: Vec<f64>,
}

/// All tensor blocks owned by one rank.
#[derive(Clone, Debug)]
pub struct OwnedBlocks {
    /// The extracted blocks, sorted by block index.
    pub blocks: Vec<OwnedBlock>,
    b: usize,
}

impl OwnedBlocks {
    /// Extracts processor `p`'s blocks from the global tensor.
    pub fn extract(tensor: &SymTensor3, part: &TetraPartition, p: usize) -> Self {
        assert_eq!(tensor.dim(), part.dim(), "tensor dimension mismatch");
        let b = part.block_size();
        let blocks = part
            .owned_blocks(p)
            .into_iter()
            .map(|idx| {
                let kind = idx.kind();
                let (gi, gj, gk) = (idx.i * b, idx.j * b, idx.k * b);
                let data = match kind {
                    BlockKind::OffDiagonal => {
                        let mut data = Vec::with_capacity(b * b * b);
                        for li in 0..b {
                            for lj in 0..b {
                                for lk in 0..b {
                                    data.push(tensor.get_sorted(gi + li, gj + lj, gk + lk));
                                }
                            }
                        }
                        data
                    }
                    BlockKind::NonCentralIIK => {
                        let mut data = Vec::with_capacity(b * (b + 1) / 2 * b);
                        for li in 0..b {
                            for lj in 0..=li {
                                for lk in 0..b {
                                    data.push(tensor.get_sorted(gi + li, gi + lj, gk + lk));
                                }
                            }
                        }
                        data
                    }
                    BlockKind::NonCentralIKK => {
                        let mut data = Vec::with_capacity(b * b * (b + 1) / 2);
                        for li in 0..b {
                            for lj in 0..b {
                                for lk in 0..=lj {
                                    data.push(tensor.get_sorted(gi + li, gk + lj, gk + lk));
                                }
                            }
                        }
                        data
                    }
                    BlockKind::CentralDiagonal => {
                        let mut data = Vec::with_capacity(b * (b + 1) * (b + 2) / 6);
                        for li in 0..b {
                            for lj in 0..=li {
                                for lk in 0..=lj {
                                    data.push(tensor.get_sorted(gi + li, gi + lj, gi + lk));
                                }
                            }
                        }
                        data
                    }
                };
                OwnedBlock { idx, kind, data }
            })
            .collect();
        OwnedBlocks { blocks, b }
    }

    /// Builds processor `p`'s block *structure* with zeroed data — used by
    /// receivers of a tensor scatter, which fill the data in afterwards.
    /// The block order and per-block lengths are deterministic functions of
    /// the partition, so sender and receiver agree without metadata.
    pub fn extract_empty(part: &TetraPartition, p: usize) -> Self {
        let b = part.block_size();
        let blocks = part
            .owned_blocks(p)
            .into_iter()
            .map(|idx| {
                let kind = idx.kind();
                let len = crate::tetra::entries_in_block(kind, b);
                OwnedBlock { idx, kind, data: vec![0.0; len] }
            })
            .collect();
        OwnedBlocks { blocks, b }
    }

    /// Total stored words.
    pub fn words(&self) -> usize {
        self.blocks.iter().map(|blk| blk.data.len()).sum()
    }

    /// The block edge length `b` these blocks were extracted with.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Resolves every block's `(i, j, k)` row-block triple into row *slots*
    /// (positions within `R_p`) **once**, so the kernels index flat `x`/`y`
    /// slabs directly instead of dispatching a lookup closure per block.
    pub(crate) fn slot_table<F>(&self, row_pos: &F) -> Vec<[usize; 3]>
    where
        F: Fn(usize) -> usize,
    {
        self.blocks
            .iter()
            .map(|blk| [row_pos(blk.idx.i), row_pos(blk.idx.j), row_pos(blk.idx.k)])
            .collect()
    }

    /// Runs the local STTSV kernels: `x_full` maps row-block index → the
    /// gathered full row block (length `b`); contributions accumulate into
    /// `y_acc` (same keying). Returns the ternary-multiplication count in
    /// the paper's model.
    ///
    /// `x_full`/`y_acc` are indexed by *position within `R_p`*; the
    /// `row_pos` lookup supplied by the caller is resolved **once** into a
    /// slot table up front (not dispatched per block), and the kernels run
    /// over flat `t_count·b` slabs.
    pub fn compute<F>(&self, x_full: &[Vec<f64>], y_acc: &mut [Vec<f64>], row_pos: F) -> u64
    where
        F: Fn(usize) -> usize,
    {
        let b = self.b;
        let slots = self.slot_table(&row_pos);
        let t_count = x_full.len();
        let mut x_flat = vec![0.0; t_count * b];
        for (t, row) in x_full.iter().enumerate() {
            debug_assert_eq!(row.len(), b);
            x_flat[t * b..t * b + b].copy_from_slice(row);
        }
        let mut y_flat = vec![0.0; t_count * b];
        let mut scratch = vec![0.0; 3 * b];
        let mut ternary: u64 = 0;
        for (blk, &s) in self.blocks.iter().zip(&slots) {
            ternary +=
                block_kernel_flat(blk.kind, &blk.data, b, s, &x_flat, &mut y_flat, &mut scratch);
        }
        for (t, row) in y_acc.iter_mut().enumerate() {
            add_into(row, &y_flat[t * b..t * b + b]);
        }
        ternary
    }

    /// Shared-memory parallel [`OwnedBlocks::compute`]: the rank's blocks
    /// are split into contiguous chunks executed across `pool`'s workers,
    /// each chunk accumulating into a zeroed partial leased from the pool's
    /// [`symtensor_pool::WorkspacePool`] (no per-call allocation in steady
    /// state); the partials are combined with the fixed pairwise
    /// [`symtensor_pool::tree_reduce`] and added into `y_acc`.
    ///
    /// The chunk decomposition and reduction tree depend only on the block
    /// list (never on the pool's thread count), so the result is
    /// **bit-identical across runs and thread counts**; it can differ from
    /// the sequential [`OwnedBlocks::compute`] only in floating-point
    /// summation order. The returned ternary count is exactly the
    /// sequential one.
    pub fn compute_par<F>(
        &self,
        x_full: &[Vec<f64>],
        y_acc: &mut [Vec<f64>],
        row_pos: F,
        pool: &symtensor_pool::Pool,
    ) -> u64
    where
        F: Fn(usize) -> usize + Sync,
    {
        if self.blocks.is_empty() {
            return 0;
        }
        let b = self.b;
        let slots = self.slot_table(&row_pos);
        let t_count = x_full.len();
        let ws = pool.workspaces();
        let mut xy = ws.lease_zeroed(2 * t_count * b);
        let (x_flat, y_flat) = xy.split_at_mut(t_count * b);
        for (t, row) in x_full.iter().enumerate() {
            debug_assert_eq!(row.len(), b);
            x_flat[t * b..t * b + b].copy_from_slice(row);
        }
        let blocks = &self.blocks;
        let x_flat = &*x_flat;
        let ternary =
            chunked_compute_flat(blocks.len(), b, y_flat, pool, |range, partial, scratch| {
                let mut t = 0u64;
                for (blk, &s) in blocks[range.clone()].iter().zip(&slots[range]) {
                    t += block_kernel_flat(blk.kind, &blk.data, b, s, x_flat, partial, scratch);
                }
                t
            });
        for (t, row) in y_acc.iter_mut().enumerate() {
            add_into(row, &y_flat[t * b..t * b + b]);
        }
        ws.give_back(xy);
        ternary
    }
}

/// The shared chunked-parallel driver behind [`OwnedBlocks::compute_par`]
/// and the compiled-plan pooled compute: splits `n_blocks` into
/// `min(n_blocks, MAX_COMPUTE_CHUNKS)` contiguous ranges, runs
/// `run_range(range, partial, scratch)` per chunk into a zeroed
/// `y.len() + 3b`-word workspace leased from the pool, tree-reduces the
/// partials pairwise in fixed chunk order and adds the result into `y`.
///
/// Because legacy and plan paths funnel through the *same* decomposition,
/// lease discipline and reduction tree, their pooled results are bitwise
/// equal whenever their per-block kernels are.
pub(crate) fn chunked_compute_flat<F>(
    n_blocks: usize,
    b: usize,
    y: &mut [f64],
    pool: &symtensor_pool::Pool,
    run_range: F,
) -> u64
where
    F: Fn(std::ops::Range<usize>, &mut [f64], &mut [f64]) -> u64 + Sync,
{
    if n_blocks == 0 {
        return 0;
    }
    let chunks = n_blocks.min(MAX_COMPUTE_CHUNKS);
    let y_len = y.len();
    let ws = pool.workspaces();
    let partials = pool.run_chunks(chunks, |c| {
        let lo = c * n_blocks / chunks;
        let hi = (c + 1) * n_blocks / chunks;
        let mut buf = ws.lease_zeroed(y_len + 3 * b);
        let (partial, scratch) = buf.split_at_mut(y_len);
        let ternary = run_range(lo..hi, partial, scratch);
        (buf, ternary)
    });
    let (buf, ternary) = symtensor_pool::tree_reduce(partials, |(mut a, ta), (bb, tb)| {
        add_into(&mut a[..y_len], &bb[..y_len]);
        ws.give_back(bb);
        (a, ta + tb)
    })
    .expect("at least one chunk");
    add_into(y, &buf[..y_len]);
    ws.give_back(buf);
    ternary
}

/// Dispatches one block's data to its kind-specific flat kernel.
///
/// `x`/`y` are flat `t_count·b` slabs keyed by row slot (`slots` holds the
/// precomputed slots of the block's `(i, j, k)` rows); `scratch` is a
/// caller-provided `3b`-word buffer, re-zeroed here so it can be reused
/// across blocks without reallocation. Returns the block's exact ternary
/// count.
#[inline]
pub(crate) fn block_kernel_flat(
    kind: BlockKind,
    data: &[f64],
    b: usize,
    slots: [usize; 3],
    x: &[f64],
    y: &mut [f64],
    scratch: &mut [f64],
) -> u64 {
    match kind {
        BlockKind::OffDiagonal => off_diagonal_flat(data, b, slots, x, y, scratch),
        BlockKind::NonCentralIIK => iik_flat(data, b, slots, x, y, scratch),
        BlockKind::NonCentralIKK => ikk_flat(data, b, slots, x, y, scratch),
        BlockKind::CentralDiagonal => central_flat(data, b, slots, x, y, scratch),
    }
}

/// Off-diagonal block: all global indices strictly ordered, so every element
/// performs the full 3-update with symmetry factor 2 (3 ternary mults in the
/// model). The inner loop is one fused contiguous pass over `lk`: the
/// `y_K` update and the `Σ_k a·x_k` dot product share a single load of the
/// tensor element.
#[inline]
fn off_diagonal_flat(
    data: &[f64],
    b: usize,
    slots: [usize; 3],
    x: &[f64],
    y: &mut [f64],
    scratch: &mut [f64],
) -> u64 {
    let [pi, pj, pk] = slots;
    let (yi_local, rest) = scratch.split_at_mut(b);
    let (yj_local, yk_local) = rest.split_at_mut(b);
    yi_local.fill(0.0);
    yj_local.fill(0.0);
    yk_local.fill(0.0);
    let xi = &x[pi * b..pi * b + b];
    let xj = &x[pj * b..pj * b + b];
    let xk = &x[pk * b..pk * b + b];
    for (li, &xia) in xi.iter().enumerate() {
        for (lj, &xjb) in xj.iter().enumerate() {
            let row = &data[(li * b + lj) * b..(li * b + lj) * b + b];
            let pref = 2.0 * xia * xjb;
            let mut dot_k = 0.0;
            for ((&v, &xkv), ykv) in row.iter().zip(xk).zip(yk_local.iter_mut()) {
                *ykv += pref * v;
                dot_k += v * xkv;
            }
            yi_local[li] += 2.0 * dot_k * xjb;
            yj_local[lj] += 2.0 * dot_k * xia;
        }
    }
    add_into(&mut y[pi * b..pi * b + b], yi_local);
    add_into(&mut y[pj * b..pj * b + b], yj_local);
    add_into(&mut y[pk * b..pk * b + b], yk_local);
    3 * (b as u64).pow(3)
}

/// Non-central (I, I, K): elements `(gi+li, gi+lj, gk+lk)` with `li ≥ lj`.
#[inline]
fn iik_flat(
    data: &[f64],
    b: usize,
    slots: [usize; 3],
    x: &[f64],
    y: &mut [f64],
    scratch: &mut [f64],
) -> u64 {
    let (pi, pk) = (slots[0], slots[2]);
    let (yi_local, rest) = scratch.split_at_mut(b);
    let (yk_local, _) = rest.split_at_mut(b);
    yi_local.fill(0.0);
    yk_local.fill(0.0);
    let xi = &x[pi * b..pi * b + b];
    let xk = &x[pk * b..pk * b + b];
    let mut ternary = 0u64;
    let mut pos = 0;
    for li in 0..b {
        for lj in 0..=li {
            let row = &data[pos..pos + b];
            pos += b;
            if li != lj {
                // Global i > j > k: full 3-update.
                let pref = 2.0 * xi[li] * xi[lj];
                let mut dot_k = 0.0;
                for ((&v, &xkv), ykv) in row.iter().zip(xk).zip(yk_local.iter_mut()) {
                    *ykv += pref * v;
                    dot_k += v * xkv;
                }
                yi_local[li] += 2.0 * dot_k * xi[lj];
                yi_local[lj] += 2.0 * dot_k * xi[li];
                ternary += 3 * b as u64;
            } else {
                // Global i == j > k: y_i += 2·a·x_i·x_k ; y_k += a·x_i².
                let sq = xi[li] * xi[li];
                let mut dot_k = 0.0;
                for ((&v, &xkv), ykv) in row.iter().zip(xk).zip(yk_local.iter_mut()) {
                    *ykv += sq * v;
                    dot_k += v * xkv;
                }
                yi_local[li] += 2.0 * dot_k * xi[li];
                ternary += 2 * b as u64;
            }
        }
    }
    add_into(&mut y[pi * b..pi * b + b], yi_local);
    add_into(&mut y[pk * b..pk * b + b], yk_local);
    ternary
}

/// Non-central (I, K, K): elements `(gi+li, gk+lj, gk+lk)` with `lj ≥ lk`.
///
/// Fused like [`row_segment`]: per packed row `(li, lj)` the strict
/// `lk < lj` run shares one pass between the `y_K` update and the dot
/// product, with the `lj == lk` diagonal element peeled as an epilogue.
#[inline]
fn ikk_flat(
    data: &[f64],
    b: usize,
    slots: [usize; 3],
    x: &[f64],
    y: &mut [f64],
    scratch: &mut [f64],
) -> u64 {
    let (pi, pk) = (slots[0], slots[2]);
    let (yi_local, rest) = scratch.split_at_mut(b);
    let (yk_local, _) = rest.split_at_mut(b);
    yi_local.fill(0.0);
    yk_local.fill(0.0);
    let xi = &x[pi * b..pi * b + b];
    let xk = &x[pk * b..pk * b + b];
    let tri_len = b * (b + 1) / 2;
    let mut ternary = 0u64;
    for (li, &xia) in xi.iter().enumerate() {
        let slab = &data[li * tri_len..(li + 1) * tri_len];
        let mut pos = 0;
        let mut yi_row = 0.0;
        for (lj, &xjb) in xk.iter().enumerate() {
            let row = &slab[pos..pos + lj + 1];
            pos += lj + 1;
            // Strict lk < lj (global i > j > k): fused 3-update.
            let pref = 2.0 * xia * xjb;
            let mut dot = 0.0;
            for ((&v, &xkv), ykv) in row[..lj].iter().zip(&xk[..lj]).zip(yk_local[..lj].iter_mut())
            {
                *ykv += pref * v;
                dot += v * xkv;
            }
            yi_row += 2.0 * xjb * dot;
            yk_local[lj] += 2.0 * xia * dot;
            // lj == lk epilogue (global i > j == k):
            // y_i += a·x_k² ; y_k += 2·a·x_i·x_k.
            let v = row[lj];
            yi_row += v * xjb * xjb;
            yk_local[lj] += 2.0 * v * xia * xjb;
            ternary += 3 * lj as u64 + 2;
        }
        yi_local[li] += yi_row;
    }
    add_into(&mut y[pi * b..pi * b + b], yi_local);
    add_into(&mut y[pk * b..pk * b + b], yk_local);
    ternary
}

/// Central (I, I, I): the packed `li ≥ lj ≥ lk` tetrahedron **is** a packed
/// symmetric `b`-tensor, so the kernel is a cursor walk delegating each
/// packed row to [`row_segment`] — literally the same inner loop as the
/// flat-slab sequential kernel in `core::seq`.
#[inline]
fn central_flat(
    data: &[f64],
    b: usize,
    slots: [usize; 3],
    x: &[f64],
    y: &mut [f64],
    scratch: &mut [f64],
) -> u64 {
    let pi = slots[0];
    let (yi_local, _) = scratch.split_at_mut(b);
    yi_local.fill(0.0);
    let xi = &x[pi * b..pi * b + b];
    let mut ternary = 0u64;
    let mut pos = 0;
    for li in 0..b {
        for lj in 0..=li {
            debug_assert_eq!(pos, tet_idx(li, lj, 0));
            ternary += row_segment(&data[pos..pos + lj + 1], li, lj, 0, xi, yi_local);
            pos += lj + 1;
        }
    }
    add_into(&mut y[pi * b..pi * b + b], yi_local);
    ternary
}

#[inline]
pub(crate) fn add_into(dst: &mut [f64], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tetra::ternary_mults_in_block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::generate::random_symmetric;
    use symtensor_core::seq::sttsv_sym;
    use symtensor_steiner::{spherical, sqs8};

    /// Reference: run every rank's kernels serially and assemble the global
    /// y; must equal sequential Algorithm 4.
    fn run_all_ranks(part: &TetraPartition, tensor: &SymTensor3, x: &[f64]) -> (Vec<f64>, u64) {
        let n = part.dim();
        let b = part.block_size();
        let mut y = vec![0.0; n];
        let mut total_ternary = 0;
        for p in 0..part.num_procs() {
            let owned = OwnedBlocks::extract(tensor, part, p);
            let rp = part.r_set(p);
            let x_full: Vec<Vec<f64>> =
                rp.iter().map(|&i| x[part.block_range(i)].to_vec()).collect();
            let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            let pos = |i: usize| rp.binary_search(&i).unwrap();
            total_ternary += owned.compute(&x_full, &mut y_acc, pos);
            for (t, &i) in rp.iter().enumerate() {
                for (off, g) in part.block_range(i).enumerate() {
                    y[g] += y_acc[t][off];
                }
            }
        }
        (y, total_ternary)
    }

    #[test]
    fn kernels_reproduce_sequential_sttsv_q2() {
        let mut rng = StdRng::seed_from_u64(71);
        let part = TetraPartition::new(spherical(2), 20).unwrap();
        let tensor = random_symmetric(20, &mut rng);
        let x: Vec<f64> = (0..20).map(|i| ((i + 1) as f64 * 0.31).sin()).collect();
        let (y_par, ternary) = run_all_ranks(&part, &tensor, &x);
        let (y_seq, ops) = sttsv_sym(&tensor, &x);
        for i in 0..20 {
            assert!((y_par[i] - y_seq[i]).abs() < 1e-10, "y[{i}]: {} vs {}", y_par[i], y_seq[i]);
        }
        assert_eq!(ternary, ops.ternary_mults);
    }

    #[test]
    fn kernels_reproduce_sequential_sttsv_q3() {
        let mut rng = StdRng::seed_from_u64(72);
        let n = 40; // b = 4.
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        let (y_par, ternary) = run_all_ranks(&part, &tensor, &x);
        let (y_seq, ops) = sttsv_sym(&tensor, &x);
        for i in 0..n {
            assert!((y_par[i] - y_seq[i]).abs() < 1e-9, "y[{i}]");
        }
        assert_eq!(ternary, ops.ternary_mults);
    }

    #[test]
    fn kernels_reproduce_sequential_sttsv_sqs8() {
        let mut rng = StdRng::seed_from_u64(73);
        let n = 24; // m = 8, b = 3.
        let part = TetraPartition::new(sqs8(), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 2) as f64).collect();
        let (y_par, _) = run_all_ranks(&part, &tensor, &x);
        let (y_seq, _) = sttsv_sym(&tensor, &x);
        for i in 0..n {
            assert!((y_par[i] - y_seq[i]).abs() < 1e-10, "y[{i}]");
        }
    }

    #[test]
    fn per_block_ternary_counts_match_formulas() {
        let mut rng = StdRng::seed_from_u64(74);
        let n = 30; // q = 2, b = 6.
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let b = part.block_size();
        let x = vec![1.0; n];
        for p in 0..part.num_procs() {
            let owned = OwnedBlocks::extract(&tensor, &part, p);
            let rp = part.r_set(p);
            let x_full: Vec<Vec<f64>> =
                rp.iter().map(|&i| x[part.block_range(i)].to_vec()).collect();
            let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            let pos = |i: usize| rp.binary_search(&i).unwrap();
            let measured = owned.compute(&x_full, &mut y_acc, pos);
            let formula: u64 =
                part.owned_blocks(p).iter().map(|blk| ternary_mults_in_block(blk.kind(), b)).sum();
            assert_eq!(measured, formula, "processor {p}");
            assert_eq!(measured, part.ternary_mults(p));
        }
    }

    #[test]
    fn compute_par_matches_compute_and_is_thread_count_invariant() {
        use symtensor_pool::Pool;
        let mut rng = StdRng::seed_from_u64(76);
        let n = 40; // q = 3, b = 4: every block kind occurs.
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let b = part.block_size();
        let x: Vec<f64> = (0..n).map(|i| ((i + 2) as f64 * 0.23).sin()).collect();
        for p in (0..part.num_procs()).step_by(7) {
            let owned = OwnedBlocks::extract(&tensor, &part, p);
            let rp = part.r_set(p);
            let x_full: Vec<Vec<f64>> =
                rp.iter().map(|&i| x[part.block_range(i)].to_vec()).collect();
            let pos = |i: usize| rp.binary_search(&i).unwrap();

            let mut y_seq: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            let t_seq = owned.compute(&x_full, &mut y_seq, pos);

            let mut reference: Option<Vec<Vec<f64>>> = None;
            for threads in [1usize, 2, 3, 8] {
                let pool = Pool::new(threads);
                let mut y_par: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
                let t_par = owned.compute_par(&x_full, &mut y_par, pos, &pool);
                assert_eq!(t_par, t_seq, "rank {p} threads={threads}: ternary count");
                for (t, (vp, vs)) in y_par.iter().zip(&y_seq).enumerate() {
                    for (o, (&a, &c)) in vp.iter().zip(vs).enumerate() {
                        assert!(
                            (a - c).abs() <= 1e-12 * (1.0 + c.abs()),
                            "rank {p} threads={threads} y[{t}][{o}]"
                        );
                    }
                }
                match &reference {
                    None => reference = Some(y_par),
                    Some(r) => assert_eq!(
                        &y_par, r,
                        "rank {p} threads={threads}: must be bit-identical across thread counts"
                    ),
                }
            }
        }
    }

    #[test]
    fn extraction_word_counts_match_partition() {
        let mut rng = StdRng::seed_from_u64(75);
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        for p in 0..part.num_procs() {
            let owned = OwnedBlocks::extract(&tensor, &part, p);
            assert_eq!(owned.words(), part.tensor_words(p));
        }
    }
}
