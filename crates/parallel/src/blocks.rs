//! Per-rank owned tensor storage and the local STTSV kernels.
//!
//! Under the owner-compute rule each processor extracts its blocks from the
//! global tensor **once** and never communicates them. Storage layouts:
//!
//! * off-diagonal block `(I, J, K)`, `I > J > K`: dense `b³`, index
//!   `(li·b + lj)·b + lk` with `li/lj/lk` local to `I/J/K`,
//! * non-central `(I, I, K)`: the `li ≥ lj` triangle over `I` crossed with
//!   `K`, index `tri(li, lj)·b + lk`,
//! * non-central `(I, K, K)`: `I` crossed with the `lj ≥ lk` triangle over
//!   `K`, index `li·tri_len + tri(lj, lk)`,
//! * central `(I, I, I)`: the packed `li ≥ lj ≥ lk` tetrahedron.
//!
//! The kernels perform, per stored element, exactly the updates of the
//! paper's Algorithm 4 case analysis (lines 24–36 of Algorithm 5), and
//! count ternary multiplications in the paper's model (3 / 2 / 1 updates
//! per element depending on index coincidences).

use crate::partition::TetraPartition;
use crate::tetra::{BlockIdx, BlockKind};
use symtensor_core::SymTensor3;

#[inline]
fn tet_idx(a: usize, b: usize, c: usize) -> usize {
    debug_assert!(a >= b && b >= c);
    a * (a + 1) * (a + 2) / 6 + b * (b + 1) / 2 + c
}

/// One extracted tensor block with its data in the kind-specific layout.
#[derive(Clone, Debug)]
pub struct OwnedBlock {
    /// The block's (sorted) row-block triple.
    pub idx: BlockIdx,
    /// Its classification (off-diagonal / non-central / central).
    pub kind: BlockKind,
    /// Entries in the kind-specific layout documented at module level.
    pub data: Vec<f64>,
}

/// All tensor blocks owned by one rank.
#[derive(Clone, Debug)]
pub struct OwnedBlocks {
    /// The extracted blocks, sorted by block index.
    pub blocks: Vec<OwnedBlock>,
    b: usize,
}

impl OwnedBlocks {
    /// Extracts processor `p`'s blocks from the global tensor.
    pub fn extract(tensor: &SymTensor3, part: &TetraPartition, p: usize) -> Self {
        assert_eq!(tensor.dim(), part.dim(), "tensor dimension mismatch");
        let b = part.block_size();
        let blocks = part
            .owned_blocks(p)
            .into_iter()
            .map(|idx| {
                let kind = idx.kind();
                let (gi, gj, gk) = (idx.i * b, idx.j * b, idx.k * b);
                let data = match kind {
                    BlockKind::OffDiagonal => {
                        let mut data = Vec::with_capacity(b * b * b);
                        for li in 0..b {
                            for lj in 0..b {
                                for lk in 0..b {
                                    data.push(tensor.get_sorted(gi + li, gj + lj, gk + lk));
                                }
                            }
                        }
                        data
                    }
                    BlockKind::NonCentralIIK => {
                        let mut data = Vec::with_capacity(b * (b + 1) / 2 * b);
                        for li in 0..b {
                            for lj in 0..=li {
                                for lk in 0..b {
                                    data.push(tensor.get_sorted(gi + li, gi + lj, gk + lk));
                                }
                            }
                        }
                        data
                    }
                    BlockKind::NonCentralIKK => {
                        let mut data = Vec::with_capacity(b * b * (b + 1) / 2);
                        for li in 0..b {
                            for lj in 0..b {
                                for lk in 0..=lj {
                                    data.push(tensor.get_sorted(gi + li, gk + lj, gk + lk));
                                }
                            }
                        }
                        data
                    }
                    BlockKind::CentralDiagonal => {
                        let mut data = Vec::with_capacity(b * (b + 1) * (b + 2) / 6);
                        for li in 0..b {
                            for lj in 0..=li {
                                for lk in 0..=lj {
                                    data.push(tensor.get_sorted(gi + li, gi + lj, gi + lk));
                                }
                            }
                        }
                        data
                    }
                };
                OwnedBlock { idx, kind, data }
            })
            .collect();
        OwnedBlocks { blocks, b }
    }

    /// Builds processor `p`'s block *structure* with zeroed data — used by
    /// receivers of a tensor scatter, which fill the data in afterwards.
    /// The block order and per-block lengths are deterministic functions of
    /// the partition, so sender and receiver agree without metadata.
    pub fn extract_empty(part: &TetraPartition, p: usize) -> Self {
        let b = part.block_size();
        let blocks = part
            .owned_blocks(p)
            .into_iter()
            .map(|idx| {
                let kind = idx.kind();
                let len = crate::tetra::entries_in_block(kind, b);
                OwnedBlock { idx, kind, data: vec![0.0; len] }
            })
            .collect();
        OwnedBlocks { blocks, b }
    }

    /// Total stored words.
    pub fn words(&self) -> usize {
        self.blocks.iter().map(|blk| blk.data.len()).sum()
    }

    /// Runs the local STTSV kernels: `x_full` maps row-block index → the
    /// gathered full row block (length `b`); contributions accumulate into
    /// `y_acc` (same keying). Returns the ternary-multiplication count in
    /// the paper's model.
    ///
    /// `x_full`/`y_acc` are indexed by *position within `R_p`* via the
    /// `row_pos` lookup closure supplied by the caller.
    pub fn compute<F>(&self, x_full: &[Vec<f64>], y_acc: &mut [Vec<f64>], row_pos: F) -> u64
    where
        F: Fn(usize) -> usize,
    {
        let b = self.b;
        let mut ternary: u64 = 0;
        for blk in &self.blocks {
            ternary += compute_block(blk, b, x_full, y_acc, &row_pos);
        }
        ternary
    }

    /// Shared-memory parallel [`OwnedBlocks::compute`]: the rank's blocks
    /// are split into contiguous chunks executed across `pool`'s workers,
    /// each chunk accumulating into its own zeroed copy of `y_acc`; the
    /// partials are combined with the fixed pairwise
    /// [`symtensor_pool::tree_reduce`] and added into `y_acc`.
    ///
    /// The chunk decomposition and reduction tree depend only on the block
    /// list (never on the pool's thread count), so the result is
    /// **bit-identical across runs and thread counts**; it can differ from
    /// the sequential [`OwnedBlocks::compute`] only in floating-point
    /// summation order. The returned ternary count is exactly the
    /// sequential one.
    pub fn compute_par<F>(
        &self,
        x_full: &[Vec<f64>],
        y_acc: &mut [Vec<f64>],
        row_pos: F,
        pool: &symtensor_pool::Pool,
    ) -> u64
    where
        F: Fn(usize) -> usize + Sync,
    {
        /// Chunk-count cap: bounds the `chunks · |R_p| · b` words of
        /// accumulator allocation while still leaving plenty of stealable
        /// units for any realistic worker count.
        const MAX_COMPUTE_CHUNKS: usize = 32;
        if self.blocks.is_empty() {
            return 0;
        }
        let b = self.b;
        let chunks = self.blocks.len().min(MAX_COMPUTE_CHUNKS);
        let shape: Vec<usize> = y_acc.iter().map(|v| v.len()).collect();
        let partials = pool.run_chunks(chunks, |c| {
            let lo = c * self.blocks.len() / chunks;
            let hi = (c + 1) * self.blocks.len() / chunks;
            let mut local: Vec<Vec<f64>> = shape.iter().map(|&len| vec![0.0; len]).collect();
            let mut ternary = 0u64;
            for blk in &self.blocks[lo..hi] {
                ternary += compute_block(blk, b, x_full, &mut local, &row_pos);
            }
            (local, ternary)
        });
        let (partial_y, ternary) =
            symtensor_pool::tree_reduce(partials, |(mut ya, ta), (yb, tb)| {
                for (va, vb) in ya.iter_mut().zip(&yb) {
                    add_into(va, vb);
                }
                (ya, ta + tb)
            })
            .expect("at least one chunk");
        for (dst, src) in y_acc.iter_mut().zip(&partial_y) {
            add_into(dst, src);
        }
        ternary
    }
}

/// Dispatches one owned block to its kind-specific kernel.
fn compute_block<F>(
    blk: &OwnedBlock,
    b: usize,
    x_full: &[Vec<f64>],
    y_acc: &mut [Vec<f64>],
    row_pos: &F,
) -> u64
where
    F: Fn(usize) -> usize,
{
    match blk.kind {
        BlockKind::OffDiagonal => {
            let (pi, pj, pk) = (row_pos(blk.idx.i), row_pos(blk.idx.j), row_pos(blk.idx.k));
            off_diagonal_kernel(
                &blk.data,
                b,
                &x_full[pi],
                &x_full[pj],
                &x_full[pk],
                pi,
                pj,
                pk,
                y_acc,
            )
        }
        BlockKind::NonCentralIIK => {
            let (pi, pk) = (row_pos(blk.idx.i), row_pos(blk.idx.k));
            iik_kernel(&blk.data, b, pi, pk, x_full, y_acc)
        }
        BlockKind::NonCentralIKK => {
            let (pi, pk) = (row_pos(blk.idx.i), row_pos(blk.idx.k));
            ikk_kernel(&blk.data, b, pi, pk, x_full, y_acc)
        }
        BlockKind::CentralDiagonal => {
            let pi = row_pos(blk.idx.i);
            central_kernel(&blk.data, b, pi, x_full, y_acc)
        }
    }
}

/// Off-diagonal block: all global indices strictly ordered, so every element
/// performs the full 3-update with symmetry factor 2 (3 ternary mults in the
/// model). Restructured so the inner loop is contiguous over `lk`.
#[allow(clippy::too_many_arguments)]
fn off_diagonal_kernel(
    data: &[f64],
    b: usize,
    xi: &[f64],
    xj: &[f64],
    xk: &[f64],
    pi: usize,
    pj: usize,
    pk: usize,
    y_acc: &mut [Vec<f64>],
) -> u64 {
    // Accumulate yK into a local buffer to avoid re-borrowing y_acc per
    // element; yI/yJ row sums are accumulated scalar-wise.
    let mut yk_local = vec![0.0; b];
    let mut yi_local = vec![0.0; b];
    let mut yj_local = vec![0.0; b];
    for (li, &xia) in xi.iter().enumerate().take(b) {
        for (lj, &xjb) in xj.iter().enumerate().take(b) {
            let row = &data[(li * b + lj) * b..(li * b + lj) * b + b];
            let pref = 2.0 * xia * xjb;
            let mut dot_k = 0.0;
            for (lk, &v) in row.iter().enumerate() {
                yk_local[lk] += pref * v;
                dot_k += v * xk[lk];
            }
            yi_local[li] += 2.0 * dot_k * xjb;
            yj_local[lj] += 2.0 * dot_k * xia;
        }
    }
    add_into(&mut y_acc[pi], &yi_local);
    add_into(&mut y_acc[pj], &yj_local);
    add_into(&mut y_acc[pk], &yk_local);
    3 * (b as u64).pow(3)
}

/// Non-central (I, I, K): elements `(gi+li, gi+lj, gk+lk)` with `li ≥ lj`.
fn iik_kernel(
    data: &[f64],
    b: usize,
    pi: usize,
    pk: usize,
    x_full: &[Vec<f64>],
    y_acc: &mut [Vec<f64>],
) -> u64 {
    let mut yi_local = vec![0.0; b];
    let mut yk_local = vec![0.0; b];
    let xi = &x_full[pi];
    let xk = &x_full[pk];
    let mut ternary = 0u64;
    let mut pos = 0;
    for li in 0..b {
        for lj in 0..=li {
            let row = &data[pos..pos + b];
            pos += b;
            if li != lj {
                // Global i > j > k: full 3-update.
                let pref = 2.0 * xi[li] * xi[lj];
                let mut dot_k = 0.0;
                for (lk, &v) in row.iter().enumerate() {
                    yk_local[lk] += pref * v;
                    dot_k += v * xk[lk];
                }
                yi_local[li] += 2.0 * dot_k * xi[lj];
                yi_local[lj] += 2.0 * dot_k * xi[li];
                ternary += 3 * b as u64;
            } else {
                // Global i == j > k: y_i += 2·a·x_i·x_k ; y_k += a·x_i².
                let sq = xi[li] * xi[li];
                let mut dot_k = 0.0;
                for (lk, &v) in row.iter().enumerate() {
                    yk_local[lk] += sq * v;
                    dot_k += v * xk[lk];
                }
                yi_local[li] += 2.0 * dot_k * xi[li];
                ternary += 2 * b as u64;
            }
        }
    }
    add_into(&mut y_acc[pi], &yi_local);
    add_into(&mut y_acc[pk], &yk_local);
    ternary
}

/// Non-central (I, K, K): elements `(gi+li, gk+lj, gk+lk)` with `lj ≥ lk`.
fn ikk_kernel(
    data: &[f64],
    b: usize,
    pi: usize,
    pk: usize,
    x_full: &[Vec<f64>],
    y_acc: &mut [Vec<f64>],
) -> u64 {
    let tri_len = b * (b + 1) / 2;
    let mut yi_local = vec![0.0; b];
    let mut yk_local = vec![0.0; b];
    let xi = &x_full[pi];
    let xk = &x_full[pk];
    let mut ternary = 0u64;
    for li in 0..b {
        let slab = &data[li * tri_len..(li + 1) * tri_len];
        let xia = xi[li];
        let mut pos = 0;
        for lj in 0..b {
            for lk in 0..=lj {
                let v = slab[pos];
                pos += 1;
                if lj != lk {
                    // Global i > j > k.
                    yi_local[li] += 2.0 * v * xk[lj] * xk[lk];
                    yk_local[lj] += 2.0 * v * xia * xk[lk];
                    yk_local[lk] += 2.0 * v * xia * xk[lj];
                    ternary += 3;
                } else {
                    // Global i > j == k: y_i += a·x_k² ; y_k += 2·a·x_i·x_k.
                    yi_local[li] += v * xk[lj] * xk[lj];
                    yk_local[lj] += 2.0 * v * xia * xk[lj];
                    ternary += 2;
                }
            }
        }
    }
    add_into(&mut y_acc[pi], &yi_local);
    add_into(&mut y_acc[pk], &yk_local);
    ternary
}

/// Central (I, I, I): the full Algorithm 4 case analysis inside one block.
fn central_kernel(
    data: &[f64],
    b: usize,
    pi: usize,
    x_full: &[Vec<f64>],
    y_acc: &mut [Vec<f64>],
) -> u64 {
    let mut yi_local = vec![0.0; b];
    let xi = &x_full[pi];
    let mut ternary = 0u64;
    for li in 0..b {
        for lj in 0..=li {
            for lk in 0..=lj {
                let v = data[tet_idx(li, lj, lk)];
                if li != lj && lj != lk {
                    yi_local[li] += 2.0 * v * xi[lj] * xi[lk];
                    yi_local[lj] += 2.0 * v * xi[li] * xi[lk];
                    yi_local[lk] += 2.0 * v * xi[li] * xi[lj];
                    ternary += 3;
                } else if li == lj && lj != lk {
                    yi_local[li] += 2.0 * v * xi[lj] * xi[lk];
                    yi_local[lk] += v * xi[li] * xi[lj];
                    ternary += 2;
                } else if li != lj && lj == lk {
                    yi_local[li] += v * xi[lj] * xi[lk];
                    yi_local[lj] += 2.0 * v * xi[li] * xi[lk];
                    ternary += 2;
                } else {
                    yi_local[li] += v * xi[lj] * xi[lk];
                    ternary += 1;
                }
            }
        }
    }
    add_into(&mut y_acc[pi], &yi_local);
    ternary
}

#[inline]
fn add_into(dst: &mut [f64], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tetra::ternary_mults_in_block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::generate::random_symmetric;
    use symtensor_core::seq::sttsv_sym;
    use symtensor_steiner::{spherical, sqs8};

    /// Reference: run every rank's kernels serially and assemble the global
    /// y; must equal sequential Algorithm 4.
    fn run_all_ranks(part: &TetraPartition, tensor: &SymTensor3, x: &[f64]) -> (Vec<f64>, u64) {
        let n = part.dim();
        let b = part.block_size();
        let mut y = vec![0.0; n];
        let mut total_ternary = 0;
        for p in 0..part.num_procs() {
            let owned = OwnedBlocks::extract(tensor, part, p);
            let rp = part.r_set(p);
            let x_full: Vec<Vec<f64>> =
                rp.iter().map(|&i| x[part.block_range(i)].to_vec()).collect();
            let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            let pos = |i: usize| rp.binary_search(&i).unwrap();
            total_ternary += owned.compute(&x_full, &mut y_acc, pos);
            for (t, &i) in rp.iter().enumerate() {
                for (off, g) in part.block_range(i).enumerate() {
                    y[g] += y_acc[t][off];
                }
            }
        }
        (y, total_ternary)
    }

    #[test]
    fn kernels_reproduce_sequential_sttsv_q2() {
        let mut rng = StdRng::seed_from_u64(71);
        let part = TetraPartition::new(spherical(2), 20).unwrap();
        let tensor = random_symmetric(20, &mut rng);
        let x: Vec<f64> = (0..20).map(|i| ((i + 1) as f64 * 0.31).sin()).collect();
        let (y_par, ternary) = run_all_ranks(&part, &tensor, &x);
        let (y_seq, ops) = sttsv_sym(&tensor, &x);
        for i in 0..20 {
            assert!((y_par[i] - y_seq[i]).abs() < 1e-10, "y[{i}]: {} vs {}", y_par[i], y_seq[i]);
        }
        assert_eq!(ternary, ops.ternary_mults);
    }

    #[test]
    fn kernels_reproduce_sequential_sttsv_q3() {
        let mut rng = StdRng::seed_from_u64(72);
        let n = 40; // b = 4.
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        let (y_par, ternary) = run_all_ranks(&part, &tensor, &x);
        let (y_seq, ops) = sttsv_sym(&tensor, &x);
        for i in 0..n {
            assert!((y_par[i] - y_seq[i]).abs() < 1e-9, "y[{i}]");
        }
        assert_eq!(ternary, ops.ternary_mults);
    }

    #[test]
    fn kernels_reproduce_sequential_sttsv_sqs8() {
        let mut rng = StdRng::seed_from_u64(73);
        let n = 24; // m = 8, b = 3.
        let part = TetraPartition::new(sqs8(), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 2) as f64).collect();
        let (y_par, _) = run_all_ranks(&part, &tensor, &x);
        let (y_seq, _) = sttsv_sym(&tensor, &x);
        for i in 0..n {
            assert!((y_par[i] - y_seq[i]).abs() < 1e-10, "y[{i}]");
        }
    }

    #[test]
    fn per_block_ternary_counts_match_formulas() {
        let mut rng = StdRng::seed_from_u64(74);
        let n = 30; // q = 2, b = 6.
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let b = part.block_size();
        let x = vec![1.0; n];
        for p in 0..part.num_procs() {
            let owned = OwnedBlocks::extract(&tensor, &part, p);
            let rp = part.r_set(p);
            let x_full: Vec<Vec<f64>> =
                rp.iter().map(|&i| x[part.block_range(i)].to_vec()).collect();
            let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            let pos = |i: usize| rp.binary_search(&i).unwrap();
            let measured = owned.compute(&x_full, &mut y_acc, pos);
            let formula: u64 =
                part.owned_blocks(p).iter().map(|blk| ternary_mults_in_block(blk.kind(), b)).sum();
            assert_eq!(measured, formula, "processor {p}");
            assert_eq!(measured, part.ternary_mults(p));
        }
    }

    #[test]
    fn compute_par_matches_compute_and_is_thread_count_invariant() {
        use symtensor_pool::Pool;
        let mut rng = StdRng::seed_from_u64(76);
        let n = 40; // q = 3, b = 4: every block kind occurs.
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let b = part.block_size();
        let x: Vec<f64> = (0..n).map(|i| ((i + 2) as f64 * 0.23).sin()).collect();
        for p in (0..part.num_procs()).step_by(7) {
            let owned = OwnedBlocks::extract(&tensor, &part, p);
            let rp = part.r_set(p);
            let x_full: Vec<Vec<f64>> =
                rp.iter().map(|&i| x[part.block_range(i)].to_vec()).collect();
            let pos = |i: usize| rp.binary_search(&i).unwrap();

            let mut y_seq: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            let t_seq = owned.compute(&x_full, &mut y_seq, pos);

            let mut reference: Option<Vec<Vec<f64>>> = None;
            for threads in [1usize, 2, 3, 8] {
                let pool = Pool::new(threads);
                let mut y_par: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
                let t_par = owned.compute_par(&x_full, &mut y_par, pos, &pool);
                assert_eq!(t_par, t_seq, "rank {p} threads={threads}: ternary count");
                for (t, (vp, vs)) in y_par.iter().zip(&y_seq).enumerate() {
                    for (o, (&a, &c)) in vp.iter().zip(vs).enumerate() {
                        assert!(
                            (a - c).abs() <= 1e-12 * (1.0 + c.abs()),
                            "rank {p} threads={threads} y[{t}][{o}]"
                        );
                    }
                }
                match &reference {
                    None => reference = Some(y_par),
                    Some(r) => assert_eq!(
                        &y_par, r,
                        "rank {p} threads={threads}: must be bit-identical across thread counts"
                    ),
                }
            }
        }
    }

    #[test]
    fn extraction_word_counts_match_partition() {
        let mut rng = StdRng::seed_from_u64(75);
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        for p in 0..part.num_procs() {
            let owned = OwnedBlocks::extract(&tensor, &part, p);
            assert_eq!(owned.words(), part.tensor_words(p));
        }
    }
}
