//! Baseline parallel STTSV algorithms for the comparison experiments.
//!
//! * [`sttsv_1d`] — 1-D row partition ignoring symmetry: processor `p` owns
//!   the rows `i` of a contiguous chunk, all-gathers the whole of `x`
//!   (≈ `n` words) and computes its `y` rows locally with `n²·(n/P)`
//!   ternary multiplications. Simple, but its communication does not shrink
//!   with `P` and it does twice the symmetric algorithm's work.
//! * [`sttsv_3d`] — 3-D cubic partition of the **dense** (non-symmetric)
//!   iteration space on a `g×g×g` grid (`P = g³`), the classical
//!   Loomis–Whitney-style algorithm: gathers two fiber chunks of `x` and
//!   reduce-scatters partial `y` within planes, ≈ `3n/g = 3n/P^{1/3}` words
//!   — asymptotically optimal scaling but 1.5× the symmetric lower bound's
//!   leading term and 2× the ternary multiplications.
//!
//! Both run on the same simulated machine with the same counters, so the
//! benches can put them on one axis with Algorithm 5.

use symtensor_core::SymTensor3;
use symtensor_mpsim::{CostReport, Universe};

use crate::algorithm5::SttsvRun;

const TAG_X2: u64 = 11 << 40;
const TAG_X3: u64 = 12 << 40;
const TAG_Y: u64 = 13 << 40;

/// Contiguous near-even chunking of `0..total` into `parts` pieces.
#[inline]
pub fn chunk_bounds(total: usize, parts: usize, idx: usize) -> std::ops::Range<usize> {
    (idx * total) / parts..((idx + 1) * total) / parts
}

/// 1-D row-partitioned STTSV: all-gather `x`, compute owned rows.
pub fn sttsv_1d(tensor: &SymTensor3, x: &[f64], p_count: usize) -> SttsvRun {
    let n = tensor.dim();
    assert_eq!(x.len(), n);
    let (rank_results, report): (Vec<(Vec<f64>, u64)>, CostReport) =
        Universe::new(p_count).run(|comm| {
            let p = comm.rank();
            let my_rows = chunk_bounds(n, p_count, p);
            // Gather the full x from per-rank chunks (ring all-gather).
            let x_full = comm.with_phase("gather-x", || {
                let local = x[chunk_bounds(n, p_count, p)].to_vec();
                let pieces = comm.all_gather(local).expect("all_gather failed");
                let mut x_full = Vec::with_capacity(n);
                for piece in pieces {
                    x_full.extend_from_slice(&piece);
                }
                x_full
            });
            // Compute owned rows without exploiting symmetry (the tensor is
            // read through the packed store, but every (j,k) is visited).
            comm.with_phase("local-compute", || {
                let mut y_rows = Vec::with_capacity(my_rows.len());
                let mut ternary = 0u64;
                for i in my_rows.clone() {
                    let mut acc = 0.0;
                    for (j, &xj) in x_full.iter().enumerate() {
                        for (k, &xk) in x_full.iter().enumerate() {
                            acc += tensor.get(i, j, k) * xj * xk;
                        }
                    }
                    ternary += (n * n) as u64;
                    y_rows.push(acc);
                }
                (y_rows, ternary)
            })
        });

    let mut y = vec![0.0; n];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (rows, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        y[chunk_bounds(n, p_count, p)].copy_from_slice(&rows);
    }
    SttsvRun { y, report, ternary_per_rank }
}

/// 3-D cubic STTSV on a `g×g×g` processor grid over the dense iteration
/// space (no symmetry). Rank `(I, J, K)` (row-major id) owns the cube
/// `Irange × Jrange × Krange`; `x` is owned in pieces within each mode-2
/// chunk (piece `I·g + K` of chunk `J`), and `y` in pieces within each
/// mode-1 chunk (piece `J·g + K` of chunk `I`).
pub fn sttsv_3d(tensor: &SymTensor3, x: &[f64], g: usize) -> SttsvRun {
    let n = tensor.dim();
    assert_eq!(x.len(), n);
    assert!(g >= 1);
    let p_count = g * g * g;
    let coords = |r: usize| (r / (g * g), (r / g) % g, r % g);
    let rank_of = |i: usize, j: usize, k: usize| (i * g + j) * g + k;

    let (rank_results, report): (Vec<(Vec<f64>, u64)>, CostReport) =
        Universe::new(p_count).run(|comm| {
            let (ci, cj, ck) = coords(comm.rank());
            let irange = chunk_bounds(n, g, ci);
            let jrange = chunk_bounds(n, g, cj);
            let krange = chunk_bounds(n, g, ck);

            // --- Gather x[jrange]: owners are the ranks (a, cj, c); my own
            // piece is (ci·g + ck). Also everyone with K-coordinate = cj
            // needs chunk cj for mode 3; I send my piece to them.
            let (x2, x3) = comm.with_phase("gather-x", || {
                let chunk_len = jrange.len();
                let my_piece_range = {
                    let local = chunk_bounds(chunk_len, g * g, ci * g + ck);
                    jrange.start + local.start..jrange.start + local.end
                };
                let my_piece = x[my_piece_range.clone()].to_vec();
                // Send my piece to the other owners of chunk cj (mode-2 users)…
                for a in 0..g {
                    for c in 0..g {
                        let dst = rank_of(a, cj, c);
                        if dst != comm.rank() {
                            comm.send(dst, TAG_X2, my_piece.clone());
                        }
                    }
                }
                // …and to every rank whose mode-3 chunk is cj.
                for a in 0..g {
                    for bcoord in 0..g {
                        let dst = rank_of(a, bcoord, cj);
                        if dst != comm.rank() {
                            comm.send(dst, TAG_X3, my_piece.clone());
                        }
                    }
                }
                // Receive chunk cj (mode 2) from its owners.
                let mut x2 = vec![0.0; jrange.len()];
                {
                    let local = chunk_bounds(chunk_len, g * g, ci * g + ck);
                    x2[local].copy_from_slice(&my_piece);
                }
                for a in 0..g {
                    for c in 0..g {
                        let src = rank_of(a, cj, c);
                        if src != comm.rank() {
                            let piece = comm.recv(src, TAG_X2).expect("x2 gather failed");
                            let local = chunk_bounds(chunk_len, g * g, a * g + c);
                            x2[local].copy_from_slice(&piece);
                        }
                    }
                }
                // Receive chunk ck (mode 3) from its owners (ranks (a, ck, c)).
                let klen = krange.len();
                let mut x3 = vec![0.0; klen];
                for a in 0..g {
                    for c in 0..g {
                        let src = rank_of(a, ck, c);
                        if src == comm.rank() {
                            // Only possible when cj == ck: reuse my own piece.
                            let local = chunk_bounds(klen, g * g, a * g + c);
                            x3[local].copy_from_slice(&my_piece);
                        } else {
                            let piece = comm.recv(src, TAG_X3).expect("x3 gather failed");
                            let local = chunk_bounds(klen, g * g, a * g + c);
                            x3[local].copy_from_slice(&piece);
                        }
                    }
                }
                (x2, x3)
            });

            // --- Local compute over the dense cube.
            let (y_partial, ternary) = comm.with_phase("local-compute", || {
                let mut y_partial = vec![0.0; irange.len()];
                let mut ternary = 0u64;
                for (li, i) in irange.clone().enumerate() {
                    let mut acc = 0.0;
                    for (lj, j) in jrange.clone().enumerate() {
                        let xj = x2[lj];
                        for (lk, k) in krange.clone().enumerate() {
                            acc += tensor.get(i, j, k) * xj * x3[lk];
                        }
                    }
                    ternary += (jrange.len() * krange.len()) as u64;
                    y_partial[li] = acc;
                }
                (y_partial, ternary)
            });

            // --- Reduce y within the plane sharing I: owners of chunk ci's
            // pieces are ranks (ci, a, c) with piece a·g + c.
            let y_mine = comm.with_phase("reduce-y", || {
                let ilen = irange.len();
                for a in 0..g {
                    for c in 0..g {
                        let dst = rank_of(ci, a, c);
                        if dst != comm.rank() {
                            let local = chunk_bounds(ilen, g * g, a * g + c);
                            comm.send(dst, TAG_Y, y_partial[local].to_vec());
                        }
                    }
                }
                let my_y_local = chunk_bounds(ilen, g * g, cj * g + ck);
                let mut y_mine = y_partial[my_y_local].to_vec();
                for a in 0..g {
                    for c in 0..g {
                        let src = rank_of(ci, a, c);
                        if src != comm.rank() {
                            let piece = comm.recv(src, TAG_Y).expect("y reduce failed");
                            for (acc, &v) in y_mine.iter_mut().zip(&piece) {
                                *acc += v;
                            }
                        }
                    }
                }
                y_mine
            });
            (y_mine, ternary)
        });

    let mut y = vec![0.0; n];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (r, (piece, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        let (ci, cj, ck) = coords(r);
        let irange = chunk_bounds(n, g, ci);
        let local = chunk_bounds(irange.len(), g * g, cj * g + ck);
        y[irange.start + local.start..irange.start + local.end].copy_from_slice(&piece);
    }
    SttsvRun { y, report, ternary_per_rank }
}

/// Cost model for the 1-D baseline: words received per rank (ring
/// all-gather): `n − n/P`.
pub fn baseline_1d_words(n: usize, p: usize) -> f64 {
    n as f64 * (1.0 - 1.0 / p as f64)
}

/// Cost model for the 3-D baseline: ≈ `3n/g` words per rank (two `x` fiber
/// gathers plus the `y` plane reduce).
pub fn baseline_3d_words(n: usize, g: usize) -> f64 {
    let p = (g * g * g) as f64;
    3.0 * (n as f64 / g as f64) - 3.0 * n as f64 / p
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::generate::random_symmetric;
    use symtensor_core::seq::sttsv_sym;

    fn check(n: usize, run: &SttsvRun, tensor: &SymTensor3, x: &[f64]) {
        let (y_seq, _) = sttsv_sym(tensor, x);
        for i in 0..n {
            assert!(
                (run.y[i] - y_seq[i]).abs() < 1e-9 * (1.0 + y_seq[i].abs()),
                "y[{i}]: {} vs {}",
                run.y[i],
                y_seq[i]
            );
        }
    }

    #[test]
    fn one_d_matches_sequential() {
        let n = 24;
        let mut rng = StdRng::seed_from_u64(81);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        for p in [1usize, 3, 5, 8] {
            let run = sttsv_1d(&tensor, &x, p);
            check(n, &run, &tensor, &x);
        }
    }

    #[test]
    fn one_d_words_match_model() {
        let n = 24;
        let mut rng = StdRng::seed_from_u64(82);
        let tensor = random_symmetric(n, &mut rng);
        let x = vec![1.0; n];
        let p = 4;
        let run = sttsv_1d(&tensor, &x, p);
        for cost in &run.report.per_rank {
            assert_eq!(cost.words_recv, (n - n / p) as u64);
        }
    }

    #[test]
    fn three_d_matches_sequential() {
        let n = 18;
        let mut rng = StdRng::seed_from_u64(83);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| 0.5 - (i as f64 * 0.21).cos()).collect();
        for g in [1usize, 2, 3] {
            let run = sttsv_3d(&tensor, &x, g);
            check(n, &run, &tensor, &x);
        }
    }

    #[test]
    fn three_d_word_counts_near_model() {
        let n = 32;
        let g = 2;
        let mut rng = StdRng::seed_from_u64(84);
        let tensor = random_symmetric(n, &mut rng);
        let x = vec![0.5; n];
        let run = sttsv_3d(&tensor, &x, g);
        let model = baseline_3d_words(n, g);
        let max_recv = run.report.max_words_recv() as f64;
        assert!((max_recv - model).abs() / model < 0.25, "measured {max_recv} vs model {model}");
    }

    #[test]
    fn baselines_do_more_ternary_work_than_symmetric() {
        // Both baselines perform ~n³ total ternary mults vs n²(n+1)/2.
        let n = 16;
        let mut rng = StdRng::seed_from_u64(85);
        let tensor = random_symmetric(n, &mut rng);
        let x = vec![1.0; n];
        let run1 = sttsv_1d(&tensor, &x, 4);
        let total_1d: u64 = run1.ternary_per_rank.iter().sum();
        assert_eq!(total_1d, (n * n * n) as u64);
        let run3 = sttsv_3d(&tensor, &x, 2);
        let total_3d: u64 = run3.ternary_per_rank.iter().sum();
        assert_eq!(total_3d, (n * n * n) as u64);
    }
}
