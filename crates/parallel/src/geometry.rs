//! Executable versions of the paper's Section 4 geometric results.
//!
//! * Lemma 4.1 (discrete Loomis–Whitney, from Ballard et al. 2018): for a
//!   finite `V ⊂ ℤ³`, `|V| ≤ |φ_i(V)|·|φ_j(V)|·|φ_k(V)|` where `φ_*` are
//!   the axis projections.
//! * Lemma 4.2 (the paper's new symmetric inequality): if `V` lies in the
//!   strict lower tetrahedron `{i > j > k}`, then
//!   `6|V| ≤ |φ_i(V) ∪ φ_j(V) ∪ φ_k(V)|³`.
//!
//! These functions compute both sides exactly so property tests can check
//! the inequalities on arbitrary point sets, and the tightness analysis
//! (tetrahedral blocks achieve the bound up to lower-order terms) can be
//! demonstrated numerically. The maximum-reuse consequence the paper draws
//! — a set of `s` indices supports at most `s³/6` strict-lower-tetrahedron
//! points — is [`max_reuse_points`].

use std::collections::BTreeSet;

/// A finite set of integer lattice points in `ℤ³`.
pub type PointSet = BTreeSet<(i64, i64, i64)>;

/// The three axis projections `(φ_i, φ_j, φ_k)` of a point set.
pub fn projections(v: &PointSet) -> (BTreeSet<i64>, BTreeSet<i64>, BTreeSet<i64>) {
    let mut pi = BTreeSet::new();
    let mut pj = BTreeSet::new();
    let mut pk = BTreeSet::new();
    for &(i, j, k) in v {
        pi.insert(i);
        pj.insert(j);
        pk.insert(k);
    }
    (pi, pj, pk)
}

/// Left- and right-hand sides of Lemma 4.1:
/// `(|V|, |φ_i|·|φ_j|·|φ_k|)`.
pub fn loomis_whitney_sides(v: &PointSet) -> (usize, usize) {
    let (pi, pj, pk) = projections(v);
    (v.len(), pi.len() * pj.len() * pk.len())
}

/// Checks Lemma 4.1.
pub fn loomis_whitney_holds(v: &PointSet) -> bool {
    let (lhs, rhs) = loomis_whitney_sides(v);
    lhs <= rhs
}

/// True if every point satisfies `i > j > k`.
pub fn is_strictly_sorted(v: &PointSet) -> bool {
    v.iter().all(|&(i, j, k)| i > j && j > k)
}

/// Left- and right-hand sides of Lemma 4.2: `(6|V|, |φ_i ∪ φ_j ∪ φ_k|³)`.
///
/// # Panics
/// Panics if `V` is not contained in the strict lower tetrahedron.
pub fn symmetric_inequality_sides(v: &PointSet) -> (usize, usize) {
    assert!(is_strictly_sorted(v), "Lemma 4.2 needs V ⊆ {{i > j > k}}");
    let (pi, pj, pk) = projections(v);
    let union: BTreeSet<i64> =
        pi.union(&pj).cloned().collect::<BTreeSet<_>>().union(&pk).cloned().collect();
    (6 * v.len(), union.len().pow(3))
}

/// Checks Lemma 4.2.
pub fn symmetric_inequality_holds(v: &PointSet) -> bool {
    let (lhs, rhs) = symmetric_inequality_sides(v);
    lhs <= rhs
}

/// The symmetrization `Ṽ` used in the paper's proof: all 6 coordinate
/// permutations of each point of `V`.
pub fn symmetrize(v: &PointSet) -> PointSet {
    let mut out = PointSet::new();
    for &(i, j, k) in v {
        out.insert((i, j, k));
        out.insert((i, k, j));
        out.insert((j, i, k));
        out.insert((j, k, i));
        out.insert((k, i, j));
        out.insert((k, j, i));
    }
    out
}

/// Maximum number of strict-lower-tetrahedron points a set of `s` distinct
/// indices can support: `C(s, 3) = s(s−1)(s−2)/6 ≤ s³/6` — the "maximum
/// reuse" consequence of Lemma 4.2 that drives the lower bound.
pub fn max_reuse_points(s: usize) -> usize {
    if s < 3 {
        0
    } else {
        s * (s - 1) * (s - 2) / 6
    }
}

/// The extremal set for Lemma 4.2: the full strict lower tetrahedron over
/// the index set `0..s` (a tetrahedral block `TB₃({0..s})` in the paper's
/// terms).
pub fn tetrahedral_extremal(s: usize) -> PointSet {
    let mut v = PointSet::new();
    for i in 0..s as i64 {
        for j in 0..i {
            for k in 0..j {
                v.insert((i, j, k));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_points(seed: u64, count: usize, range: i64, strict: bool) -> PointSet {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64).rem_euclid(range)
        };
        let mut v = PointSet::new();
        while v.len() < count {
            let (a, b, c) = (next(), next(), next());
            if strict {
                if a > b && b > c {
                    v.insert((a, b, c));
                }
            } else {
                v.insert((a, b, c));
            }
        }
        v
    }

    #[test]
    fn loomis_whitney_on_random_sets() {
        for seed in 0..50 {
            let v = lcg_points(seed, 10 + (seed as usize % 40), 12, false);
            assert!(loomis_whitney_holds(&v), "seed {seed}");
        }
    }

    #[test]
    fn loomis_whitney_tight_on_boxes() {
        // A full a×b×c box attains equality.
        let mut v = PointSet::new();
        for i in 0..3i64 {
            for j in 0..4i64 {
                for k in 0..5i64 {
                    v.insert((i, j, k));
                }
            }
        }
        let (lhs, rhs) = loomis_whitney_sides(&v);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn symmetric_inequality_on_random_strict_sets() {
        for seed in 0..50 {
            let v = lcg_points(1000 + seed, 5 + (seed as usize % 30), 15, true);
            assert!(symmetric_inequality_holds(&v), "seed {seed}");
        }
    }

    #[test]
    fn symmetric_inequality_near_tight_on_tetrahedral_blocks() {
        // For V = TB₃({0..s}): 6|V| = s(s−1)(s−2) vs s³ — ratio → 1.
        for s in [4usize, 8, 16, 32, 64] {
            let v = tetrahedral_extremal(s);
            let (lhs, rhs) = symmetric_inequality_sides(&v);
            assert!(lhs <= rhs);
            let ratio = lhs as f64 / rhs as f64;
            assert!(ratio > 1.0 - 3.2 / s as f64, "s={s}: ratio {ratio}");
        }
    }

    #[test]
    fn symmetrization_has_6x_size_and_shared_projections() {
        // The two facts the paper's proof of Lemma 4.2 establishes:
        // |Ṽ| = 6|V| and φ_i(Ṽ) = φ_j(Ṽ) = φ_k(Ṽ) = φ_i(V) ∪ φ_j(V) ∪ φ_k(V).
        for seed in 0..20 {
            let v = lcg_points(2000 + seed, 12, 10, true);
            let sym = symmetrize(&v);
            assert_eq!(sym.len(), 6 * v.len(), "seed {seed}");
            let (pi, pj, pk) = projections(&sym);
            assert_eq!(pi, pj);
            assert_eq!(pj, pk);
            let (qi, qj, qk) = projections(&v);
            let union: BTreeSet<i64> =
                qi.union(&qj).cloned().collect::<BTreeSet<_>>().union(&qk).cloned().collect();
            assert_eq!(pi, union);
        }
    }

    #[test]
    fn symmetrization_proof_chain() {
        // Lemma 4.1 applied to Ṽ yields Lemma 4.2 for V — replay the proof
        // numerically.
        for seed in 0..20 {
            let v = lcg_points(3000 + seed, 8, 9, true);
            let sym = symmetrize(&v);
            let (lhs_lw, rhs_lw) = loomis_whitney_sides(&sym);
            assert!(lhs_lw <= rhs_lw);
            let (lhs_sym, rhs_sym) = symmetric_inequality_sides(&v);
            assert_eq!(lhs_sym, lhs_lw);
            assert_eq!(rhs_sym, rhs_lw);
        }
    }

    #[test]
    fn max_reuse_matches_extremal_sets() {
        for s in 0..20 {
            assert_eq!(tetrahedral_extremal(s).len(), max_reuse_points(s));
        }
    }

    #[test]
    #[should_panic(expected = "i > j > k")]
    fn symmetric_inequality_rejects_unsorted_sets() {
        let mut v = PointSet::new();
        v.insert((1, 2, 3));
        symmetric_inequality_sides(&v);
    }

    #[test]
    fn empty_and_singleton_sets() {
        let empty = PointSet::new();
        assert!(loomis_whitney_holds(&empty));
        assert!(symmetric_inequality_holds(&empty));
        let mut single = PointSet::new();
        single.insert((5, 3, 1));
        assert!(symmetric_inequality_holds(&single));
        // 6·1 ≤ 3³.
        assert_eq!(symmetric_inequality_sides(&single), (6, 27));
    }
}
