//! Point-to-point communication schedules (Section 7.2 / Figure 1).
//!
//! Two processors must exchange vector data iff their Steiner blocks
//! intersect; the intersection has size 1 or 2 (three shared points would
//! force equal blocks). The paper observes that the directed "sharing"
//! graph splits into a `d₂`-regular subgraph of pairs sharing **two** row
//! blocks and a `d₁`-regular subgraph of pairs sharing **one**, with
//!
//! * `d₂ = C(r,2)·(λ₂ − 1)`  (spherical family: `q²(q+1)/2`),
//! * `d₁ = r·(λ₁ − 1) − 2·d₂` (spherical family: `q² − 1`),
//!
//! so by Lemma 7.1 / Theorem 7.2 all exchanges fit in `d₁ + d₂` rounds
//! (spherical: `q³/2 + 3q²/2 − 1`, e.g. 12 rounds for the `P = 14` system
//! of Figure 1) in which every processor sends one message and receives one
//! message. We build the rounds by edge-coloring each regular subgraph.

use crate::partition::TetraPartition;
use symtensor_matching::edge_color_regular;

/// What one rank does in one communication round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundAction {
    /// Peer to send this rank's shards to.
    pub send_to: Option<usize>,
    /// Peer to receive shards from.
    pub recv_from: Option<usize>,
}

/// A complete schedule: `rounds[r]` is a set of directed `(sender,
/// receiver)` pairs in which each rank appears at most once per role.
#[derive(Clone, Debug)]
pub struct CommSchedule {
    rounds: Vec<Vec<(usize, usize)>>,
    /// `actions[rank][round]`.
    actions: Vec<Vec<RoundAction>>,
}

impl CommSchedule {
    /// Builds the schedule for a partition by edge-coloring the share-2 and
    /// share-1 subgraphs.
    pub fn build(part: &TetraPartition) -> Self {
        let p_count = part.num_procs();
        let mut edges_share1 = Vec::new();
        let mut edges_share2 = Vec::new();
        for a in 0..p_count {
            for b in 0..p_count {
                if a == b {
                    continue;
                }
                match shared_row_blocks(part, a, b).len() {
                    0 => {}
                    1 => edges_share1.push((a, b)),
                    2 => edges_share2.push((a, b)),
                    s => unreachable!("blocks share {s} > 2 points — not a Steiner system"),
                }
            }
        }
        let mut rounds: Vec<Vec<(usize, usize)>> = Vec::new();
        for edges in [&edges_share2, &edges_share1] {
            if edges.is_empty() {
                continue;
            }
            for round in edge_color_regular(p_count, edges) {
                rounds.push(round.into_iter().map(|ei| edges[ei]).collect());
            }
        }

        let mut actions = vec![vec![RoundAction::default(); rounds.len()]; p_count];
        for (r, round) in rounds.iter().enumerate() {
            for &(src, dst) in round {
                debug_assert!(actions[src][r].send_to.is_none());
                debug_assert!(actions[dst][r].recv_from.is_none());
                actions[src][r].send_to = Some(dst);
                actions[dst][r].recv_from = Some(src);
            }
        }
        CommSchedule { rounds, actions }
    }

    /// Number of rounds (the paper's step count).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The directed pairs of round `r`.
    pub fn round(&self, r: usize) -> &[(usize, usize)] {
        &self.rounds[r]
    }

    /// All rounds.
    pub fn rounds(&self) -> &[Vec<(usize, usize)>] {
        &self.rounds
    }

    /// Per-round actions for one rank.
    pub fn actions(&self, rank: usize) -> &[RoundAction] {
        &self.actions[rank]
    }

    /// Planned per-round occupancy: `(senders, receivers)` counts for each
    /// round. By Lemma 7.1 both are `≤ P` with equality exactly when a
    /// round is a perfect pairing; the runtime-observed occupancy (built by
    /// `symtensor-obs` from round-annotated traces) must match this plan
    /// exactly in scheduled mode.
    pub fn planned_occupancy(&self) -> Vec<(usize, usize)> {
        self.rounds
            .iter()
            .map(|round| {
                // Each rank appears at most once per role, so the pair
                // count *is* the distinct sender/receiver count.
                (round.len(), round.len())
            })
            .collect()
    }

    /// Mean planned sender utilization: `avg_r(senders_r / P)` where `P` is
    /// inferred from `actions`.
    pub fn planned_utilization(&self) -> f64 {
        if self.rounds.is_empty() || self.actions.is_empty() {
            return 0.0;
        }
        let total: usize = self.rounds.iter().map(Vec::len).sum();
        total as f64 / (self.rounds.len() * self.actions.len()) as f64
    }
}

/// Row blocks shared by processors `a` and `b`: `R_a ∩ R_b` (sorted).
pub fn shared_row_blocks(part: &TetraPartition, a: usize, b: usize) -> Vec<usize> {
    let ra = part.r_set(a);
    let rb = part.r_set(b);
    ra.iter().copied().filter(|i| rb.binary_search(i).is_ok()).collect()
}

/// Closed-form round count for the spherical family:
/// `q³/2 + 3q²/2 − 1` (Section 7.2.2).
pub fn spherical_round_count(q: usize) -> usize {
    // q²(q+3) is always even, so this is exact integer arithmetic.
    q * q * (q + 3) / 2 - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_steiner::{spherical, sqs8};

    fn check_schedule(part: &TetraPartition, schedule: &CommSchedule) {
        let p_count = part.num_procs();
        // Every round: each rank sends ≤ 1 and receives ≤ 1.
        for round in schedule.rounds() {
            let mut senders = vec![false; p_count];
            let mut receivers = vec![false; p_count];
            for &(s, d) in round {
                assert!(!senders[s], "double send");
                assert!(!receivers[d], "double recv");
                senders[s] = true;
                receivers[d] = true;
            }
        }
        // Coverage: every ordered sharing pair appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for round in schedule.rounds() {
            for &e in round {
                assert!(seen.insert(e), "pair {e:?} scheduled twice");
            }
        }
        for a in 0..p_count {
            for b in 0..p_count {
                if a != b && !shared_row_blocks(part, a, b).is_empty() {
                    assert!(seen.contains(&(a, b)), "pair ({a},{b}) not scheduled");
                }
            }
        }
        assert_eq!(
            seen.len(),
            (0..p_count)
                .flat_map(|a| (0..p_count).map(move |b| (a, b)))
                .filter(|&(a, b)| a != b && !shared_row_blocks(part, a, b).is_empty())
                .count()
        );
    }

    #[test]
    fn sqs8_schedule_is_figure_1() {
        // P = 14: 12 rounds, strictly fewer than P − 1 = 13, every round a
        // perfect pairing (each rank both sends and receives).
        let part = TetraPartition::new(sqs8(), 56).unwrap();
        let schedule = CommSchedule::build(&part);
        assert_eq!(schedule.num_rounds(), 12);
        for round in schedule.rounds() {
            assert_eq!(round.len(), 14, "each round covers all processors");
        }
        check_schedule(&part, &schedule);
    }

    #[test]
    fn spherical_round_counts_match_formula() {
        for (q, n) in [(2usize, 30usize), (3, 120)] {
            let part = TetraPartition::new(spherical(q as u64), n).unwrap();
            let schedule = CommSchedule::build(&part);
            assert_eq!(schedule.num_rounds(), spherical_round_count(q), "q = {q}");
            check_schedule(&part, &schedule);
        }
    }

    #[test]
    fn sharing_sizes_match_section_7_2() {
        // q = 3: each processor shares 2 blocks with q²(q+1)/2 = 18 peers
        // and 1 block with q²−1 = 8 peers.
        let part = TetraPartition::new(spherical(3), 120).unwrap();
        for p in 0..30 {
            let mut two = 0;
            let mut one = 0;
            for other in 0..30 {
                if other == p {
                    continue;
                }
                match shared_row_blocks(&part, p, other).len() {
                    2 => two += 1,
                    1 => one += 1,
                    _ => {}
                }
            }
            assert_eq!(two, 18, "processor {p}");
            assert_eq!(one, 8, "processor {p}");
        }
    }

    #[test]
    fn paper_example_processor_1_and_26_disjoint() {
        // Section 7.2.2 observes processor 1 and 26 (1-based) share nothing
        // in Table 1. Our labels differ (isomorphic system), but disjoint
        // pairs must exist for q = 3: 30 − 1 − 18 − 8 = 3 of them per rank.
        let part = TetraPartition::new(spherical(3), 120).unwrap();
        for p in 0..30 {
            let disjoint =
                (0..30).filter(|&o| o != p && shared_row_blocks(&part, p, o).is_empty()).count();
            assert_eq!(disjoint, 3);
        }
    }

    #[test]
    fn planned_occupancy_matches_rounds() {
        let part = TetraPartition::new(sqs8(), 56).unwrap();
        let schedule = CommSchedule::build(&part);
        let occ = schedule.planned_occupancy();
        assert_eq!(occ.len(), schedule.num_rounds());
        // Figure 1's schedule: every round is a perfect pairing of P = 14.
        assert!(occ.iter().all(|&(s, r)| s == 14 && r == 14));
        assert!((schedule.planned_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_actions_are_consistent() {
        let part = TetraPartition::new(spherical(2), 30).unwrap();
        let schedule = CommSchedule::build(&part);
        for rank in 0..part.num_procs() {
            for (r, act) in schedule.actions(rank).iter().enumerate() {
                if let Some(dst) = act.send_to {
                    assert!(schedule.round(r).contains(&(rank, dst)));
                }
                if let Some(src) = act.recv_from {
                    assert!(schedule.round(r).contains(&(src, rank)));
                }
            }
        }
    }
}
