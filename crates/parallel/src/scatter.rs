//! One-time data distribution from a root rank.
//!
//! The paper's cost model assumes the computation *begins* with the tensor
//! already distributed in tetrahedral blocks and one copy of `x` sharded
//! (Theorem 5.2's starting condition). This module implements and prices
//! that setup step: rank 0 holds everything and ships each processor its
//! `TB₃(R_p) ∪ N_p ∪ D_p` blocks plus its vector shards. The cost is
//! `Θ(n³/6)` words at the root — amortized away over the many STTSV
//! invocations of HOPM/CP, which is exactly why the paper separates it
//! from the per-iteration analysis.

use crate::blocks::OwnedBlocks;
use crate::partition::TetraPartition;
use symtensor_core::SymTensor3;
use symtensor_mpsim::{CostReport, Universe};

const TAG_SCATTER_T: u64 = 21 << 40;
const TAG_SCATTER_X: u64 = 22 << 40;

/// Per-rank scatter result: the rank's tensor blocks and its `x` shards.
pub type ScatteredRank = (OwnedBlocks, Vec<Vec<f64>>);

/// Scatters the tensor blocks and `x` shards from rank 0; every rank ends
/// with its [`OwnedBlocks`] and shard vector. Returns the per-rank results
/// and the scatter's cost report.
pub fn scatter_from_root(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
) -> (Vec<ScatteredRank>, CostReport) {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x.len(), n);
    let p_count = part.num_procs();

    Universe::new(p_count).run(|comm| {
        comm.with_phase("scatter", || {
            let p = comm.rank();
            if p == 0 {
                // Root: extract and ship every other rank's data.
                for dst in 1..p_count {
                    let owned = OwnedBlocks::extract(tensor, part, dst);
                    // Ship all blocks as one concatenated message (the block
                    // structure is deterministic, so the receiver can re-split).
                    let mut payload = Vec::with_capacity(owned.words());
                    for blk in &owned.blocks {
                        payload.extend_from_slice(&blk.data);
                    }
                    comm.send(dst, TAG_SCATTER_T, payload);
                    let shards: Vec<f64> = part
                        .r_set(dst)
                        .iter()
                        .flat_map(|&i| {
                            let global = part.block_range(i);
                            let local = part.shard_range(i, dst);
                            x[global.start + local.start..global.start + local.end].to_vec()
                        })
                        .collect();
                    comm.send(dst, TAG_SCATTER_X, shards);
                }
                let owned = OwnedBlocks::extract(tensor, part, 0);
                let shards = local_shards(part, 0, x);
                (owned, shards)
            } else {
                let payload = comm.recv(0, TAG_SCATTER_T).expect("tensor scatter");
                // Rebuild the block structure from the deterministic layout.
                let mut owned = OwnedBlocks::extract_empty(part, p);
                let mut offset = 0;
                for blk in &mut owned.blocks {
                    let len = blk.data.len();
                    blk.data.copy_from_slice(&payload[offset..offset + len]);
                    offset += len;
                }
                assert_eq!(offset, payload.len(), "scatter payload length mismatch");
                let flat = comm.recv(0, TAG_SCATTER_X).expect("vector scatter");
                let mut shards = Vec::new();
                let mut pos = 0;
                for &i in part.r_set(p) {
                    let len = part.shard_range(i, p).len();
                    shards.push(flat[pos..pos + len].to_vec());
                    pos += len;
                }
                (owned, shards)
            }
        })
    })
}

fn local_shards(part: &TetraPartition, p: usize, x: &[f64]) -> Vec<Vec<f64>> {
    part.r_set(p)
        .iter()
        .map(|&i| {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            x[global.start + local.start..global.start + local.end].to_vec()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::generate::random_symmetric;
    use symtensor_steiner::spherical;

    #[test]
    fn scatter_delivers_exactly_the_extraction() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(110);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let (results, report) = scatter_from_root(&tensor, &part, &x);
        for (p, (owned, shards)) in results.iter().enumerate() {
            let reference = OwnedBlocks::extract(&tensor, &part, p);
            assert_eq!(owned.blocks.len(), reference.blocks.len());
            for (got, want) in owned.blocks.iter().zip(&reference.blocks) {
                assert_eq!(got.idx, want.idx, "rank {p}");
                assert_eq!(got.data, want.data, "rank {p} block {:?}", got.idx);
            }
            let want_shards = local_shards(&part, p, &x);
            assert_eq!(shards, &want_shards, "rank {p} shards");
        }
        // Root send cost: everything except its own data.
        let total_tensor: usize = (1..part.num_procs()).map(|p| part.tensor_words(p)).sum();
        let total_vec: usize = (1..part.num_procs()).map(|p| part.vector_words(p)).sum();
        assert_eq!(report.per_rank[0].words_sent as usize, total_tensor + total_vec);
        // Setup traffic ≈ n³/6 ≫ per-iteration traffic — the reason the
        // paper's model charges it once, not per STTSV.
        assert!(report.per_rank[0].words_sent as usize > n * n);
    }

    #[test]
    fn non_root_ranks_send_nothing() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let tensor = SymTensor3::zeros(n);
        let x = vec![0.0; n];
        let (_, report) = scatter_from_root(&tensor, &part, &x);
        for p in 1..part.num_procs() {
            assert_eq!(report.per_rank[p].words_sent, 0);
        }
    }
}
