//! Batched serving of STTSV requests with request-scoped tracing.
//!
//! The throughput path ([`parallel_sttsv_multi_planned`]) amortizes the α
//! term by moving a whole batch through one exchange-phase pair — but it
//! answers only "how long did the batch take". A serving system needs the
//! *per-request* decomposition: how long did request 17 queue, how long
//! did its batch take to form, what was its kernel time, how much exchange
//! latency did it absorb. [`parallel_sttsv_serve`] runs a stream of
//! [`ServeRequest`]s through the compiled-plan batched kernel and measures
//! exactly that, with straggler semantics (a span is as slow as its
//! slowest rank — the time a client would actually observe), threading
//! each request's id through the flight recorder, the `CommEvent` log and
//! the worker pool's workspace leases while its kernel runs.
//!
//! Results are bit-identical to [`parallel_sttsv_multi_planned`] over the
//! same batches: the serving layer changes *when* things are measured,
//! never *what* is computed.
//!
//! [`parallel_sttsv_multi_planned`]: crate::algorithm5::parallel_sttsv_multi_planned

use crate::algorithm5::{BatchSpans, Mode, RankContext};
use crate::partition::TetraPartition;
use crate::schedule::CommSchedule;
use std::sync::Arc;
use std::time::Duration;
use symtensor_core::seq::sttsv_sym;
use symtensor_core::SymTensor3;
use symtensor_mpsim::{Comm, CostReport, FaultPlan, FlightSnapshot, RankCost, Universe};
use symtensor_pool::Pool;
use symtensor_telemetry::{keys as telemetry_keys, SloBurnRate, TelemetryPlane};

/// One STTSV request submitted to the serving layer.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// Caller-chosen request id — threaded through flight-recorder
    /// records, trace events and pool leases during this request's
    /// compute.
    pub id: u64,
    /// Arrival time on the serving clock (ns). Queue wait is measured
    /// from here to the start of the batch that carries the request.
    pub arrival_ns: u64,
    /// The input vector (`part.dim()` long).
    pub x: Vec<f64>,
}

impl ServeRequest {
    /// A request that arrived at time 0.
    pub fn new(id: u64, x: Vec<f64>) -> Self {
        ServeRequest { id, arrival_ns: 0, x }
    }
}

/// A structured serving-layer error — invalid configurations return this
/// instead of panicking deep inside the batch loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// `batch_cap == 0`: the batch loop could never make progress.
    ZeroBatchCap,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ZeroBatchCap => {
                write!(f, "batch capacity must be positive (got 0)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The measured latency decomposition of one served request. All values
/// are straggler-merged across ranks: a span is the slowest rank's,
/// because that is when the result (which needs every rank's shard)
/// actually became available.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestRecord {
    /// The request id.
    pub id: u64,
    /// Which batch carried the request.
    pub batch: usize,
    /// The request's slab index within its batch.
    pub batch_index: usize,
    /// Arrival → the carrying batch starting to form.
    pub queue_wait_ns: u64,
    /// Shard extraction / batch assembly.
    pub batch_form_ns: u64,
    /// This request's kernel pass (slowest rank).
    pub compute_ns: u64,
    /// The batch's gather + reduce exchange phases (slowest rank each) —
    /// shared by every request in the batch.
    pub exchange_ns: u64,
    /// Arrival → every rank finished extracting the batch's outputs.
    pub e2e_ns: u64,
    /// Failed attempts the carrying batch absorbed before it succeeded (or
    /// was degraded). Always 0 on the fault-free path.
    pub retries: u32,
    /// True when the batch exhausted its retries and this request's answer
    /// came from the sequential [`sttsv_sym`] fallback instead of the
    /// distributed kernel.
    pub degraded: bool,
}

/// One rank's per-batch measurement, produced inside the simulated rank.
struct RankBatch {
    /// Batch began forming on this rank (absolute).
    begin_ns: u64,
    /// Shards extracted, batch assembled (absolute).
    formed_ns: u64,
    /// The kernel-level spans from [`RankContext::sttsv_multi_requests`].
    spans: BatchSpans,
    /// This rank's output shards, `[v][t]`.
    ys: Vec<Vec<Vec<f64>>>,
    /// Ternary multiplications for the batch.
    ternary: u64,
}

/// The result of a serving run.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// `ys[i]` is the assembled output for `requests[i]`, in submission
    /// order — bit-identical to [`parallel_sttsv_multi_planned`] over the
    /// same batches.
    ///
    /// [`parallel_sttsv_multi_planned`]: crate::algorithm5::parallel_sttsv_multi_planned
    pub ys: Vec<Vec<f64>>,
    /// Exact communication costs of the whole run.
    pub report: CostReport,
    /// Per-rank ternary multiplications over all batches.
    pub ternary_per_rank: Vec<u64>,
    /// One latency record per request, in submission order.
    pub records: Vec<RequestRecord>,
    /// Every rank's flight-recorder window at the end of the run, with
    /// request-annotated records for each request's kernel pass.
    pub flight: Vec<FlightSnapshot>,
}

/// Extracts one rank's shards for every request in a batch.
fn extract_shards(part: &TetraPartition, p: usize, batch: &[ServeRequest]) -> Vec<Vec<Vec<f64>>> {
    batch
        .iter()
        .map(|r| {
            part.r_set(p)
                .iter()
                .map(|&i| {
                    let block = &r.x[part.block_range(i)];
                    block[part.shard_range(i, p)].to_vec()
                })
                .collect()
        })
        .collect()
}

/// Straggler-merges one batch's per-rank measurements into request
/// records and assembles its slice of the outputs.
#[allow(clippy::too_many_arguments)]
fn merge_batch(
    part: &TetraPartition,
    batch: &[ServeRequest],
    k: usize,
    per_rank: &[&RankBatch],
    retries: u32,
    offset: usize,
    ys: &mut [Vec<f64>],
    ternary_per_rank: &mut [u64],
    records: &mut Vec<RequestRecord>,
) {
    let begin = per_rank.iter().map(|b| b.begin_ns).max().unwrap_or(0);
    let form = per_rank.iter().map(|b| b.formed_ns.saturating_sub(b.begin_ns)).max().unwrap_or(0);
    let gather = per_rank.iter().map(|b| b.spans.gather_ns).max().unwrap_or(0);
    let reduce = per_rank.iter().map(|b| b.spans.reduce_ns).max().unwrap_or(0);
    let end = per_rank.iter().map(|b| b.spans.end_ns).max().unwrap_or(0);
    for (v, r) in batch.iter().enumerate() {
        let compute =
            per_rank.iter().map(|b| b.spans.compute_ns.get(v).copied().unwrap_or(0)).max();
        records.push(RequestRecord {
            id: r.id,
            batch: k,
            batch_index: v,
            queue_wait_ns: begin.saturating_sub(r.arrival_ns),
            batch_form_ns: form,
            compute_ns: compute.unwrap_or(0),
            exchange_ns: gather + reduce,
            e2e_ns: end.saturating_sub(r.arrival_ns),
            retries,
            degraded: false,
        });
    }
    for (p, rb) in per_rank.iter().enumerate() {
        ternary_per_rank[p] += rb.ternary;
        for (v, shards) in rb.ys.iter().enumerate() {
            for (t, &i) in part.r_set(p).iter().enumerate() {
                let global = part.block_range(i);
                let local = part.shard_range(i, p);
                ys[offset + v][global.start + local.start..global.start + local.end]
                    .copy_from_slice(&shards[t]);
            }
        }
    }
}

/// Driver-side publisher for the plane's dedicated *serve* cell: queue
/// depth and batch occupancy as a batch is admitted, latency histograms
/// and completion counters as its records merge. One instance per serving
/// run keeps all the registry lookups in one place.
struct ServeTelemetry<'a> {
    plane: &'a Arc<TelemetryPlane>,
}

impl ServeTelemetry<'_> {
    /// A batch of `batch_len` requests begins forming with `queued`
    /// requests still waiting behind it.
    fn batch_admitted(&self, queued: usize, batch_len: usize, batch_cap: usize) {
        let cell = self.plane.serve_cell();
        cell.gauge_set(self.plane.gauge_slot(telemetry_keys::QUEUE_DEPTH), queued as u64);
        cell.gauge_set(
            self.plane.gauge_slot(telemetry_keys::BATCH_OCCUPANCY_PCT),
            (batch_len * 100 / batch_cap.max(1)) as u64,
        );
    }

    /// A batch's straggler-merged records are final: feed the latency
    /// histograms and bump the completion/degradation counters.
    fn batch_done(&self, records: &[RequestRecord], retries: u32) {
        let cell = self.plane.serve_cell();
        let now = self.plane.now_ns();
        let e2e = self.plane.hist_slot(telemetry_keys::E2E_NS);
        let queue_wait = self.plane.hist_slot(telemetry_keys::QUEUE_WAIT_NS);
        let mut degraded = 0u64;
        for rec in records {
            cell.observe(e2e, now, rec.e2e_ns);
            cell.observe(queue_wait, now, rec.queue_wait_ns);
            degraded += rec.degraded as u64;
        }
        // One vector per request in this serving model, so the two
        // counters advance in lockstep; both exist because the scraper's
        // budget ratio is defined over *vectors*.
        cell.gauge_add(self.plane.gauge_slot(telemetry_keys::VECTORS_DONE), records.len() as u64);
        cell.gauge_add(self.plane.gauge_slot(telemetry_keys::REQUESTS_DONE), records.len() as u64);
        if retries > 0 {
            cell.gauge_add(self.plane.gauge_slot(telemetry_keys::RETRIES), retries as u64);
        }
        if degraded > 0 {
            cell.gauge_add(self.plane.gauge_slot(telemetry_keys::DEGRADED), degraded);
        }
    }
}

/// Serves `requests` through the compiled-plan batched STTSV kernel.
///
/// Requests are carried in submission order, `batch_cap` per batch (the
/// last batch may be smaller). `threads > 1` attaches a worker [`Pool`]
/// per rank, whose workspace leases are tagged with the running request's
/// id. Returns [`ServeError::ZeroBatchCap`] when `batch_cap == 0`;
/// panics if any vector has the wrong dimension.
pub fn parallel_sttsv_serve(
    tensor: &SymTensor3,
    part: &TetraPartition,
    requests: &[ServeRequest],
    mode: Mode,
    threads: usize,
    batch_cap: usize,
) -> Result<ServeRun, ServeError> {
    parallel_sttsv_serve_with(tensor, part, requests, mode, threads, batch_cap, None)
}

/// [`parallel_sttsv_serve`] with an optional live telemetry plane.
///
/// When a plane is attached, every rank publishes its per-phase word
/// counts into its plane cell as it communicates, rank 0 publishes queue
/// depth and batch occupancy into the serve cell as each batch is
/// admitted, and the driver feeds the per-request latency histograms once
/// the straggler merge is done. The computed `ys` and [`CostReport`] are
/// bit-identical with and without the plane — telemetry observes, it
/// never steers.
pub fn parallel_sttsv_serve_with(
    tensor: &SymTensor3,
    part: &TetraPartition,
    requests: &[ServeRequest],
    mode: Mode,
    threads: usize,
    batch_cap: usize,
    telemetry: Option<&Arc<TelemetryPlane>>,
) -> Result<ServeRun, ServeError> {
    if batch_cap == 0 {
        return Err(ServeError::ZeroBatchCap);
    }
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    for r in requests {
        assert_eq!(r.x.len(), n, "request {} has wrong dimension", r.id);
    }
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };
    let batches: Vec<&[ServeRequest]> = requests.chunks(batch_cap).collect();
    let total = requests.len();

    let plane = telemetry.cloned();
    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let mut out = Vec::with_capacity(batches.len());
        let mut admitted = 0usize;
        for batch in &batches {
            // All batches run inside one universe, so the live queue-depth
            // view has to come from within: rank 0 publishes it as each
            // batch is admitted.
            if p == 0 {
                if let Some(plane) = &plane {
                    ServeTelemetry { plane }.batch_admitted(
                        total - admitted,
                        batch.len(),
                        batch_cap,
                    );
                }
            }
            admitted += batch.len();
            let begin_ns = comm.elapsed_ns();
            let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
            let my_shards: Vec<Vec<Vec<f64>>> =
                comm.with_phase("batch-form", || extract_shards(part, p, batch));
            let formed_ns = comm.elapsed_ns();
            let (ys, ternary, spans) = ctx.sttsv_multi_requests(comm, &my_shards, &ids);
            out.push(RankBatch { begin_ns, formed_ns, spans, ys, ternary });
        }
        out
    };
    let mut universe = Universe::new(p_count);
    if let Some(plane) = telemetry {
        universe = universe.with_telemetry(plane.clone());
    }
    let (rank_results, report, flight) = universe.run_flight(rank_main);

    // Merge per-rank measurements into per-request records (straggler
    // semantics) and assemble the outputs.
    let mut ys = vec![vec![0.0; n]; requests.len()];
    let mut ternary_per_rank = vec![0u64; p_count];
    let mut records = Vec::with_capacity(requests.len());
    let mut offset = 0usize;
    for (k, batch) in batches.iter().enumerate() {
        let per_rank: Vec<&RankBatch> = rank_results.iter().map(|b| &b[k]).collect();
        merge_batch(
            part,
            batch,
            k,
            &per_rank,
            0,
            offset,
            &mut ys,
            &mut ternary_per_rank,
            &mut records,
        );
        offset += batch.len();
    }
    // The straggler merge needs every rank, so the latency histograms are
    // fed once, after the universe has returned.
    if let Some(plane) = telemetry {
        ServeTelemetry { plane }.batch_done(&records, 0);
    }
    Ok(ServeRun { ys, report, ternary_per_rank, records, flight })
}

/// [`parallel_sttsv_serve`] with the **double-buffered pipeline**: while
/// batch `k` computes, batch `k + 1` is formed and its gather-x messages
/// are already in flight, alternating between two plan workspaces per
/// rank ([`RankContext::sttsv_serve_pipelined`]). Outputs, ternary counts
/// and the [`CostReport`] are bit-identical to the sequential serving
/// loop — per-sender FIFO delivery keeps back-to-back batches on the same
/// round tags unambiguous — while each batch's recorded exchange span now
/// measures only its *exposed* gather time (the part its predecessor's
/// compute could not hide). Scheduled mode pipelines; the all-to-all
/// modes run sequential barrier batches (their collective is one
/// indivisible step) and produce records identical in structure.
pub fn parallel_sttsv_serve_pipelined(
    tensor: &SymTensor3,
    part: &TetraPartition,
    requests: &[ServeRequest],
    mode: Mode,
    threads: usize,
    batch_cap: usize,
) -> Result<ServeRun, ServeError> {
    if batch_cap == 0 {
        return Err(ServeError::ZeroBatchCap);
    }
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    for r in requests {
        assert_eq!(r.x.len(), n, "request {} has wrong dimension", r.id);
    }
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };
    let batches: Vec<&[ServeRequest]> = requests.chunks(batch_cap).collect();

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let served = ctx.sttsv_serve_pipelined(comm, batches.len(), |k| {
            let batch = batches[k];
            let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
            let shards = comm.with_phase("batch-form", || extract_shards(part, p, batch));
            (shards, ids)
        });
        served
            .into_iter()
            .map(|sb| RankBatch {
                begin_ns: sb.begin_ns,
                formed_ns: sb.formed_ns,
                spans: sb.spans,
                ys: sb.ys,
                ternary: sb.ternary,
            })
            .collect::<Vec<_>>()
    };
    let (rank_results, report, flight) = Universe::new(p_count).run_flight(rank_main);

    let mut ys = vec![vec![0.0; n]; requests.len()];
    let mut ternary_per_rank = vec![0u64; p_count];
    let mut records = Vec::with_capacity(requests.len());
    let mut offset = 0usize;
    for (k, batch) in batches.iter().enumerate() {
        let per_rank: Vec<&RankBatch> = rank_results.iter().map(|b| &b[k]).collect();
        merge_batch(
            part,
            batch,
            k,
            &per_rank,
            0,
            offset,
            &mut ys,
            &mut ternary_per_rank,
            &mut records,
        );
        offset += batch.len();
    }
    Ok(ServeRun { ys, report, ternary_per_rank, records, flight })
}

/// How the chaos serving layer injects faults and recovers from them.
#[derive(Clone, Debug)]
pub struct ChaosPolicy {
    /// The deterministic fault plan installed into every batch attempt
    /// (re-keyed per attempt via [`FaultPlan::for_attempt`]).
    pub plan: FaultPlan,
    /// Failed attempts a batch may absorb before its requests degrade to
    /// the sequential fallback.
    pub max_retries: u32,
    /// Base backoff between attempts; attempt `k` sleeps `backoff << k`.
    pub backoff: Duration,
    /// Per-recv timeout inside each attempt — keeps a deserted collective
    /// from stalling the retry loop for the default 60 s.
    pub recv_timeout: Duration,
}

impl ChaosPolicy {
    /// A policy with serving-friendly defaults: 2 retries, 10 ms base
    /// backoff, 250 ms recv timeout.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosPolicy {
            plan,
            max_retries: 2,
            backoff: Duration::from_millis(10),
            recv_timeout: Duration::from_millis(250),
        }
    }
}

/// [`parallel_sttsv_serve`] with deterministic fault injection and
/// bounded-retry recovery.
///
/// Each batch runs in its own [`Universe`] with `policy.plan` installed.
/// When a rank fails (injected crash, or a timeout forced by dropped
/// messages), the whole batch is retried with exponential backoff, up to
/// `policy.max_retries` times; each retry re-keys the plan's PRNG streams
/// via [`FaultPlan::for_attempt`], so an attempt-0 crash spec lets the
/// retry succeed. A batch that exhausts its retries is *degraded*: every
/// request in it is answered by the sequential [`sttsv_sym`] fallback and
/// its records carry `degraded = true` with zeroed timing spans.
///
/// Recovered (non-degraded) outputs are bit-identical to the fault-free
/// [`parallel_sttsv_serve`] run — a retried batch recomputes from the
/// original request vectors in a fresh universe, and the arithmetic is
/// deterministic. The merged [`CostReport`] includes the words actually
/// moved by *failed* attempts too: retries have a real communication
/// cost. `flight` holds the final attempt of the last batch (earlier
/// windows are superseded); with an inert plan (`drop_prob = 0`, no
/// crash) the per-batch costs equal the fault-free path's.
pub fn parallel_sttsv_serve_chaos(
    tensor: &SymTensor3,
    part: &TetraPartition,
    requests: &[ServeRequest],
    mode: Mode,
    threads: usize,
    batch_cap: usize,
    policy: &ChaosPolicy,
) -> Result<ServeRun, ServeError> {
    parallel_sttsv_serve_chaos_with(
        tensor, part, requests, mode, threads, batch_cap, policy, None, None,
    )
}

/// [`parallel_sttsv_serve_chaos`] with an optional live telemetry plane
/// and an optional SLO burn-rate evaluator.
///
/// The chaos loop runs one universe per batch attempt, so the driver is
/// free between batches: it publishes queue depth / occupancy as each
/// batch is admitted, feeds the latency histograms and retry/degraded
/// counters as each batch's records merge, and — when `slo` is given —
/// evaluates the burn rate there too. An alert raised between batches is
/// stamped into *every* rank's flight ring by the next batch's
/// communicators (fresh ranks start with an empty seen-alert mark), so a
/// post-mortem window shows which alerts were already burning when the
/// batch failed.
#[allow(clippy::too_many_arguments)]
pub fn parallel_sttsv_serve_chaos_with(
    tensor: &SymTensor3,
    part: &TetraPartition,
    requests: &[ServeRequest],
    mode: Mode,
    threads: usize,
    batch_cap: usize,
    policy: &ChaosPolicy,
    telemetry: Option<&Arc<TelemetryPlane>>,
    mut slo: Option<&mut SloBurnRate>,
) -> Result<ServeRun, ServeError> {
    if batch_cap == 0 {
        return Err(ServeError::ZeroBatchCap);
    }
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    for r in requests {
        assert_eq!(r.x.len(), n, "request {} has wrong dimension", r.id);
    }
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };
    let batches: Vec<&[ServeRequest]> = requests.chunks(batch_cap).collect();

    let mut ys = vec![vec![0.0; n]; requests.len()];
    let mut report = CostReport { per_rank: vec![RankCost::default(); p_count] };
    let mut ternary_per_rank = vec![0u64; p_count];
    let mut records = Vec::with_capacity(requests.len());
    let mut flight: Vec<FlightSnapshot> = Vec::new();
    let mut offset = 0usize;
    for (k, batch) in batches.iter().enumerate() {
        if let Some(plane) = telemetry {
            ServeTelemetry { plane }.batch_admitted(
                requests.len() - offset,
                batch.len(),
                batch_cap,
            );
        }
        let rank_main = |comm: &Comm| {
            let p = comm.rank();
            let pool = (threads > 1).then(|| Pool::new(threads));
            let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
            if let Some(pool) = pool.as_ref() {
                ctx = ctx.with_pool(pool);
            }
            let begin_ns = comm.elapsed_ns();
            let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
            let my_shards: Vec<Vec<Vec<f64>>> =
                comm.with_phase("batch-form", || extract_shards(part, p, batch));
            let formed_ns = comm.elapsed_ns();
            let (ys, ternary, spans) = ctx.sttsv_multi_requests(comm, &my_shards, &ids);
            RankBatch { begin_ns, formed_ns, spans, ys, ternary }
        };

        let mut attempt = 0u32;
        let survived = loop {
            let mut universe = Universe::new(p_count)
                .with_recv_timeout(policy.recv_timeout)
                .with_faults(policy.plan.for_attempt(attempt));
            if let Some(plane) = telemetry {
                universe = universe.with_telemetry(plane.clone());
            }
            match universe.try_run_traced(rank_main) {
                Ok((per_rank, batch_report, _traces, batch_flight)) => {
                    report = report.merged(&batch_report);
                    flight = batch_flight;
                    break Some(per_rank);
                }
                Err(failure) => {
                    // Failed attempts still moved real words — keep them.
                    report = report.merged(&failure.report);
                    flight = failure.flight;
                    if attempt >= policy.max_retries {
                        break None;
                    }
                    std::thread::sleep(policy.backoff * (1u32 << attempt.min(16)));
                    attempt += 1;
                }
            }
        };

        match survived {
            Some(per_rank) => {
                let refs: Vec<&RankBatch> = per_rank.iter().collect();
                merge_batch(
                    part,
                    batch,
                    k,
                    &refs,
                    attempt,
                    offset,
                    &mut ys,
                    &mut ternary_per_rank,
                    &mut records,
                );
            }
            None => {
                for (v, r) in batch.iter().enumerate() {
                    let (y, _ops) = sttsv_sym(tensor, &r.x);
                    ys[offset + v] = y;
                    records.push(RequestRecord {
                        id: r.id,
                        batch: k,
                        batch_index: v,
                        retries: policy.max_retries,
                        degraded: true,
                        ..RequestRecord::default()
                    });
                }
            }
        }
        if let Some(plane) = telemetry {
            ServeTelemetry { plane }.batch_done(&records[records.len() - batch.len()..], attempt);
            // Evaluate the SLO between batches: an alert raised here is
            // stamped into the next batch's flight rings by every rank.
            if let Some(slo) = slo.as_deref_mut() {
                slo.evaluate(plane);
            }
        }
        offset += batch.len();
    }
    Ok(ServeRun { ys, report, ternary_per_rank, records, flight })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm5::{parallel_sttsv, parallel_sttsv_multi_planned};
    use rand::prelude::*;
    use symtensor_core::generate::random_symmetric;
    use symtensor_mpsim::FlightKind;
    use symtensor_steiner::spherical;

    fn setup(q: u64) -> (SymTensor3, TetraPartition, usize) {
        let qs = q as usize;
        let n = (qs * qs + 1) * qs * (qs + 1); // block size divisible by P
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let tensor = random_symmetric(n, &mut rng);
        (tensor, part, n)
    }

    fn vectors(n: usize, count: usize) -> Vec<Vec<f64>> {
        (0..count).map(|v| (0..n).map(|i| ((i + 3 * v) % 11) as f64 - 4.0).collect()).collect()
    }

    #[test]
    fn served_outputs_match_single_vector_runs() {
        let (tensor, part, n) = setup(2);
        let xs = vectors(n, 5);
        let requests: Vec<ServeRequest> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| ServeRequest::new(100 + i as u64, x.clone()))
            .collect();
        let run = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, 1, 2).unwrap();
        assert_eq!(run.ys.len(), 5);
        for (x, y) in xs.iter().zip(&run.ys) {
            let reference = parallel_sttsv(&tensor, &part, x, Mode::Scheduled);
            assert_eq!(y, &reference.y, "served output must be bit-identical");
        }
        // Batches of [2, 2, 1]: the batched report equals the sum of the
        // equivalent multi-planned runs.
        let mut expected_words = 0;
        for chunk in xs.chunks(2) {
            let multi = parallel_sttsv_multi_planned(&tensor, &part, chunk, Mode::Scheduled, 1);
            expected_words += multi.report.total_words_sent();
        }
        assert_eq!(run.report.total_words_sent(), expected_words);
    }

    #[test]
    fn records_decompose_each_request() {
        let (tensor, part, n) = setup(2);
        let xs = vectors(n, 6);
        let requests: Vec<ServeRequest> =
            xs.iter().enumerate().map(|(i, x)| ServeRequest::new(i as u64, x.clone())).collect();
        let run = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, 2, 4).unwrap();
        assert_eq!(run.records.len(), 6);
        for (i, rec) in run.records.iter().enumerate() {
            assert_eq!(rec.id, i as u64);
            assert_eq!(rec.batch, i / 4);
            assert_eq!(rec.batch_index, i % 4);
            assert!(rec.compute_ns > 0, "request {i} measured no compute");
            assert!(rec.e2e_ns >= rec.compute_ns);
            assert!(rec.e2e_ns >= rec.queue_wait_ns);
        }
        // Later batches queue behind earlier ones.
        assert!(run.records[4].queue_wait_ns >= run.records[0].queue_wait_ns);
    }

    #[test]
    fn pipelined_serve_is_bit_identical_to_sequential() {
        let (tensor, part, n) = setup(2);
        let xs = vectors(n, 7);
        let requests: Vec<ServeRequest> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| ServeRequest::new(200 + i as u64, x.clone()))
            .collect();
        for mode in [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse] {
            for threads in [1usize, 3] {
                let seq =
                    parallel_sttsv_serve(&tensor, &part, &requests, mode, threads, 3).unwrap();
                let pipe =
                    parallel_sttsv_serve_pipelined(&tensor, &part, &requests, mode, threads, 3)
                        .unwrap();
                assert_eq!(pipe.ys, seq.ys, "{mode:?}/{threads}: outputs must be bit-identical");
                assert_eq!(pipe.ternary_per_rank, seq.ternary_per_rank);
                assert_eq!(
                    pipe.report, seq.report,
                    "{mode:?}/{threads}: pipelining must not move a single word"
                );
                assert_eq!(pipe.records.len(), seq.records.len());
                for (pr, sr) in pipe.records.iter().zip(&seq.records) {
                    assert_eq!(
                        (pr.id, pr.batch, pr.batch_index),
                        (sr.id, sr.batch, sr.batch_index)
                    );
                    assert!(pr.compute_ns > 0);
                    assert!(pr.e2e_ns >= pr.compute_ns);
                }
            }
        }
    }

    #[test]
    fn pipelined_batches_overlap_in_time() {
        let (tensor, part, n) = setup(2);
        let xs = vectors(n, 8);
        let requests: Vec<ServeRequest> =
            xs.iter().enumerate().map(|(i, x)| ServeRequest::new(i as u64, x.clone())).collect();
        let run = parallel_sttsv_serve_pipelined(&tensor, &part, &requests, Mode::Scheduled, 1, 2)
            .unwrap();
        // Batch k+1 is admitted (queue wait ends) before batch k finishes:
        // with 4 batches, at least one successor must begin before its
        // predecessor's end-to-end completion — the pipeline's signature.
        let mut overlapped = false;
        for k in 1..4 {
            let prev_end = run.records[2 * (k - 1)].e2e_ns;
            let begin = run.records[2 * k].queue_wait_ns + requests[2 * k].arrival_ns;
            if begin < prev_end {
                overlapped = true;
            }
        }
        assert!(overlapped, "no batch was admitted before its predecessor completed");
    }

    #[test]
    fn flight_windows_carry_request_annotations() {
        let (tensor, part, n) = setup(2);
        let xs = vectors(n, 3);
        let requests: Vec<ServeRequest> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| ServeRequest::new(40 + i as u64, x.clone()))
            .collect();
        let run = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, 1, 3).unwrap();
        assert_eq!(run.flight.len(), part.num_procs());
        for snap in &run.flight {
            assert!(snap.overhead.recorded > 0, "recorder is always on");
            // Every request's compute:kernel phase-enter carries its id.
            for id in 40..43u64 {
                assert!(
                    snap.events.iter().any(|e| e.request == Some(id)
                        && e.kind == FlightKind::PhaseEnter
                        && e.phase == Some("compute:kernel")),
                    "rank {} has no flight record for request {id}",
                    snap.rank
                );
            }
            // Exchange records are batch-scoped: sends are unattributed.
            assert!(snap
                .events
                .iter()
                .filter(|e| e.kind == FlightKind::Send)
                .all(|e| e.request.is_none()));
        }
    }
}
