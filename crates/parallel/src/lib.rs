#![warn(missing_docs)]
//! Communication-optimal parallel STTSV via tetrahedral block partitioning —
//! the reproduction of the paper's primary contribution.
//!
//! The pipeline mirrors Sections 6–7 of the paper:
//!
//! 1. [`tetra`] — tetrahedral blocks `TB₃(R)` and the classification of
//!    lower-tetrahedron blocks into off-diagonal, non-central diagonal and
//!    central diagonal;
//! 2. [`partition`] — the full data distribution: `R_p` from a Steiner
//!    system, `N_p` via `q` disjoint matchings (Corollary 6.7), `D_p` via a
//!    Hall matching, the row-block requirement sets `Q_i`, and the vector
//!    shard layout;
//! 3. [`blocks`] — per-rank owned tensor storage (extracted once, never
//!    communicated — the owner-compute rule) and the local ternary-
//!    multiplication kernels;
//! 4. [`schedule`] — the point-to-point communication schedule obtained by
//!    edge-coloring the processor sharing graph (Lemma 7.1 / Theorem 7.2 /
//!    Figure 1);
//! 5. [`algorithm5`] — the parallel STTSV algorithm itself, runnable in
//!    padded All-to-All mode (§7.2.2 collective variant, 2× leading term)
//!    or scheduled point-to-point mode (exactly the lower bound's leading
//!    term);
//! 6. [`bounds`] — the closed-form lower bound (Theorem 5.2) and cost
//!    formulas (§7.1, §7.2) every experiment compares against;
//! 7. [`baselines`] — 1-D row-partitioned and 3-D cubic non-symmetric
//!    STTSV algorithms for the comparison experiments;
//! 8. [`hopm`] — the higher-order power method running on distributed
//!    vectors with the communication-optimal kernel inside.

pub mod ablation;
pub mod algorithm5;
pub mod baselines;
pub mod blocks;
pub mod bounds;
pub mod geometry;
pub mod hopm;
pub mod mttkrp;
pub mod partition;
pub mod plan;
pub mod scatter;
pub mod schedule;
pub mod serve;
pub mod tetra;
pub mod triangle;

pub use algorithm5::{
    parallel_sttsv, parallel_sttsv_mt, parallel_sttsv_multi, parallel_sttsv_multi_overlapped,
    parallel_sttsv_multi_planned, parallel_sttsv_overlapped, parallel_sttsv_overlapped_traced,
    parallel_sttsv_padded, parallel_sttsv_planned, parallel_sttsv_planned_traced,
    parallel_sttsv_traced, parallel_sttsv_traced_flight, BatchSpans, Mode, RankContext,
    SttsvMultiRun, SttsvRun,
};
pub use partition::TetraPartition;
pub use plan::{BlockClass, OverlapState, PlanWorkspace, RankPlan};
pub use schedule::CommSchedule;
pub use serve::{
    parallel_sttsv_serve, parallel_sttsv_serve_chaos, parallel_sttsv_serve_chaos_with,
    parallel_sttsv_serve_pipelined, parallel_sttsv_serve_with, ChaosPolicy, RequestRecord,
    ServeError, ServeRequest, ServeRun,
};
