//! Compiled rank plans: the allocation-free steady state for iterated
//! STTSV.
//!
//! Under the owner-compute rule a rank's tetrahedral blocks, its exchange
//! partners and every message layout are **fixed for the lifetime of the
//! distribution** — yet the straightforward hot path rebuilds all of that
//! per call: nested `Vec<Vec<f64>>` exchange buffers, per-block row-slot
//! lookups, per-block local accumulators. A [`RankPlan`] resolves
//! everything once, at compile time:
//!
//! * **Contiguous block arena** — all of the rank's owned blocks packed
//!   into one `(i, j, k)`-sorted slab, with a per-block
//!   offset / kind / slot table ([`PlanBlock`]). The `row_pos` lookup is
//!   resolved *once* into precomputed x/y slot indices instead of being
//!   dispatched per block per call.
//! * **Flat exchange state** — one flat `x` slab and one flat `y` slab
//!   (`batch · |R_p| · b` words each) replace the nested per-row-block
//!   vectors, and every peer message's piece layout ([`PieceMeta`]) is
//!   precomputed from the partition's shard ranges.
//! * **Recycled message buffers** — a [`PlanWorkspace`] keeps a free list
//!   of message `Vec`s; received buffers are fed back as future send
//!   buffers (the exchange graph is balanced, so the list stays
//!   replenished). Buffers are promoted to the *global* maximum message
//!   capacity on first reuse, so every buffer grows at most once and the
//!   steady state performs **zero heap allocations** (the simulated
//!   transport's channel nodes excepted — those belong to the machine,
//!   not the algorithm).
//!
//! The plan's kernels are the same flat register-tiled kernels as
//! [`crate::blocks`] (shared down to the `row_segment` inner loop of
//! `core::seq`), its pooled compute funnels through the same chunk
//! decomposition and [`symtensor_pool::tree_reduce`] tree, and its message
//! layouts byte-match the legacy exchange — so the plan path is
//! **bit-identical** to the legacy path across runs and thread counts, and
//! its word/message/round counts are exactly the legacy ones.

use crate::blocks::{
    add_into, block_kernel_flat, chunked_compute_flat, OwnedBlocks, MAX_COMPUTE_CHUNKS,
};
use crate::partition::TetraPartition;
use crate::schedule::shared_row_blocks;
use crate::tetra::BlockKind;
use symtensor_pool::Pool;

/// Classification of a [`PlanBlock`] by its gather-x dependency set: how
/// many distinct peers must deliver x pieces before the block's three row
/// slots are complete and the block is computable. The overlapped exchange
/// computes `OwnedOnly` blocks while the gather is still in flight and
/// unlocks the rest as their last contributing peer's message lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockClass {
    /// No peer contribution needed — computable from locally loaded shards
    /// before any gather message arrives.
    OwnedOnly,
    /// Unlocked by exactly one peer's gather message.
    SinglePeer,
    /// Needs pieces from two or more peers.
    MultiPeer,
}

/// One owned block inside the packed arena.
#[derive(Clone, Copy, Debug)]
pub struct PlanBlock {
    /// Offset of the block's data within [`RankPlan::arena`].
    pub offset: usize,
    /// Stored words.
    pub len: usize,
    /// Block classification (selects the kernel).
    pub kind: BlockKind,
    /// Precomputed row slots (positions within `R_p`) of the block's
    /// `(i, j, k)` row blocks — the compiled form of the `row_pos` lookup.
    pub slots: [usize; 3],
}

/// The layout of one message piece: the shard geometry of a row block
/// shared with a peer, precomputed for both exchange phases.
#[derive(Clone, Copy, Debug)]
pub struct PieceMeta {
    /// The shared row block's slot (position within `R_p`).
    pub t: usize,
    /// Start of *this rank's* shard within the row block.
    pub my_start: usize,
    /// Length of this rank's shard.
    pub my_len: usize,
    /// Start of the *peer's* shard within the row block.
    pub peer_start: usize,
    /// Length of the peer's shard.
    pub peer_len: usize,
}

/// Precompiled exchange layout for one peer.
#[derive(Clone, Debug)]
pub struct PeerPlan {
    /// The peer's rank.
    pub peer: usize,
    /// One piece per shared row block, ascending block index — the same
    /// order the legacy exchange packs, so messages byte-match.
    pub pieces: Vec<PieceMeta>,
    /// Per-vector words this rank sends in gather (= receives in reduce).
    pub my_words: usize,
    /// Per-vector words this rank receives in gather (= sends in reduce).
    pub peer_words: usize,
}

/// Which exchange phase a pack/unpack call serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Phase 1: gather full `x` row blocks (send my shards, receive peers').
    Gather,
    /// Phase 3: reduce partial `y` (send peers' shards, accumulate mine).
    Reduce,
}

/// The compiled, immutable per-rank plan (see module docs). Built once by
/// [`RankPlan::build`] / [`crate::algorithm5::RankContext::compile`] and
/// reused across every subsequent `sttsv` / `sttsv_multi` / HOPM
/// iteration.
#[derive(Clone, Debug)]
pub struct RankPlan {
    rank: usize,
    b: usize,
    t_count: usize,
    /// All owned block data, packed contiguously in `(i, j, k)` order.
    arena: Vec<f64>,
    blocks: Vec<PlanBlock>,
    /// Every peer (all ranks but this one), in rank order — matching the
    /// legacy all-to-all peer iteration.
    peers: Vec<PeerPlan>,
    /// rank → index into `peers` (`usize::MAX` for self).
    peer_index: Vec<usize>,
    /// `(start, len)` of this rank's shard within each owned row block.
    my_shards: Vec<(usize, usize)>,
    /// Per-vector uniform message size of [`crate::Mode::AllToAllPadded`].
    pad_unit: usize,
    /// Global per-vector maximum message size over *all* rank pairs and
    /// both phases (incl. padding) — the buffer promotion target that
    /// makes recycled buffers grow at most once machine-wide.
    max_msg_unit: usize,
    /// Distinct contributing peers per block — the readiness partition of
    /// the overlapped exchange (0 ⇒ owned-only).
    block_deps: Vec<usize>,
    /// Per-block [`BlockClass`], in arena order.
    block_class: Vec<BlockClass>,
    /// Dependency table: peer slot → ascending block indices that need a
    /// piece of that peer's gather message.
    peer_unlocks: Vec<Vec<usize>>,
    /// row slot → peer slots holding a non-empty shard of that row (both
    /// the gather contributors to the row and the recipients of its
    /// reduce pieces — the shard geometry is symmetric across phases).
    row_peers: Vec<Vec<usize>>,
    /// row slot → number of owned blocks writing that row's `y` (the
    /// early-flush countdown base of the overlapped reduce).
    row_writers: Vec<usize>,
}

impl RankPlan {
    /// Compiles the plan for `rank`: packs `owned`'s blocks into the arena,
    /// resolves the slot table and precomputes every peer's message layout.
    /// One-time cost; everything downstream is allocation-free reuse.
    pub fn build(part: &TetraPartition, owned: &OwnedBlocks, rank: usize) -> Self {
        let b = part.block_size();
        let rp = part.r_set(rank);
        let t_count = rp.len();
        let row_pos = |i: usize| rp.binary_search(&i).expect("owned row block in R_p");
        let slots = owned.slot_table(&row_pos);
        let mut arena = Vec::with_capacity(owned.words());
        let blocks: Vec<PlanBlock> = owned
            .blocks
            .iter()
            .zip(&slots)
            .map(|(blk, &s)| {
                let offset = arena.len();
                arena.extend_from_slice(&blk.data);
                PlanBlock { offset, len: blk.data.len(), kind: blk.kind, slots: s }
            })
            .collect();
        debug_assert!(
            owned.blocks.windows(2).all(|w| {
                let (a, c) = (&w[0].idx, &w[1].idx);
                (a.i, a.j, a.k) <= (c.i, c.j, c.k)
            }),
            "owned blocks arrive (i, j, k)-sorted"
        );

        let my_shards: Vec<(usize, usize)> = rp
            .iter()
            .map(|&i| {
                let r = part.shard_range(i, rank);
                (r.start, r.len())
            })
            .collect();

        let p_count = part.num_procs();
        let mut peer_index = vec![usize::MAX; p_count];
        let mut peers = Vec::with_capacity(p_count.saturating_sub(1));
        for (peer, index_slot) in peer_index.iter_mut().enumerate() {
            if peer == rank {
                continue;
            }
            let pieces: Vec<PieceMeta> = shared_row_blocks(part, rank, peer)
                .into_iter()
                .map(|i| {
                    let my = part.shard_range(i, rank);
                    let pr = part.shard_range(i, peer);
                    PieceMeta {
                        t: row_pos(i),
                        my_start: my.start,
                        my_len: my.len(),
                        peer_start: pr.start,
                        peer_len: pr.len(),
                    }
                })
                .collect();
            let my_words = pieces.iter().map(|pc| pc.my_len).sum();
            let peer_words = pieces.iter().map(|pc| pc.peer_len).sum();
            *index_slot = peers.len();
            peers.push(PeerPlan { peer, pieces, my_words, peer_words });
        }

        // Readiness partition: which peers must deliver x pieces before a
        // block's three row slots are complete. A peer's gather message
        // carries *all* its pieces at once, so readiness is a per-block
        // count of distinct contributing peers — decremented per arriving
        // message, not per piece.
        let mut row_peers: Vec<Vec<usize>> = vec![Vec::new(); t_count];
        for (pidx, pp) in peers.iter().enumerate() {
            for pc in &pp.pieces {
                if pc.peer_len > 0 {
                    row_peers[pc.t].push(pidx);
                }
            }
        }
        let mut block_deps = Vec::with_capacity(blocks.len());
        let mut peer_unlocks = vec![Vec::new(); peers.len()];
        let mut row_writers = vec![0usize; t_count];
        for (bi, blk) in blocks.iter().enumerate() {
            let mut slots = blk.slots;
            slots.sort_unstable();
            let mut deps: Vec<usize> = Vec::new();
            for (s, &t) in slots.iter().enumerate() {
                if s > 0 && slots[s - 1] == t {
                    continue;
                }
                // Distinct slots are exactly the rows the kernel reads
                // from x *and* writes to y (central: i; iik/ikk: i,k;
                // off-diagonal: i,j,k).
                row_writers[t] += 1;
                deps.extend(row_peers[t].iter().copied());
            }
            deps.sort_unstable();
            deps.dedup();
            for &pidx in &deps {
                peer_unlocks[pidx].push(bi);
            }
            block_deps.push(deps.len());
        }
        let block_class = block_deps
            .iter()
            .map(|&d| match d {
                0 => BlockClass::OwnedOnly,
                1 => BlockClass::SinglePeer,
                _ => BlockClass::MultiPeer,
            })
            .collect();

        let pad_unit = 2 * b.div_ceil(part.lambda1());
        // Global (machine-wide) per-vector message maximum: recycled
        // buffers migrate between ranks with every send, so promoting to
        // the *global* maximum guarantees each buffer grows at most once
        // anywhere in the machine.
        let mut max_msg_unit = pad_unit;
        for a in 0..p_count {
            for c in 0..p_count {
                if a == c {
                    continue;
                }
                let words: usize = shared_row_blocks(part, a, c)
                    .into_iter()
                    .map(|i| part.shard_range(i, a).len())
                    .sum();
                max_msg_unit = max_msg_unit.max(words);
            }
        }

        RankPlan {
            rank,
            b,
            t_count,
            arena,
            blocks,
            peers,
            peer_index,
            my_shards,
            pad_unit,
            max_msg_unit,
            block_deps,
            block_class,
            peer_unlocks,
            row_peers,
            row_writers,
        }
    }

    /// The rank this plan was compiled for.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Arena size in bytes (the `compute:kernel` span's
    /// `plan:arena_bytes` counter).
    #[inline]
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<f64>()
    }

    /// Number of packed blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The per-block offset / kind / slot table, in arena (`(i, j, k)`)
    /// order.
    #[inline]
    pub fn blocks(&self) -> &[PlanBlock] {
        &self.blocks
    }

    /// Tetrahedral block size `b` of the underlying partition.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Row blocks owned by this rank (`|R_p|`).
    #[inline]
    pub fn row_block_count(&self) -> usize {
        self.t_count
    }

    /// The compiled peer layouts, in rank order.
    #[inline]
    pub fn peers(&self) -> &[PeerPlan] {
        &self.peers
    }

    /// Index into [`RankPlan::peers`] for `peer`, or `None` for self.
    #[inline]
    pub fn peer_slot(&self, peer: usize) -> Option<usize> {
        self.peer_index.get(peer).copied().filter(|&s| s != usize::MAX)
    }

    /// Per-vector uniform message size of the padded all-to-all mode.
    #[inline]
    pub fn pad_unit(&self) -> usize {
        self.pad_unit
    }

    /// `x`/`y` slab stride of one vector: `|R_p| · b`.
    #[inline]
    fn stride(&self) -> usize {
        self.t_count * self.b
    }

    /// Grows `ws` (if needed) to hold `batch` vectors. Capacity only ever
    /// grows; shrinking a batch reuses the larger slabs. This is the only
    /// place the `x`/`y`/scratch slabs can allocate.
    pub fn ensure_capacity(&self, ws: &mut PlanWorkspace, batch: usize) {
        let batch = batch.max(1);
        if batch > ws.batch_cap {
            ws.fresh += 1;
            let stride = self.stride();
            ws.x.resize(batch * stride, 0.0);
            ws.y.resize(batch * stride, 0.0);
            ws.scratch.resize(3 * self.b, 0.0);
            ws.batch_cap = batch;
            ws.buf_target = self.max_msg_unit * batch;
        }
    }

    /// Loads this rank's shards of one input vector into slab `v` of the
    /// flat `x` state. The remaining shard ranges are filled by
    /// [`RankPlan::unpack`] during the gather phase (the shards of a row
    /// block tile it exactly, so the slab never needs zeroing).
    pub fn load_shards(&self, ws: &mut PlanWorkspace, v: usize, my_shards: &[Vec<f64>]) {
        assert_eq!(my_shards.len(), self.t_count, "one shard per owned row block");
        debug_assert!(v < ws.batch_cap);
        let base = v * self.stride();
        for (t, (&(start, len), shard)) in self.my_shards.iter().zip(my_shards).enumerate() {
            debug_assert_eq!(shard.len(), len);
            ws.x[base + t * self.b + start..base + t * self.b + start + len].copy_from_slice(shard);
        }
    }

    /// Loads *full* gathered row blocks into slab `v` of the `x` state —
    /// the post-gather picture, bypassing the exchange. Used by the
    /// comm-free kernel benchmarks and the equivalence tests.
    pub fn load_full(&self, ws: &mut PlanWorkspace, v: usize, x_full: &[Vec<f64>]) {
        assert_eq!(x_full.len(), self.t_count, "one row block per owned slot");
        debug_assert!(v < ws.batch_cap);
        let base = v * self.stride();
        for (t, block) in x_full.iter().enumerate() {
            assert_eq!(block.len(), self.b);
            ws.x[base + t * self.b..base + (t + 1) * self.b].copy_from_slice(block);
        }
    }

    /// Read-only view of output slab `v` (`|R_p| · b` words, row-slot
    /// major) — the pre-reduce picture, for the same callers as
    /// [`RankPlan::load_full`].
    pub fn output_slab<'a>(&self, ws: &'a PlanWorkspace, v: usize) -> &'a [f64] {
        &ws.y[v * self.stride()..(v + 1) * self.stride()]
    }

    /// Packs the outgoing message for peer slot `pidx`: for each shared
    /// row block (ascending), the `batch` vectors' pieces back-to-back —
    /// byte-identical to the legacy exchange layout. The buffer comes from
    /// the workspace free list (allocation-free in steady state); the
    /// caller sends it (and the peer's unpack recycles it on their side).
    pub fn pack(
        &self,
        ws: &mut PlanWorkspace,
        kind: ExchangeKind,
        pidx: usize,
        batch: usize,
    ) -> Vec<f64> {
        let stride = self.stride();
        let mut buf = ws.take_buf();
        let pp = &self.peers[pidx];
        for pc in &pp.pieces {
            let (src, start, len) = match kind {
                ExchangeKind::Gather => (&ws.x, pc.my_start, pc.my_len),
                ExchangeKind::Reduce => (&ws.y, pc.peer_start, pc.peer_len),
            };
            for v in 0..batch {
                let base = v * stride + pc.t * self.b + start;
                buf.extend_from_slice(&src[base..base + len]);
            }
        }
        buf
    }

    /// Unpacks a received message from peer slot `pidx` and recycles its
    /// buffer into the workspace free list. Gather copies the peer's
    /// shards into the `x` slabs; reduce accumulates the peer's partials
    /// into this rank's shard ranges of the `y` slabs. Padded messages may
    /// carry a zero tail beyond the packed pieces; it is ignored, exactly
    /// like the legacy unpack.
    pub fn unpack(
        &self,
        ws: &mut PlanWorkspace,
        kind: ExchangeKind,
        pidx: usize,
        batch: usize,
        buf: Vec<f64>,
    ) {
        let stride = self.stride();
        let pp = &self.peers[pidx];
        let mut offset = 0;
        for pc in &pp.pieces {
            let (dst, start, len) = match kind {
                ExchangeKind::Gather => (&mut ws.x, pc.peer_start, pc.peer_len),
                ExchangeKind::Reduce => (&mut ws.y, pc.my_start, pc.my_len),
            };
            for v in 0..batch {
                let base = v * stride + pc.t * self.b + start;
                let piece = &buf[offset..offset + len];
                match kind {
                    ExchangeKind::Gather => dst[base..base + len].copy_from_slice(piece),
                    ExchangeKind::Reduce => add_into(&mut dst[base..base + len], piece),
                }
                offset += len;
            }
        }
        ws.bufs.push(buf);
    }

    /// Runs the local kernels over the packed arena for slabs `0..batch`:
    /// zeroes the `y` slabs (a `fill`, not an allocation) and dispatches
    /// each [`PlanBlock`] to the shared flat kernels. With a pool, each
    /// vector funnels through the same chunk decomposition, workspace
    /// leases and reduction tree as [`OwnedBlocks::compute_par`] — so the
    /// result is bit-identical to the legacy path across thread counts.
    /// Returns the exact ternary-multiplication count.
    pub fn compute(&self, ws: &mut PlanWorkspace, batch: usize, pool: Option<&Pool>) -> u64 {
        let mut ternary = 0u64;
        for v in 0..batch {
            ternary += self.compute_vector(ws, v, pool);
        }
        ternary
    }

    /// Runs the local kernels for the single slab `v` — the per-vector
    /// unit [`RankPlan::compute`] is built from, exposed so the serving
    /// driver can time and request-annotate each vector of a batch
    /// individually. Zeroes slab `v` of `y` (a `fill`, not an allocation)
    /// before accumulating; results are bit-identical to the batched form.
    /// Returns the exact ternary-multiplication count.
    pub fn compute_vector(&self, ws: &mut PlanWorkspace, v: usize, pool: Option<&Pool>) -> u64 {
        let stride = self.stride();
        let b = self.b;
        let PlanWorkspace { x, y, scratch, .. } = ws;
        let mut ternary = 0u64;
        {
            let xv = &x[v * stride..(v + 1) * stride];
            let yv = &mut y[v * stride..(v + 1) * stride];
            yv.fill(0.0);
            match pool {
                None => {
                    for blk in &self.blocks {
                        ternary += block_kernel_flat(
                            blk.kind,
                            &self.arena[blk.offset..blk.offset + blk.len],
                            b,
                            blk.slots,
                            xv,
                            yv,
                            scratch,
                        );
                    }
                }
                Some(pool) => {
                    ternary += chunked_compute_flat(
                        self.blocks.len(),
                        b,
                        yv,
                        pool,
                        |range, partial, chunk_scratch| {
                            let mut t = 0u64;
                            for blk in &self.blocks[range] {
                                t += block_kernel_flat(
                                    blk.kind,
                                    &self.arena[blk.offset..blk.offset + blk.len],
                                    b,
                                    blk.slots,
                                    xv,
                                    partial,
                                    chunk_scratch,
                                );
                            }
                            t
                        },
                    );
                }
            }
        }
        ternary
    }

    /// Per-block gather-dependency classification, in arena order.
    #[inline]
    pub fn block_classes(&self) -> &[BlockClass] {
        &self.block_class
    }

    /// Block indices (ascending) that need a piece of peer slot `pidx`'s
    /// gather message — the dependency table of the overlapped exchange.
    #[inline]
    pub fn peer_unlocks(&self, pidx: usize) -> &[usize] {
        &self.peer_unlocks[pidx]
    }

    /// Counts of `(owned-only, single-peer, multi-peer)` blocks.
    pub fn readiness_histogram(&self) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for c in &self.block_class {
            match c {
                BlockClass::OwnedOnly => h.0 += 1,
                BlockClass::SinglePeer => h.1 += 1,
                BlockClass::MultiPeer => h.2 += 1,
            }
        }
        h
    }

    /// Creates the runtime readiness state for one overlapped STTSV
    /// invocation over `batch` vectors. `pooled` must match the `pool`
    /// argument of the subsequent [`RankPlan::compute_overlapped`] /
    /// [`RankPlan::finish_overlapped`] calls: without a pool the
    /// overlapped compute extends the arena-order prefix block by block;
    /// with one it mirrors [`chunked_compute_flat`]'s fixed chunk
    /// decomposition so the reduction tree — and therefore every output
    /// bit — matches the barrier path.
    pub fn overlap_state(&self, batch: usize, pooled: bool) -> OverlapState {
        let batch = batch.max(1);
        let n = self.blocks.len();
        let block_pending = self.block_deps.clone();
        let mut chunk_of = None;
        let mut chunk_pending = Vec::new();
        let mut ready_chunks = Vec::new();
        let mut chunks = 0;
        let mut partials = Vec::new();
        if pooled {
            chunks = n.min(MAX_COMPUTE_CHUNKS);
            let mut of = vec![0usize; n];
            chunk_pending = vec![0usize; chunks];
            for (c, pending) in chunk_pending.iter_mut().enumerate() {
                let lo = c * n / chunks;
                let hi = (c + 1) * n / chunks;
                for slot in &mut of[lo..hi] {
                    *slot = c;
                }
                *pending = hi - lo;
            }
            for bi in 0..n {
                if block_pending[bi] == 0 {
                    chunk_pending[of[bi]] -= 1;
                    if chunk_pending[of[bi]] == 0 {
                        ready_chunks.push(of[bi]);
                    }
                }
            }
            chunk_of = Some(of);
            partials = vec![vec![None; chunks]; batch];
        }
        let mut peer_rows_pending = vec![0usize; self.peers.len()];
        for (t, peers) in self.row_peers.iter().enumerate() {
            if self.row_writers[t] > 0 {
                for &pidx in peers {
                    peer_rows_pending[pidx] += 1;
                }
            }
        }
        OverlapState {
            batch,
            started: false,
            block_pending,
            next_block: 0,
            chunks,
            chunk_of,
            chunk_pending,
            ready_chunks,
            partials,
            row_pending: self.row_writers.clone(),
            peer_rows_pending,
            flushable: Vec::new(),
            computed: 0,
            ternary: 0,
        }
    }

    /// Records the arrival of peer slot `pidx`'s gather message (call
    /// right after [`RankPlan::unpack`]ing it): decrements the pending
    /// count of every block in its dependency table, promoting blocks —
    /// and, in pooled mode, whole chunks — to ready.
    pub fn note_gather_arrival(&self, st: &mut OverlapState, pidx: usize) {
        for &bi in &self.peer_unlocks[pidx] {
            st.block_pending[bi] -= 1;
            if st.block_pending[bi] == 0 {
                if let Some(chunk_of) = &st.chunk_of {
                    let c = chunk_of[bi];
                    st.chunk_pending[c] -= 1;
                    if st.chunk_pending[c] == 0 {
                        st.ready_chunks.push(c);
                    }
                }
            }
        }
    }

    /// Advances the overlapped compute over everything currently ready.
    /// Call once before draining the gather (computes owned-only work)
    /// and after each [`RankPlan::note_gather_arrival`]. Without a pool
    /// this extends the arena-order prefix (block-major over the batch —
    /// bit-identical to the barrier order because distinct vectors write
    /// disjoint slabs) and finalizes rows for the early reduce flush; with
    /// a pool it computes ready chunks into leased zeroed partials that
    /// [`RankPlan::finish_overlapped`] reduces in canonical chunk order.
    pub fn compute_overlapped(
        &self,
        ws: &mut PlanWorkspace,
        st: &mut OverlapState,
        pool: Option<&Pool>,
    ) {
        if !st.started {
            st.started = true;
            let stride = self.stride();
            ws.y[..st.batch * stride].fill(0.0);
            // Peers whose reduce pieces touch only writer-less rows are
            // flushable immediately: those y ranges are final (zero).
            for (pidx, &pending) in st.peer_rows_pending.iter().enumerate() {
                if pending == 0 {
                    st.flushable.push(pidx);
                }
            }
        }
        match pool {
            None => self.advance_prefix(ws, st),
            Some(pool) => self.advance_chunks(ws, st, pool),
        }
    }

    /// Completes the overlapped compute after every gather message has
    /// been received and noted: computes any remaining chunks on the pool,
    /// runs the canonical per-vector reduction tree (pooled mode), marks
    /// every remaining peer's reduce message flushable, and returns the
    /// exact ternary-multiplication count — equal to what
    /// [`RankPlan::compute`] reports for the same inputs.
    pub fn finish_overlapped(
        &self,
        ws: &mut PlanWorkspace,
        st: &mut OverlapState,
        pool: Option<&Pool>,
    ) -> u64 {
        self.compute_overlapped(ws, st, pool);
        let stride = self.stride();
        match pool {
            None => {
                assert_eq!(
                    st.next_block,
                    self.blocks.len(),
                    "finish_overlapped before all gather arrivals were noted"
                );
            }
            Some(pool) => {
                // Tail chunks (typically unlocked by the final arrivals)
                // run in parallel on the pool, like the barrier path.
                let tail = std::mem::take(&mut st.ready_chunks);
                let batch = st.batch;
                let chunk_count = st.chunks;
                if !tail.is_empty() {
                    let b = self.b;
                    let wsp = pool.workspaces();
                    let x = &ws.x;
                    let results = pool.run_chunks(tail.len(), |i| {
                        let c = tail[i];
                        let mut bufs = Vec::with_capacity(batch);
                        let mut ternary = 0u64;
                        for v in 0..batch {
                            let mut buf = wsp.lease_zeroed(stride + 3 * b);
                            let (partial, chunk_scratch) = buf.split_at_mut(stride);
                            ternary += self.run_chunk(
                                c,
                                chunk_count,
                                &x[v * stride..(v + 1) * stride],
                                partial,
                                chunk_scratch,
                            );
                            bufs.push(buf);
                        }
                        (c, bufs, ternary)
                    });
                    let n = self.blocks.len();
                    for (c, bufs, ternary) in results {
                        st.ternary += ternary;
                        st.computed += (c + 1) * n / chunk_count - c * n / chunk_count;
                        for (v, buf) in bufs.into_iter().enumerate() {
                            st.partials[v][c] = Some(buf);
                        }
                    }
                }
                // Canonical reduction: per vector, the same fixed pairwise
                // tree over per-chunk partials in chunk order as
                // `chunked_compute_flat` — chunk *completion* order never
                // leaks into the result.
                let wsp = pool.workspaces();
                for v in 0..batch {
                    let parts: Vec<Vec<f64>> = st.partials[v]
                        .iter_mut()
                        .map(|p| p.take().expect("every chunk computed before finish"))
                        .collect();
                    if let Some(acc) = symtensor_pool::tree_reduce(parts, |mut a, bb| {
                        add_into(&mut a[..stride], &bb[..stride]);
                        wsp.give_back(bb);
                        a
                    }) {
                        add_into(&mut ws.y[v * stride..(v + 1) * stride], &acc[..stride]);
                        wsp.give_back(acc);
                    }
                }
                // All rows are final now; release every unflushed peer.
                for (pidx, pending) in st.peer_rows_pending.iter_mut().enumerate() {
                    if *pending > 0 {
                        *pending = 0;
                        st.flushable.push(pidx);
                    }
                }
            }
        }
        st.ternary
    }

    /// No-pool overlapped compute: extend the computed prefix of the
    /// arena while the next block's dependencies are satisfied.
    fn advance_prefix(&self, ws: &mut PlanWorkspace, st: &mut OverlapState) {
        let stride = self.stride();
        let b = self.b;
        let PlanWorkspace { x, y, scratch, .. } = ws;
        while st.next_block < self.blocks.len() && st.block_pending[st.next_block] == 0 {
            let bi = st.next_block;
            let blk = &self.blocks[bi];
            let data = &self.arena[blk.offset..blk.offset + blk.len];
            for v in 0..st.batch {
                let xv = &x[v * stride..(v + 1) * stride];
                let yv = &mut y[v * stride..(v + 1) * stride];
                st.ternary += block_kernel_flat(blk.kind, data, b, blk.slots, xv, yv, scratch);
            }
            st.next_block += 1;
            st.computed += 1;
            self.note_block_done(st, bi);
        }
    }

    /// Pooled overlapped compute: run chunks that became fully ready,
    /// inline on the calling (comm) thread, into leased zeroed partials.
    fn advance_chunks(&self, ws: &mut PlanWorkspace, st: &mut OverlapState, pool: &Pool) {
        let stride = self.stride();
        let b = self.b;
        let ready = std::mem::take(&mut st.ready_chunks);
        let wsp = pool.workspaces();
        for c in ready {
            for v in 0..st.batch {
                let mut buf = wsp.lease_zeroed(stride + 3 * b);
                let (partial, chunk_scratch) = buf.split_at_mut(stride);
                st.ternary += self.run_chunk(
                    c,
                    st.chunks,
                    &ws.x[v * stride..(v + 1) * stride],
                    partial,
                    chunk_scratch,
                );
                st.partials[v][c] = Some(buf);
            }
            let n = self.blocks.len();
            st.computed += (c + 1) * n / st.chunks - c * n / st.chunks;
        }
    }

    /// Runs chunk `c` of the canonical `chunks`-way decomposition over
    /// one x slab, accumulating into `partial` (same bounds arithmetic as
    /// [`chunked_compute_flat`]).
    fn run_chunk(
        &self,
        c: usize,
        chunks: usize,
        xv: &[f64],
        partial: &mut [f64],
        scratch: &mut [f64],
    ) -> u64 {
        let n = self.blocks.len();
        let lo = c * n / chunks;
        let hi = (c + 1) * n / chunks;
        let mut ternary = 0u64;
        for blk in &self.blocks[lo..hi] {
            ternary += block_kernel_flat(
                blk.kind,
                &self.arena[blk.offset..blk.offset + blk.len],
                self.b,
                blk.slots,
                xv,
                partial,
                scratch,
            );
        }
        ternary
    }

    /// Bookkeeping after a block finished for all batch vectors: count
    /// down its rows; a row hitting zero finalizes the corresponding y
    /// ranges, releasing peers whose reduce pieces are now all final.
    fn note_block_done(&self, st: &mut OverlapState, bi: usize) {
        let mut slots = self.blocks[bi].slots;
        slots.sort_unstable();
        for (s, &t) in slots.iter().enumerate() {
            if s > 0 && slots[s - 1] == t {
                continue;
            }
            st.row_pending[t] -= 1;
            if st.row_pending[t] == 0 {
                for &pidx in &self.row_peers[t] {
                    st.peer_rows_pending[pidx] -= 1;
                    if st.peer_rows_pending[pidx] == 0 {
                        st.flushable.push(pidx);
                    }
                }
            }
        }
    }

    /// Copies this rank's shards of output slab `v` into caller-provided
    /// shard vectors (allocation-free when `out` has the right lengths).
    pub fn extract_into(&self, ws: &PlanWorkspace, v: usize, out: &mut [Vec<f64>]) {
        assert_eq!(out.len(), self.t_count);
        let base = v * self.stride();
        for (t, (&(start, len), dst)) in self.my_shards.iter().zip(out).enumerate() {
            dst.clear();
            dst.extend_from_slice(
                &ws.y[base + t * self.b + start..base + t * self.b + start + len],
            );
        }
    }

    /// Allocating convenience form of [`RankPlan::extract_into`].
    pub fn extract(&self, ws: &PlanWorkspace, v: usize) -> Vec<Vec<f64>> {
        let base = v * self.stride();
        self.my_shards
            .iter()
            .enumerate()
            .map(|(t, &(start, len))| {
                ws.y[base + t * self.b + start..base + t * self.b + start + len].to_vec()
            })
            .collect()
    }
}

/// Runtime readiness state of one overlapped exchange: per-block pending
/// counts driven by [`RankPlan::note_gather_arrival`], the compute cursor
/// (arena prefix without a pool, chunk partials with one), and the
/// early-flush countdowns that release peers' reduce messages as their y
/// rows finalize. Created fresh per invocation by
/// [`RankPlan::overlap_state`]; all advancement goes through
/// [`RankPlan::compute_overlapped`] / [`RankPlan::finish_overlapped`].
#[derive(Debug)]
pub struct OverlapState {
    /// Vectors in this invocation (fixed at creation).
    batch: usize,
    /// First `compute_overlapped` call zeroes the y slabs and seeds the
    /// initially flushable peers.
    started: bool,
    /// Un-arrived contributing peers per block.
    block_pending: Vec<usize>,
    /// Arena cursor of the no-pool prefix extension.
    next_block: usize,
    /// Canonical chunk count (pooled mode; 0 otherwise).
    chunks: usize,
    /// block index → chunk (pooled mode only).
    chunk_of: Option<Vec<usize>>,
    /// Not-yet-ready blocks per chunk (pooled mode).
    chunk_pending: Vec<usize>,
    /// Chunks whose blocks are all unlocked but not yet computed.
    ready_chunks: Vec<usize>,
    /// Computed per-chunk partials, `partials[v][chunk]` (pooled mode).
    partials: Vec<Vec<Option<Vec<f64>>>>,
    /// Uncomputed blocks per row slot.
    row_pending: Vec<usize>,
    /// Unfinalized rows per peer's reduce message.
    peer_rows_pending: Vec<usize>,
    /// Peer slots whose reduce message became flushable and has not been
    /// taken yet.
    flushable: Vec<usize>,
    /// Blocks computed so far (across all batch vectors at once).
    computed: usize,
    /// Ternary multiplications accumulated so far.
    ternary: u64,
}

impl OverlapState {
    /// Drains the peer slots whose reduce message became flushable since
    /// the last call (each peer appears exactly once over the whole
    /// invocation). The caller may pack and send those y contributions
    /// immediately — their piece ranges are final.
    pub fn take_flushable(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.flushable)
    }

    /// Blocks whose dependencies have not all arrived yet.
    pub fn pending_blocks(&self) -> usize {
        self.block_pending.iter().filter(|&&p| p > 0).count()
    }

    /// Blocks already computed (prefix length in no-pool mode; sum of
    /// computed chunks' spans in pooled mode).
    pub fn computed_blocks(&self) -> usize {
        self.computed
    }
}

/// The mutable steady state paired with a [`RankPlan`]: flat `x`/`y`
/// slabs, the shared `3b` kernel scratch, and the recycled message
/// buffers. One allocation burst at warm-up, zero afterwards.
#[derive(Debug, Default)]
pub struct PlanWorkspace {
    /// Flat input slabs, `batch_cap · |R_p| · b` words, vector-major.
    x: Vec<f64>,
    /// Flat output slabs, same geometry.
    y: Vec<f64>,
    /// The `3b`-word kernel scratch (yi/yj/yk locals).
    scratch: Vec<f64>,
    /// Free list of recycled message buffers.
    bufs: Vec<Vec<f64>>,
    /// Recycled outer vector for the all-to-all collective.
    pub(crate) a2a_send: Vec<Vec<f64>>,
    /// Vectors the slabs currently accommodate.
    batch_cap: usize,
    /// Capacity every leased message buffer is promoted to (the global
    /// maximum message size × batch), so each buffer grows at most once.
    buf_target: usize,
    /// Heap-touching events: slab growth + message-buffer promotions.
    /// Flat across iterations ⇔ allocation-free steady state.
    fresh: u64,
}

impl PlanWorkspace {
    /// An empty workspace; sized lazily by [`RankPlan::ensure_capacity`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a message buffer from the free list (or a fresh one),
    /// promoted to the global capacity target so it never grows again.
    fn take_buf(&mut self) -> Vec<f64> {
        let mut buf = self.bufs.pop().unwrap_or_default();
        buf.clear();
        if buf.capacity() < self.buf_target {
            self.fresh += 1;
            buf.reserve(self.buf_target);
        }
        buf
    }

    /// Returns a buffer to the free list (used for buffers that were
    /// taken but not sent, e.g. the padded mode's self slot).
    pub fn give_back(&mut self, buf: Vec<f64>) {
        self.bufs.push(buf);
    }

    /// Buffers currently in the free list.
    pub fn pooled_bufs(&self) -> usize {
        self.bufs.len()
    }

    /// Cumulative heap-touching events (slab growth and message-buffer
    /// promotions). A flat reading across iterations is the
    /// steady-state-zero-allocation witness (the `compute:kernel` span's
    /// `plan:fresh_allocs` counter).
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TetraPartition;
    use symtensor_core::generate::random_symmetric;
    use symtensor_steiner::spherical;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(n: usize, q: u64, rank: usize) -> (TetraPartition, OwnedBlocks, RankPlan) {
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(1000 + rank as u64);
        let tensor = random_symmetric(n, &mut rng);
        let owned = OwnedBlocks::extract(&tensor, &part, rank);
        let plan = RankPlan::build(&part, &owned, rank);
        (part, owned, plan)
    }

    #[test]
    fn arena_is_contiguous_and_complete() {
        let (_part, owned, plan) = plan_for(30, 2, 3);
        assert_eq!(plan.arena.len(), owned.words());
        assert_eq!(plan.block_count(), owned.blocks.len());
        let mut expected_offset = 0;
        for (pb, ob) in plan.blocks.iter().zip(&owned.blocks) {
            assert_eq!(pb.offset, expected_offset, "blocks are packed back-to-back");
            assert_eq!(pb.len, ob.data.len());
            assert_eq!(pb.kind, ob.kind);
            assert_eq!(&plan.arena[pb.offset..pb.offset + pb.len], ob.data.as_slice());
            expected_offset += pb.len;
        }
        assert!(plan.arena_bytes() == owned.words() * 8);
    }

    #[test]
    fn peer_layout_matches_partition_shards() {
        let (part, _owned, plan) = plan_for(30, 2, 0);
        let rp = part.r_set(0);
        // Every non-self rank appears exactly once, in order.
        let peer_ranks: Vec<usize> = plan.peers().iter().map(|pp| pp.peer).collect();
        let expect: Vec<usize> = (0..part.num_procs()).filter(|&p| p != 0).collect();
        assert_eq!(peer_ranks, expect);
        for pp in plan.peers() {
            let shared = shared_row_blocks(&part, 0, pp.peer);
            assert_eq!(pp.pieces.len(), shared.len());
            for (pc, &i) in pp.pieces.iter().zip(&shared) {
                assert_eq!(rp[pc.t], i);
                let my = part.shard_range(i, 0);
                let pr = part.shard_range(i, pp.peer);
                assert_eq!((pc.my_start, pc.my_len), (my.start, my.len()));
                assert_eq!((pc.peer_start, pc.peer_len), (pr.start, pr.len()));
            }
            assert_eq!(plan.peer_slot(pp.peer), Some(plan.peer_index[pp.peer]));
        }
        assert_eq!(plan.peer_slot(0), None);
    }

    #[test]
    fn readiness_partition_covers_every_block() {
        let (_part, _owned, plan) = plan_for(30, 2, 2);
        let (owned_only, single, multi) = plan.readiness_histogram();
        assert_eq!(owned_only + single + multi, plan.block_count());
        // peer_unlocks inverts block_deps: each block appears in exactly
        // `deps` peers' tables, ascending.
        let mut appearances = vec![0usize; plan.block_count()];
        for pidx in 0..plan.peers().len() {
            let unlocks = plan.peer_unlocks(pidx);
            assert!(unlocks.windows(2).all(|w| w[0] < w[1]), "ascending, no dups");
            for &bi in unlocks {
                appearances[bi] += 1;
            }
        }
        for (bi, (&count, class)) in appearances.iter().zip(plan.block_classes()).enumerate() {
            match class {
                BlockClass::OwnedOnly => assert_eq!(count, 0, "block {bi}"),
                BlockClass::SinglePeer => assert_eq!(count, 1, "block {bi}"),
                BlockClass::MultiPeer => assert!(count >= 2, "block {bi}"),
            }
        }
    }

    #[test]
    fn overlapped_compute_is_bitwise_identical_to_barrier() {
        use rand::Rng;
        for (threads, batch) in [(0usize, 1usize), (0, 3), (3, 1), (3, 2)] {
            let (_part, _owned, plan) = plan_for(30, 2, 1);
            let pool = (threads > 0).then(|| Pool::new(threads));
            let mut rng = StdRng::seed_from_u64(42 + threads as u64);
            let x_full: Vec<Vec<Vec<f64>>> = (0..batch)
                .map(|v| {
                    (0..plan.row_block_count())
                        .map(|t| {
                            (0..plan.block_size())
                                .map(|w| ((v * 131 + t * 17 + w) % 23) as f64 - 11.0)
                                .collect()
                        })
                        .collect()
                })
                .collect();
            // Barrier reference.
            let mut ws_ref = PlanWorkspace::new();
            plan.ensure_capacity(&mut ws_ref, batch);
            for (v, xf) in x_full.iter().enumerate() {
                plan.load_full(&mut ws_ref, v, xf);
            }
            let ternary_ref = plan.compute(&mut ws_ref, batch, pool.as_ref());
            // Overlapped, with peer arrivals in a shuffled order.
            let mut ws = PlanWorkspace::new();
            plan.ensure_capacity(&mut ws, batch);
            for (v, xf) in x_full.iter().enumerate() {
                plan.load_full(&mut ws, v, xf);
            }
            let mut st = plan.overlap_state(batch, pool.is_some());
            plan.compute_overlapped(&mut ws, &mut st, pool.as_ref());
            let mut order: Vec<usize> = (0..plan.peers().len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..i + 1));
            }
            let mut flushed = Vec::new();
            flushed.extend(st.take_flushable());
            for pidx in order {
                plan.note_gather_arrival(&mut st, pidx);
                plan.compute_overlapped(&mut ws, &mut st, pool.as_ref());
                flushed.extend(st.take_flushable());
            }
            let ternary = plan.finish_overlapped(&mut ws, &mut st, pool.as_ref());
            flushed.extend(st.take_flushable());
            assert_eq!(ternary, ternary_ref, "threads={threads} batch={batch}");
            assert_eq!(st.pending_blocks(), 0);
            assert_eq!(st.computed_blocks(), plan.block_count());
            // Every peer's reduce message flushes exactly once.
            flushed.sort_unstable();
            let expect: Vec<usize> = (0..plan.peers().len()).collect();
            assert_eq!(flushed, expect, "threads={threads} batch={batch}");
            for v in 0..batch {
                let got = plan.output_slab(&ws, v);
                let want = plan.output_slab(&ws_ref, v);
                assert!(
                    got.iter().zip(want).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "slab {v} differs (threads={threads} batch={batch})"
                );
            }
        }
    }

    #[test]
    fn workspace_buffers_grow_at_most_once() {
        let (_part, _owned, plan) = plan_for(30, 2, 1);
        let mut ws = PlanWorkspace::new();
        plan.ensure_capacity(&mut ws, 2);
        let after_sizing = ws.fresh_allocs();
        // Simulate a message cycle: take, "send/recv", give back.
        for _ in 0..4 {
            let buf = ws.take_buf();
            assert!(buf.capacity() >= ws.buf_target);
            ws.give_back(buf);
        }
        // Only the very first take could promote; the rest are free.
        assert_eq!(ws.fresh_allocs(), after_sizing + 1);
        // Re-sizing to a smaller batch is a no-op.
        plan.ensure_capacity(&mut ws, 1);
        assert_eq!(ws.fresh_allocs(), after_sizing + 1);
    }
}
