//! Compiled rank plans: the allocation-free steady state for iterated
//! STTSV.
//!
//! Under the owner-compute rule a rank's tetrahedral blocks, its exchange
//! partners and every message layout are **fixed for the lifetime of the
//! distribution** — yet the straightforward hot path rebuilds all of that
//! per call: nested `Vec<Vec<f64>>` exchange buffers, per-block row-slot
//! lookups, per-block local accumulators. A [`RankPlan`] resolves
//! everything once, at compile time:
//!
//! * **Contiguous block arena** — all of the rank's owned blocks packed
//!   into one `(i, j, k)`-sorted slab, with a per-block
//!   offset / kind / slot table ([`PlanBlock`]). The `row_pos` lookup is
//!   resolved *once* into precomputed x/y slot indices instead of being
//!   dispatched per block per call.
//! * **Flat exchange state** — one flat `x` slab and one flat `y` slab
//!   (`batch · |R_p| · b` words each) replace the nested per-row-block
//!   vectors, and every peer message's piece layout ([`PieceMeta`]) is
//!   precomputed from the partition's shard ranges.
//! * **Recycled message buffers** — a [`PlanWorkspace`] keeps a free list
//!   of message `Vec`s; received buffers are fed back as future send
//!   buffers (the exchange graph is balanced, so the list stays
//!   replenished). Buffers are promoted to the *global* maximum message
//!   capacity on first reuse, so every buffer grows at most once and the
//!   steady state performs **zero heap allocations** (the simulated
//!   transport's channel nodes excepted — those belong to the machine,
//!   not the algorithm).
//!
//! The plan's kernels are the same flat register-tiled kernels as
//! [`crate::blocks`] (shared down to the `row_segment` inner loop of
//! `core::seq`), its pooled compute funnels through the same chunk
//! decomposition and [`symtensor_pool::tree_reduce`] tree, and its message
//! layouts byte-match the legacy exchange — so the plan path is
//! **bit-identical** to the legacy path across runs and thread counts, and
//! its word/message/round counts are exactly the legacy ones.

use crate::blocks::{add_into, block_kernel_flat, chunked_compute_flat, OwnedBlocks};
use crate::partition::TetraPartition;
use crate::schedule::shared_row_blocks;
use crate::tetra::BlockKind;
use symtensor_pool::Pool;

/// One owned block inside the packed arena.
#[derive(Clone, Copy, Debug)]
pub struct PlanBlock {
    /// Offset of the block's data within [`RankPlan::arena`].
    pub offset: usize,
    /// Stored words.
    pub len: usize,
    /// Block classification (selects the kernel).
    pub kind: BlockKind,
    /// Precomputed row slots (positions within `R_p`) of the block's
    /// `(i, j, k)` row blocks — the compiled form of the `row_pos` lookup.
    pub slots: [usize; 3],
}

/// The layout of one message piece: the shard geometry of a row block
/// shared with a peer, precomputed for both exchange phases.
#[derive(Clone, Copy, Debug)]
pub struct PieceMeta {
    /// The shared row block's slot (position within `R_p`).
    pub t: usize,
    /// Start of *this rank's* shard within the row block.
    pub my_start: usize,
    /// Length of this rank's shard.
    pub my_len: usize,
    /// Start of the *peer's* shard within the row block.
    pub peer_start: usize,
    /// Length of the peer's shard.
    pub peer_len: usize,
}

/// Precompiled exchange layout for one peer.
#[derive(Clone, Debug)]
pub struct PeerPlan {
    /// The peer's rank.
    pub peer: usize,
    /// One piece per shared row block, ascending block index — the same
    /// order the legacy exchange packs, so messages byte-match.
    pub pieces: Vec<PieceMeta>,
    /// Per-vector words this rank sends in gather (= receives in reduce).
    pub my_words: usize,
    /// Per-vector words this rank receives in gather (= sends in reduce).
    pub peer_words: usize,
}

/// Which exchange phase a pack/unpack call serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Phase 1: gather full `x` row blocks (send my shards, receive peers').
    Gather,
    /// Phase 3: reduce partial `y` (send peers' shards, accumulate mine).
    Reduce,
}

/// The compiled, immutable per-rank plan (see module docs). Built once by
/// [`RankPlan::build`] / [`crate::algorithm5::RankContext::compile`] and
/// reused across every subsequent `sttsv` / `sttsv_multi` / HOPM
/// iteration.
#[derive(Clone, Debug)]
pub struct RankPlan {
    rank: usize,
    b: usize,
    t_count: usize,
    /// All owned block data, packed contiguously in `(i, j, k)` order.
    arena: Vec<f64>,
    blocks: Vec<PlanBlock>,
    /// Every peer (all ranks but this one), in rank order — matching the
    /// legacy all-to-all peer iteration.
    peers: Vec<PeerPlan>,
    /// rank → index into `peers` (`usize::MAX` for self).
    peer_index: Vec<usize>,
    /// `(start, len)` of this rank's shard within each owned row block.
    my_shards: Vec<(usize, usize)>,
    /// Per-vector uniform message size of [`crate::Mode::AllToAllPadded`].
    pad_unit: usize,
    /// Global per-vector maximum message size over *all* rank pairs and
    /// both phases (incl. padding) — the buffer promotion target that
    /// makes recycled buffers grow at most once machine-wide.
    max_msg_unit: usize,
}

impl RankPlan {
    /// Compiles the plan for `rank`: packs `owned`'s blocks into the arena,
    /// resolves the slot table and precomputes every peer's message layout.
    /// One-time cost; everything downstream is allocation-free reuse.
    pub fn build(part: &TetraPartition, owned: &OwnedBlocks, rank: usize) -> Self {
        let b = part.block_size();
        let rp = part.r_set(rank);
        let t_count = rp.len();
        let row_pos = |i: usize| rp.binary_search(&i).expect("owned row block in R_p");
        let slots = owned.slot_table(&row_pos);
        let mut arena = Vec::with_capacity(owned.words());
        let blocks: Vec<PlanBlock> = owned
            .blocks
            .iter()
            .zip(&slots)
            .map(|(blk, &s)| {
                let offset = arena.len();
                arena.extend_from_slice(&blk.data);
                PlanBlock { offset, len: blk.data.len(), kind: blk.kind, slots: s }
            })
            .collect();
        debug_assert!(
            owned.blocks.windows(2).all(|w| {
                let (a, c) = (&w[0].idx, &w[1].idx);
                (a.i, a.j, a.k) <= (c.i, c.j, c.k)
            }),
            "owned blocks arrive (i, j, k)-sorted"
        );

        let my_shards: Vec<(usize, usize)> = rp
            .iter()
            .map(|&i| {
                let r = part.shard_range(i, rank);
                (r.start, r.len())
            })
            .collect();

        let p_count = part.num_procs();
        let mut peer_index = vec![usize::MAX; p_count];
        let mut peers = Vec::with_capacity(p_count.saturating_sub(1));
        for (peer, index_slot) in peer_index.iter_mut().enumerate() {
            if peer == rank {
                continue;
            }
            let pieces: Vec<PieceMeta> = shared_row_blocks(part, rank, peer)
                .into_iter()
                .map(|i| {
                    let my = part.shard_range(i, rank);
                    let pr = part.shard_range(i, peer);
                    PieceMeta {
                        t: row_pos(i),
                        my_start: my.start,
                        my_len: my.len(),
                        peer_start: pr.start,
                        peer_len: pr.len(),
                    }
                })
                .collect();
            let my_words = pieces.iter().map(|pc| pc.my_len).sum();
            let peer_words = pieces.iter().map(|pc| pc.peer_len).sum();
            *index_slot = peers.len();
            peers.push(PeerPlan { peer, pieces, my_words, peer_words });
        }

        let pad_unit = 2 * b.div_ceil(part.lambda1());
        // Global (machine-wide) per-vector message maximum: recycled
        // buffers migrate between ranks with every send, so promoting to
        // the *global* maximum guarantees each buffer grows at most once
        // anywhere in the machine.
        let mut max_msg_unit = pad_unit;
        for a in 0..p_count {
            for c in 0..p_count {
                if a == c {
                    continue;
                }
                let words: usize = shared_row_blocks(part, a, c)
                    .into_iter()
                    .map(|i| part.shard_range(i, a).len())
                    .sum();
                max_msg_unit = max_msg_unit.max(words);
            }
        }

        RankPlan {
            rank,
            b,
            t_count,
            arena,
            blocks,
            peers,
            peer_index,
            my_shards,
            pad_unit,
            max_msg_unit,
        }
    }

    /// The rank this plan was compiled for.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Arena size in bytes (the `compute:kernel` span's
    /// `plan:arena_bytes` counter).
    #[inline]
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<f64>()
    }

    /// Number of packed blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The per-block offset / kind / slot table, in arena (`(i, j, k)`)
    /// order.
    #[inline]
    pub fn blocks(&self) -> &[PlanBlock] {
        &self.blocks
    }

    /// Tetrahedral block size `b` of the underlying partition.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Row blocks owned by this rank (`|R_p|`).
    #[inline]
    pub fn row_block_count(&self) -> usize {
        self.t_count
    }

    /// The compiled peer layouts, in rank order.
    #[inline]
    pub fn peers(&self) -> &[PeerPlan] {
        &self.peers
    }

    /// Index into [`RankPlan::peers`] for `peer`, or `None` for self.
    #[inline]
    pub fn peer_slot(&self, peer: usize) -> Option<usize> {
        self.peer_index.get(peer).copied().filter(|&s| s != usize::MAX)
    }

    /// Per-vector uniform message size of the padded all-to-all mode.
    #[inline]
    pub fn pad_unit(&self) -> usize {
        self.pad_unit
    }

    /// `x`/`y` slab stride of one vector: `|R_p| · b`.
    #[inline]
    fn stride(&self) -> usize {
        self.t_count * self.b
    }

    /// Grows `ws` (if needed) to hold `batch` vectors. Capacity only ever
    /// grows; shrinking a batch reuses the larger slabs. This is the only
    /// place the `x`/`y`/scratch slabs can allocate.
    pub fn ensure_capacity(&self, ws: &mut PlanWorkspace, batch: usize) {
        let batch = batch.max(1);
        if batch > ws.batch_cap {
            ws.fresh += 1;
            let stride = self.stride();
            ws.x.resize(batch * stride, 0.0);
            ws.y.resize(batch * stride, 0.0);
            ws.scratch.resize(3 * self.b, 0.0);
            ws.batch_cap = batch;
            ws.buf_target = self.max_msg_unit * batch;
        }
    }

    /// Loads this rank's shards of one input vector into slab `v` of the
    /// flat `x` state. The remaining shard ranges are filled by
    /// [`RankPlan::unpack`] during the gather phase (the shards of a row
    /// block tile it exactly, so the slab never needs zeroing).
    pub fn load_shards(&self, ws: &mut PlanWorkspace, v: usize, my_shards: &[Vec<f64>]) {
        assert_eq!(my_shards.len(), self.t_count, "one shard per owned row block");
        debug_assert!(v < ws.batch_cap);
        let base = v * self.stride();
        for (t, (&(start, len), shard)) in self.my_shards.iter().zip(my_shards).enumerate() {
            debug_assert_eq!(shard.len(), len);
            ws.x[base + t * self.b + start..base + t * self.b + start + len].copy_from_slice(shard);
        }
    }

    /// Loads *full* gathered row blocks into slab `v` of the `x` state —
    /// the post-gather picture, bypassing the exchange. Used by the
    /// comm-free kernel benchmarks and the equivalence tests.
    pub fn load_full(&self, ws: &mut PlanWorkspace, v: usize, x_full: &[Vec<f64>]) {
        assert_eq!(x_full.len(), self.t_count, "one row block per owned slot");
        debug_assert!(v < ws.batch_cap);
        let base = v * self.stride();
        for (t, block) in x_full.iter().enumerate() {
            assert_eq!(block.len(), self.b);
            ws.x[base + t * self.b..base + (t + 1) * self.b].copy_from_slice(block);
        }
    }

    /// Read-only view of output slab `v` (`|R_p| · b` words, row-slot
    /// major) — the pre-reduce picture, for the same callers as
    /// [`RankPlan::load_full`].
    pub fn output_slab<'a>(&self, ws: &'a PlanWorkspace, v: usize) -> &'a [f64] {
        &ws.y[v * self.stride()..(v + 1) * self.stride()]
    }

    /// Packs the outgoing message for peer slot `pidx`: for each shared
    /// row block (ascending), the `batch` vectors' pieces back-to-back —
    /// byte-identical to the legacy exchange layout. The buffer comes from
    /// the workspace free list (allocation-free in steady state); the
    /// caller sends it (and the peer's unpack recycles it on their side).
    pub fn pack(
        &self,
        ws: &mut PlanWorkspace,
        kind: ExchangeKind,
        pidx: usize,
        batch: usize,
    ) -> Vec<f64> {
        let stride = self.stride();
        let mut buf = ws.take_buf();
        let pp = &self.peers[pidx];
        for pc in &pp.pieces {
            let (src, start, len) = match kind {
                ExchangeKind::Gather => (&ws.x, pc.my_start, pc.my_len),
                ExchangeKind::Reduce => (&ws.y, pc.peer_start, pc.peer_len),
            };
            for v in 0..batch {
                let base = v * stride + pc.t * self.b + start;
                buf.extend_from_slice(&src[base..base + len]);
            }
        }
        buf
    }

    /// Unpacks a received message from peer slot `pidx` and recycles its
    /// buffer into the workspace free list. Gather copies the peer's
    /// shards into the `x` slabs; reduce accumulates the peer's partials
    /// into this rank's shard ranges of the `y` slabs. Padded messages may
    /// carry a zero tail beyond the packed pieces; it is ignored, exactly
    /// like the legacy unpack.
    pub fn unpack(
        &self,
        ws: &mut PlanWorkspace,
        kind: ExchangeKind,
        pidx: usize,
        batch: usize,
        buf: Vec<f64>,
    ) {
        let stride = self.stride();
        let pp = &self.peers[pidx];
        let mut offset = 0;
        for pc in &pp.pieces {
            let (dst, start, len) = match kind {
                ExchangeKind::Gather => (&mut ws.x, pc.peer_start, pc.peer_len),
                ExchangeKind::Reduce => (&mut ws.y, pc.my_start, pc.my_len),
            };
            for v in 0..batch {
                let base = v * stride + pc.t * self.b + start;
                let piece = &buf[offset..offset + len];
                match kind {
                    ExchangeKind::Gather => dst[base..base + len].copy_from_slice(piece),
                    ExchangeKind::Reduce => add_into(&mut dst[base..base + len], piece),
                }
                offset += len;
            }
        }
        ws.bufs.push(buf);
    }

    /// Runs the local kernels over the packed arena for slabs `0..batch`:
    /// zeroes the `y` slabs (a `fill`, not an allocation) and dispatches
    /// each [`PlanBlock`] to the shared flat kernels. With a pool, each
    /// vector funnels through the same chunk decomposition, workspace
    /// leases and reduction tree as [`OwnedBlocks::compute_par`] — so the
    /// result is bit-identical to the legacy path across thread counts.
    /// Returns the exact ternary-multiplication count.
    pub fn compute(&self, ws: &mut PlanWorkspace, batch: usize, pool: Option<&Pool>) -> u64 {
        let mut ternary = 0u64;
        for v in 0..batch {
            ternary += self.compute_vector(ws, v, pool);
        }
        ternary
    }

    /// Runs the local kernels for the single slab `v` — the per-vector
    /// unit [`RankPlan::compute`] is built from, exposed so the serving
    /// driver can time and request-annotate each vector of a batch
    /// individually. Zeroes slab `v` of `y` (a `fill`, not an allocation)
    /// before accumulating; results are bit-identical to the batched form.
    /// Returns the exact ternary-multiplication count.
    pub fn compute_vector(&self, ws: &mut PlanWorkspace, v: usize, pool: Option<&Pool>) -> u64 {
        let stride = self.stride();
        let b = self.b;
        let PlanWorkspace { x, y, scratch, .. } = ws;
        let mut ternary = 0u64;
        {
            let xv = &x[v * stride..(v + 1) * stride];
            let yv = &mut y[v * stride..(v + 1) * stride];
            yv.fill(0.0);
            match pool {
                None => {
                    for blk in &self.blocks {
                        ternary += block_kernel_flat(
                            blk.kind,
                            &self.arena[blk.offset..blk.offset + blk.len],
                            b,
                            blk.slots,
                            xv,
                            yv,
                            scratch,
                        );
                    }
                }
                Some(pool) => {
                    ternary += chunked_compute_flat(
                        self.blocks.len(),
                        b,
                        yv,
                        pool,
                        |range, partial, chunk_scratch| {
                            let mut t = 0u64;
                            for blk in &self.blocks[range] {
                                t += block_kernel_flat(
                                    blk.kind,
                                    &self.arena[blk.offset..blk.offset + blk.len],
                                    b,
                                    blk.slots,
                                    xv,
                                    partial,
                                    chunk_scratch,
                                );
                            }
                            t
                        },
                    );
                }
            }
        }
        ternary
    }

    /// Copies this rank's shards of output slab `v` into caller-provided
    /// shard vectors (allocation-free when `out` has the right lengths).
    pub fn extract_into(&self, ws: &PlanWorkspace, v: usize, out: &mut [Vec<f64>]) {
        assert_eq!(out.len(), self.t_count);
        let base = v * self.stride();
        for (t, (&(start, len), dst)) in self.my_shards.iter().zip(out).enumerate() {
            dst.clear();
            dst.extend_from_slice(
                &ws.y[base + t * self.b + start..base + t * self.b + start + len],
            );
        }
    }

    /// Allocating convenience form of [`RankPlan::extract_into`].
    pub fn extract(&self, ws: &PlanWorkspace, v: usize) -> Vec<Vec<f64>> {
        let base = v * self.stride();
        self.my_shards
            .iter()
            .enumerate()
            .map(|(t, &(start, len))| {
                ws.y[base + t * self.b + start..base + t * self.b + start + len].to_vec()
            })
            .collect()
    }
}

/// The mutable steady state paired with a [`RankPlan`]: flat `x`/`y`
/// slabs, the shared `3b` kernel scratch, and the recycled message
/// buffers. One allocation burst at warm-up, zero afterwards.
#[derive(Debug, Default)]
pub struct PlanWorkspace {
    /// Flat input slabs, `batch_cap · |R_p| · b` words, vector-major.
    x: Vec<f64>,
    /// Flat output slabs, same geometry.
    y: Vec<f64>,
    /// The `3b`-word kernel scratch (yi/yj/yk locals).
    scratch: Vec<f64>,
    /// Free list of recycled message buffers.
    bufs: Vec<Vec<f64>>,
    /// Recycled outer vector for the all-to-all collective.
    pub(crate) a2a_send: Vec<Vec<f64>>,
    /// Vectors the slabs currently accommodate.
    batch_cap: usize,
    /// Capacity every leased message buffer is promoted to (the global
    /// maximum message size × batch), so each buffer grows at most once.
    buf_target: usize,
    /// Heap-touching events: slab growth + message-buffer promotions.
    /// Flat across iterations ⇔ allocation-free steady state.
    fresh: u64,
}

impl PlanWorkspace {
    /// An empty workspace; sized lazily by [`RankPlan::ensure_capacity`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a message buffer from the free list (or a fresh one),
    /// promoted to the global capacity target so it never grows again.
    fn take_buf(&mut self) -> Vec<f64> {
        let mut buf = self.bufs.pop().unwrap_or_default();
        buf.clear();
        if buf.capacity() < self.buf_target {
            self.fresh += 1;
            buf.reserve(self.buf_target);
        }
        buf
    }

    /// Returns a buffer to the free list (used for buffers that were
    /// taken but not sent, e.g. the padded mode's self slot).
    pub fn give_back(&mut self, buf: Vec<f64>) {
        self.bufs.push(buf);
    }

    /// Buffers currently in the free list.
    pub fn pooled_bufs(&self) -> usize {
        self.bufs.len()
    }

    /// Cumulative heap-touching events (slab growth and message-buffer
    /// promotions). A flat reading across iterations is the
    /// steady-state-zero-allocation witness (the `compute:kernel` span's
    /// `plan:fresh_allocs` counter).
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TetraPartition;
    use symtensor_core::generate::random_symmetric;
    use symtensor_steiner::spherical;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(n: usize, q: u64, rank: usize) -> (TetraPartition, OwnedBlocks, RankPlan) {
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(1000 + rank as u64);
        let tensor = random_symmetric(n, &mut rng);
        let owned = OwnedBlocks::extract(&tensor, &part, rank);
        let plan = RankPlan::build(&part, &owned, rank);
        (part, owned, plan)
    }

    #[test]
    fn arena_is_contiguous_and_complete() {
        let (_part, owned, plan) = plan_for(30, 2, 3);
        assert_eq!(plan.arena.len(), owned.words());
        assert_eq!(plan.block_count(), owned.blocks.len());
        let mut expected_offset = 0;
        for (pb, ob) in plan.blocks.iter().zip(&owned.blocks) {
            assert_eq!(pb.offset, expected_offset, "blocks are packed back-to-back");
            assert_eq!(pb.len, ob.data.len());
            assert_eq!(pb.kind, ob.kind);
            assert_eq!(&plan.arena[pb.offset..pb.offset + pb.len], ob.data.as_slice());
            expected_offset += pb.len;
        }
        assert!(plan.arena_bytes() == owned.words() * 8);
    }

    #[test]
    fn peer_layout_matches_partition_shards() {
        let (part, _owned, plan) = plan_for(30, 2, 0);
        let rp = part.r_set(0);
        // Every non-self rank appears exactly once, in order.
        let peer_ranks: Vec<usize> = plan.peers().iter().map(|pp| pp.peer).collect();
        let expect: Vec<usize> = (0..part.num_procs()).filter(|&p| p != 0).collect();
        assert_eq!(peer_ranks, expect);
        for pp in plan.peers() {
            let shared = shared_row_blocks(&part, 0, pp.peer);
            assert_eq!(pp.pieces.len(), shared.len());
            for (pc, &i) in pp.pieces.iter().zip(&shared) {
                assert_eq!(rp[pc.t], i);
                let my = part.shard_range(i, 0);
                let pr = part.shard_range(i, pp.peer);
                assert_eq!((pc.my_start, pc.my_len), (my.start, my.len()));
                assert_eq!((pc.peer_start, pc.peer_len), (pr.start, pr.len()));
            }
            assert_eq!(plan.peer_slot(pp.peer), Some(plan.peer_index[pp.peer]));
        }
        assert_eq!(plan.peer_slot(0), None);
    }

    #[test]
    fn workspace_buffers_grow_at_most_once() {
        let (_part, _owned, plan) = plan_for(30, 2, 1);
        let mut ws = PlanWorkspace::new();
        plan.ensure_capacity(&mut ws, 2);
        let after_sizing = ws.fresh_allocs();
        // Simulate a message cycle: take, "send/recv", give back.
        for _ in 0..4 {
            let buf = ws.take_buf();
            assert!(buf.capacity() >= ws.buf_target);
            ws.give_back(buf);
        }
        // Only the very first take could promote; the rest are free.
        assert_eq!(ws.fresh_allocs(), after_sizing + 1);
        // Re-sizing to a smaller batch is a no-op.
        plan.ensure_capacity(&mut ws, 1);
        assert_eq!(ws.fresh_allocs(), after_sizing + 1);
    }
}
