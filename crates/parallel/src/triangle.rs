//! Triangle block partitioning for symmetric **matrices** — the 2-D scheme
//! of Beaumont et al. (2022) and Al Daas et al. (2023/2025) that the
//! paper's tetrahedral partitioning generalizes to tensors. Implemented
//! here (communication-optimal parallel SYMV) so the 2-D and 3-D schemes
//! can be compared side by side in the same cost framework.
//!
//! The design is the exact 2-D analogue of Section 6:
//!
//! * row blocks `0..m` with `m = q² + q + 1`, one **processor per line**
//!   of the projective plane `PG(2, q)` (`P = m`);
//! * the off-diagonal matrix block `(I, J)`, `I > J`, is owned by the
//!   *unique* line containing `{I, J}` (here `s = 2`, so no Steiner
//!   ambiguity and no matching is needed for off-diagonal blocks);
//! * diagonal blocks `(I, I)` are assigned by a Hall matching on the
//!   point–line incidence graph (`(q+1)`-regular, so a perfect matching
//!   exists);
//! * vector row block `i` is sharded across the `λ₁ = q + 1` lines
//!   through `i`.
//!
//! Per vector each processor moves `q·n/(q² + q + 1) ≈ n/√P` words, which
//! matches the leading term of the 2-D symmetric lower bound
//! `2·√(n(n−1)/P) − 2n/P` — the SYMV shadow of Theorem 5.2.

use symtensor_core::symmat::SymMatrix;
use symtensor_matching::{hopcroft_karp, BipartiteGraph};
use symtensor_mpsim::{CostReport, Universe};
use symtensor_steiner::plane::{projective_plane, Steiner2};

/// The triangle data distribution for one projective plane and dimension.
#[derive(Clone, Debug)]
pub struct TrianglePartition {
    plane: Steiner2,
    n: usize,
    b: usize,
    lambda1: usize,
    q_sets: Vec<Vec<usize>>,
    /// Owner of each off-diagonal block pair `(i, j)`, `i > j` (by unique
    /// line), addressed as `i(i−1)/2 + j`.
    pair_owner: Vec<usize>,
    /// `d_sets[p]` = the diagonal block owned by processor `p`, if any
    /// (for projective planes `P = m` and every processor owns exactly
    /// one; for other `s = 2` designs, e.g. Steiner triple systems,
    /// `P > m` and some processors own none — Fisher's inequality
    /// guarantees `m ≤ P`, so the Hall matching always exists).
    d_sets: Vec<Option<usize>>,
}

impl TrianglePartition {
    /// Builds the distribution for prime power `q` and dimension `n`
    /// (must be a multiple of `m = q² + q + 1`), using the projective
    /// plane `PG(2, q)`.
    pub fn new(q: u64, n: usize) -> Result<Self, String> {
        Self::from_system(projective_plane(q), n)
    }

    /// Builds the distribution from **any** Steiner `(m, r, 2)` system —
    /// e.g. a Bose triple system — with one processor per block.
    pub fn from_system(plane: Steiner2, n: usize) -> Result<Self, String> {
        plane.verify()?;
        let m = plane.num_points();
        if n % m != 0 {
            return Err(format!("n = {n} is not a multiple of m = {m}"));
        }
        let b = n / m;
        let r = plane.block_size();
        let lambda1 = (m - 1) / (r - 1); // blocks through each point
        let q_sets = plane.point_to_blocks();

        let mut pair_owner = vec![usize::MAX; m * (m - 1) / 2];
        for (line_idx, line) in plane.blocks().iter().enumerate() {
            for x in 0..line.len() {
                for y in x + 1..line.len() {
                    let (hi, lo) = (line[y], line[x]);
                    pair_owner[hi * (hi - 1) / 2 + lo] = line_idx;
                }
            }
        }
        debug_assert!(pair_owner.iter().all(|&o| o != usize::MAX));

        // Diagonal blocks: perfect matching point -> line through it.
        let p_count = plane.num_blocks();
        let mut g = BipartiteGraph::new(m, p_count);
        for (point, lines) in q_sets.iter().enumerate() {
            for &line in lines {
                g.add_edge(point, line);
            }
        }
        let matching = hopcroft_karp(&g);
        let mut d_sets: Vec<Option<usize>> = vec![None; p_count];
        for (point, line) in matching.iter().enumerate() {
            let line = line.ok_or("no diagonal matching (corrupt design)")?;
            debug_assert!(d_sets[line].is_none());
            d_sets[line] = Some(point);
        }
        Ok(TrianglePartition { plane, n, b, lambda1, q_sets, pair_owner, d_sets })
    }

    /// Number of processors `P = q² + q + 1`.
    pub fn num_procs(&self) -> usize {
        self.plane.num_blocks()
    }

    /// Number of row blocks `m` (equal to `P` for projective planes,
    /// smaller than `P` for other designs).
    pub fn num_row_blocks(&self) -> usize {
        self.plane.num_points()
    }

    /// Row-block size `b = n/m`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `λ₁ = (m−1)/(r−1)`: processors sharing each row block
    /// (`q + 1` for planes).
    pub fn lambda1(&self) -> usize {
        self.lambda1
    }

    /// `R_p`: the row blocks processor `p` works with (its line's points).
    pub fn r_set(&self, p: usize) -> &[usize] {
        &self.plane.blocks()[p]
    }

    /// `Q_i`: processors requiring row block `i`.
    pub fn q_set(&self, i: usize) -> &[usize] {
        &self.q_sets[i]
    }

    /// Owner of off-diagonal block `(i, j)`, `i ≠ j`.
    pub fn pair_owner(&self, i: usize, j: usize) -> usize {
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        self.pair_owner[hi * (hi - 1) / 2 + lo]
    }

    /// The diagonal block owned by processor `p`, if any.
    pub fn diagonal_of(&self, p: usize) -> Option<usize> {
        self.d_sets[p]
    }

    /// Global index range of row block `i`.
    pub fn block_range(&self, i: usize) -> std::ops::Range<usize> {
        i * self.b..(i + 1) * self.b
    }

    /// Local shard range of row block `i` owned by `p ∈ Q_i`.
    pub fn shard_range(&self, i: usize, p: usize) -> std::ops::Range<usize> {
        let t = self.q_sets[i].binary_search(&p).expect("p must be in Q_i");
        (t * self.b) / self.lambda1..((t + 1) * self.b) / self.lambda1
    }

    /// Verifies the distribution invariants.
    pub fn verify(&self) -> Result<(), String> {
        let m = self.num_row_blocks();
        // Every off-diagonal block's owner contains both indices.
        for i in 0..m {
            for j in 0..i {
                let owner = self.pair_owner(i, j);
                let line = self.r_set(owner);
                if line.binary_search(&i).is_err() || line.binary_search(&j).is_err() {
                    return Err(format!("block ({i},{j}) owner {owner} incompatible"));
                }
            }
        }
        // Diagonal owners contain their index; all diagonals assigned once.
        let mut seen = vec![false; m];
        for p in 0..self.num_procs() {
            let Some(i) = self.d_sets[p] else { continue };
            if self.r_set(p).binary_search(&i).is_err() {
                return Err(format!("diagonal ({i},{i}) owner {p} incompatible"));
            }
            if seen[i] {
                return Err(format!("diagonal {i} assigned twice"));
            }
            seen[i] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err("some diagonal unassigned".to_string());
        }
        Ok(())
    }
}

/// Result of a distributed SYMV run.
#[derive(Clone, Debug)]
pub struct SymvRun {
    /// The product `y = A·x`.
    pub y: Vec<f64>,
    /// Exact per-rank communication costs.
    pub report: CostReport,
}

/// Communication-optimal parallel SYMV on the simulated machine: gathers
/// the `q + 1` row blocks of `x` each rank needs, runs the local triangle
/// kernels, reduce-scatters the partial `y` — structurally identical to
/// Algorithm 5 one dimension down.
pub fn parallel_symv(matrix: &SymMatrix, part: &TrianglePartition, x: &[f64]) -> SymvRun {
    let n = part.dim();
    assert_eq!(matrix.dim(), n);
    assert_eq!(x.len(), n);
    let p_count = part.num_procs();
    let b = part.block_size();

    let (rank_results, report): (Vec<Vec<Vec<f64>>>, CostReport) =
        Universe::new(p_count).run(|comm| {
            let p = comm.rank();
            let rp = part.r_set(p);
            // --- Gather full x row blocks via sparse pairwise all-to-all.
            let mut x_full: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            for (t, &i) in rp.iter().enumerate() {
                let local = part.shard_range(i, p);
                let global = part.block_range(i);
                x_full[t][local.clone()]
                    .copy_from_slice(&x[global.start + local.start..global.start + local.end]);
            }
            let shared = |a: usize, bb: usize| -> Vec<usize> {
                part.r_set(a)
                    .iter()
                    .copied()
                    .filter(|i| part.r_set(bb).binary_search(i).is_ok())
                    .collect()
            };
            let mut sendbufs: Vec<Vec<f64>> = vec![Vec::new(); p_count];
            for (peer, buf) in sendbufs.iter_mut().enumerate() {
                if peer == p {
                    continue;
                }
                for i in shared(p, peer) {
                    let local = part.shard_range(i, p);
                    let global = part.block_range(i);
                    buf.extend_from_slice(&x[global.start + local.start..global.start + local.end]);
                }
            }
            let recvd = comm.all_to_all_v(sendbufs).expect("x gather");
            for (peer, buf) in recvd.iter().enumerate() {
                if peer == p {
                    continue;
                }
                let mut offset = 0;
                for i in shared(p, peer) {
                    let t = rp.binary_search(&i).unwrap();
                    let range = part.shard_range(i, peer);
                    x_full[t][range.clone()].copy_from_slice(&buf[offset..offset + range.len()]);
                    offset += range.len();
                }
            }

            // --- Local compute: off-diagonal blocks of my line + diagonal.
            let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            for ti in 0..rp.len() {
                for tj in 0..ti {
                    let (gi, gj) = (rp[ti] * b, rp[tj] * b);
                    // Only compute blocks this line owns.
                    if part.pair_owner(rp[ti], rp[tj]) != p {
                        continue;
                    }
                    for li in 0..b {
                        let xi = x_full[ti][li];
                        let mut acc = 0.0;
                        for lj in 0..b {
                            let a = matrix.get_sorted(gi + li, gj + lj);
                            acc += a * x_full[tj][lj];
                            y_acc[tj][lj] += a * xi;
                        }
                        y_acc[ti][li] += acc;
                    }
                }
            }
            // Diagonal block (owned by this processor, if any).
            if let Some(di) = part.diagonal_of(p) {
                let td = rp.binary_search(&di).unwrap();
                let gd = di * b;
                for li in 0..b {
                    for lj in 0..=li {
                        let a = matrix.get_sorted(gd + li, gd + lj);
                        if li != lj {
                            y_acc[td][li] += a * x_full[td][lj];
                            y_acc[td][lj] += a * x_full[td][li];
                        } else {
                            y_acc[td][li] += a * x_full[td][li];
                        }
                    }
                }
            }

            // --- Reduce y: ship each peer its shard of my partials.
            let mut sendbufs: Vec<Vec<f64>> = vec![Vec::new(); p_count];
            for (peer, buf) in sendbufs.iter_mut().enumerate() {
                if peer == p {
                    continue;
                }
                for i in shared(p, peer) {
                    let t = rp.binary_search(&i).unwrap();
                    buf.extend_from_slice(&y_acc[t][part.shard_range(i, peer)]);
                }
            }
            let recvd = comm.all_to_all_v(sendbufs).expect("y reduce");
            let mut y_out: Vec<Vec<f64>> = rp
                .iter()
                .enumerate()
                .map(|(t, &i)| y_acc[t][part.shard_range(i, p)].to_vec())
                .collect();
            for (peer, buf) in recvd.iter().enumerate() {
                if peer == p {
                    continue;
                }
                let mut offset = 0;
                for i in shared(p, peer) {
                    let t = rp.binary_search(&i).unwrap();
                    let len = part.shard_range(i, p).len();
                    for (acc, &v) in y_out[t].iter_mut().zip(&buf[offset..offset + len]) {
                        *acc += v;
                    }
                    offset += len;
                }
            }
            y_out
        });

    let mut y = vec![0.0; n];
    for (p, shards) in rank_results.into_iter().enumerate() {
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            y[global.start + local.start..global.start + local.end].copy_from_slice(&shards[t]);
        }
    }
    SymvRun { y, report }
}

/// The 2-D symmetric lower bound (the SYMV shadow of Theorem 5.2):
/// `2·√(n(n−1)/P) − 2n/P`.
pub fn symv_lower_bound(n: usize, p: usize) -> f64 {
    let nn = n as f64;
    2.0 * (nn * (nn - 1.0) / p as f64).sqrt() - 2.0 * nn / p as f64
}

/// Per-vector words each processor moves: `q·b = q·n/(q² + q + 1)`.
pub fn symv_words_per_vector(n: usize, q: usize) -> usize {
    let m = q * q + q + 1;
    q * n / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::symmat::{random_symmetric_matrix, symv_sym};

    #[test]
    fn partitions_verify_for_small_planes() {
        for q in [2u64, 3, 4] {
            let m = (q * q + q + 1) as usize;
            let part = TrianglePartition::new(q, m * (q as usize + 1)).unwrap();
            part.verify().unwrap();
            assert_eq!(part.num_procs(), m);
            assert_eq!(part.lambda1(), q as usize + 1);
        }
    }

    #[test]
    fn parallel_symv_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(201);
        for q in [2u64, 3] {
            let m = (q * q + q + 1) as usize;
            let n = m * (q as usize + 1); // b = q+1 = λ₁, exact shards
            let part = TrianglePartition::new(q, n).unwrap();
            let matrix = random_symmetric_matrix(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64 * 0.02).sin()).collect();
            let run = parallel_symv(&matrix, &part, &x);
            let (y_ref, _) = symv_sym(&matrix, &x);
            for (i, (got, want)) in run.y.iter().zip(&y_ref).enumerate() {
                assert!(
                    (got - want).abs() < 1e-10 * (1.0 + want.abs()),
                    "q={q} y[{i}]: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn words_match_closed_form_and_approach_lower_bound() {
        let q = 3usize;
        let m = q * q + q + 1; // 13
        let n = m * (q + 1) * 4;
        let part = TrianglePartition::new(q as u64, n).unwrap();
        let mut rng = StdRng::seed_from_u64(202);
        let matrix = random_symmetric_matrix(n, &mut rng);
        let x = vec![1.0; n];
        let run = parallel_symv(&matrix, &part, &x);
        let per_vec = symv_words_per_vector(n, q) as u64;
        for cost in &run.report.per_rank {
            assert_eq!(cost.words_sent, 2 * per_vec);
            assert_eq!(cost.words_recv, 2 * per_vec);
        }
        // Above but near the 2-D lower bound.
        let lb = symv_lower_bound(n, part.num_procs());
        let measured = run.report.bandwidth_cost() as f64;
        assert!(measured >= lb * 0.999);
        assert!(measured < lb * 1.5, "measured {measured} vs bound {lb}");
    }

    #[test]
    fn every_processor_owns_its_line_blocks_exactly() {
        // Each pair block owned exactly once overall, diagonals once.
        let part = TrianglePartition::new(2, 7 * 3).unwrap();
        let m = part.num_row_blocks();
        let mut count = 0;
        for i in 0..m {
            for j in 0..i {
                let owner = part.pair_owner(i, j);
                assert!(owner < part.num_procs());
                count += 1;
            }
        }
        assert_eq!(count, m * (m - 1) / 2);
    }
}

/// Result of a distributed SYRK run: the symmetric product stays
/// distributed (each rank holds its triangle blocks); the driver assembles
/// it for convenience.
#[derive(Clone, Debug)]
pub struct SyrkRun {
    /// The assembled symmetric product `C = A·Aᵀ`.
    pub c: SymMatrix,
    /// Exact per-rank communication costs.
    pub report: CostReport,
}

/// Communication-optimal parallel SYRK `C = A·Aᵀ` via the triangle
/// partition — the kernel of Beaumont et al. (2022) / Al Daas et al.
/// (2023). `a` is `n × k` row-major (`a[i*k + l]`). Each rank gathers the
/// `q + 1` row panels of `A` its line needs (`≈ q·n·k/m ≈ nk/√P` words)
/// and computes its owned blocks of `C`; **no `C` entry is ever
/// communicated** (owner-compute, like the tensor case).
pub fn parallel_syrk(a: &[f64], k: usize, part: &TrianglePartition) -> SyrkRun {
    let n = part.dim();
    assert_eq!(a.len(), n * k, "A must be n × k row-major");
    let p_count = part.num_procs();
    let b = part.block_size();

    type RankOut = (Vec<((usize, usize), Vec<f64>)>, Option<Vec<f64>>);
    let (rank_results, report): (Vec<RankOut>, CostReport) = Universe::new(p_count).run(|comm| {
        let p = comm.rank();
        let rp = part.r_set(p);
        // --- Gather full A row panels (b × k each) for my line's points.
        // Sharding: within row block i, the owner at position t of Q_i holds
        // the rows of shard_range(i, ·), each of k columns.
        let mut a_full: Vec<Vec<f64>> = vec![vec![0.0; b * k]; rp.len()];
        for (t, &i) in rp.iter().enumerate() {
            let local = part.shard_range(i, p);
            let g0 = part.block_range(i).start;
            for row in local {
                a_full[t][row * k..(row + 1) * k]
                    .copy_from_slice(&a[(g0 + row) * k..(g0 + row + 1) * k]);
            }
        }
        let shared = |x: usize, y: usize| -> Vec<usize> {
            part.r_set(x)
                .iter()
                .copied()
                .filter(|i| part.r_set(y).binary_search(i).is_ok())
                .collect()
        };
        let mut sendbufs: Vec<Vec<f64>> = vec![Vec::new(); p_count];
        for (peer, buf) in sendbufs.iter_mut().enumerate() {
            if peer == p {
                continue;
            }
            for i in shared(p, peer) {
                let local = part.shard_range(i, p);
                let g0 = part.block_range(i).start;
                for row in local {
                    buf.extend_from_slice(&a[(g0 + row) * k..(g0 + row + 1) * k]);
                }
            }
        }
        let recvd = comm.all_to_all_v(sendbufs).expect("A gather");
        for (peer, buf) in recvd.iter().enumerate() {
            if peer == p {
                continue;
            }
            let mut offset = 0;
            for i in shared(p, peer) {
                let t = rp.binary_search(&i).unwrap();
                for row in part.shard_range(i, peer) {
                    a_full[t][row * k..(row + 1) * k].copy_from_slice(&buf[offset..offset + k]);
                    offset += k;
                }
            }
        }

        // --- Compute owned C blocks; C never moves.
        let mut blocks: Vec<((usize, usize), Vec<f64>)> = Vec::new();
        for ti in 0..rp.len() {
            for tj in 0..ti {
                if part.pair_owner(rp[ti], rp[tj]) != p {
                    continue;
                }
                // Dense b×b block C[I][J] = A_I · A_Jᵀ.
                let mut c = vec![0.0; b * b];
                for li in 0..b {
                    for lj in 0..b {
                        let mut acc = 0.0;
                        for l in 0..k {
                            acc += a_full[ti][li * k + l] * a_full[tj][lj * k + l];
                        }
                        c[li * b + lj] = acc;
                    }
                }
                blocks.push(((rp[ti], rp[tj]), c));
            }
        }
        // Diagonal block: lower triangle of A_I·A_Iᵀ (if owned).
        let diag = part.diagonal_of(p).map(|di| {
            let td = rp.binary_search(&di).unwrap();
            let mut diag = vec![0.0; b * (b + 1) / 2];
            let mut pos = 0;
            for li in 0..b {
                for lj in 0..=li {
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += a_full[td][li * k + l] * a_full[td][lj * k + l];
                    }
                    diag[pos] = acc;
                    pos += 1;
                }
            }
            diag
        });
        (blocks, diag)
    });

    // Assemble the distributed C.
    let mut c = SymMatrix::zeros(n);
    for (p, (blocks, diag)) in rank_results.into_iter().enumerate() {
        for ((bi, bj), data) in blocks {
            let (g0, h0) = (bi * b, bj * b);
            for li in 0..b {
                for lj in 0..b {
                    c.set(g0 + li, h0 + lj, data[li * b + lj]);
                }
            }
        }
        if let (Some(di), Some(diag)) = (part.diagonal_of(p), diag) {
            let g0 = di * b;
            let mut pos = 0;
            for li in 0..b {
                for lj in 0..=li {
                    c.set(g0 + li, g0 + lj, diag[pos]);
                    pos += 1;
                }
            }
        }
    }
    SyrkRun { c, report }
}

/// Words each processor receives (= sends) in the SYRK gather:
/// `k·q·n/(q²+q+1) ≈ n·k/√P`.
pub fn syrk_words(n: usize, k: usize, q: usize) -> usize {
    k * symv_words_per_vector(n, q)
}

#[cfg(test)]
mod syrk_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dense_syrk(a: &[f64], n: usize, k: usize) -> SymMatrix {
        let mut c = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[i * k + l] * a[j * k + l];
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn parallel_syrk_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(210);
        for (q, k) in [(2u64, 3usize), (3, 5)] {
            let m = (q * q + q + 1) as usize;
            let n = m * (q as usize + 1);
            let part = TrianglePartition::new(q, n).unwrap();
            let a: Vec<f64> = (0..n * k).map(|_| rng.gen::<f64>() - 0.5).collect();
            let run = parallel_syrk(&a, k, &part);
            let reference = dense_syrk(&a, n, k);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (run.c.get(i, j) - reference.get(i, j)).abs()
                            < 1e-10 * (1.0 + reference.get(i, j).abs()),
                        "q={q} C[{i},{j}]"
                    );
                }
            }
        }
    }

    #[test]
    fn syrk_moves_no_c_words_and_matches_gather_formula() {
        let q = 3usize;
        let k = 4;
        let m = q * q + q + 1;
        let n = m * (q + 1) * 2;
        let part = TrianglePartition::new(q as u64, n).unwrap();
        let a = vec![1.0; n * k];
        let run = parallel_syrk(&a, k, &part);
        let expect = syrk_words(n, k, q) as u64;
        for cost in &run.report.per_rank {
            // Only the A gather moves data — exactly k × the SYMV x-phase.
            assert_eq!(cost.words_sent, expect);
            assert_eq!(cost.words_recv, expect);
        }
        // nk/√P scaling: measured / (n·k/√P) is a modest constant.
        let scale = (n * k) as f64 / (part.num_procs() as f64).sqrt();
        let ratio = run.report.bandwidth_cost() as f64 / scale;
        assert!(ratio > 0.5 && ratio < 1.5, "ratio {ratio}");
    }
}

#[cfg(test)]
mod sts_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::symmat::{random_symmetric_matrix, symv_sym};
    use symtensor_steiner::plane::bose_triple_system;

    #[test]
    fn triangle_partition_from_bose_triple_systems() {
        // Steiner triple systems give P = n(n−1)/6 > m processors; some
        // ranks own no diagonal block but the distribution stays valid.
        for m in [9usize, 15] {
            let sts = bose_triple_system(m);
            let lambda1 = (m - 1) / 2;
            let n = m * lambda1;
            let part = TrianglePartition::from_system(sts, n).unwrap();
            part.verify().unwrap();
            assert_eq!(part.num_procs(), m * (m - 1) / 6);
            assert!(part.num_procs() > part.num_row_blocks(), "Fisher: P > m for STS");
            let with_diag =
                (0..part.num_procs()).filter(|&p| part.diagonal_of(p).is_some()).count();
            assert_eq!(with_diag, m);
        }
    }

    #[test]
    fn parallel_symv_on_a_triple_system() {
        let m = 9;
        let sts = bose_triple_system(m);
        let n = m * 4; // λ₁ = 4 divides b = 4
        let part = TrianglePartition::from_system(sts, n).unwrap();
        let mut rng = StdRng::seed_from_u64(220);
        let matrix = random_symmetric_matrix(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let run = parallel_symv(&matrix, &part, &x);
        let (y_ref, _) = symv_sym(&matrix, &x);
        for (i, (got, want)) in run.y.iter().zip(&y_ref).enumerate() {
            assert!((got - want).abs() < 1e-10 * (1.0 + want.abs()), "y[{i}]");
        }
    }

    #[test]
    fn parallel_syrk_on_a_triple_system() {
        let m = 9;
        let sts = bose_triple_system(m);
        let n = m * 4;
        let k = 3;
        let part = TrianglePartition::from_system(sts, n).unwrap();
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(221);
        let a: Vec<f64> = (0..n * k).map(|_| rng.gen::<f64>() - 0.5).collect();
        let run = parallel_syrk(&a, k, &part);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[i * k + l] * a[j * k + l];
                }
                assert!((run.c.get(i, j) - acc).abs() < 1e-10 * (1.0 + acc.abs()));
            }
        }
    }
}
