//! Algorithm 5: communication-optimal parallel STTSV.
//!
//! Each processor starts with its tetrahedral tensor blocks and `n/P` words
//! of `x`, and ends with `n/P` words of `y`. The algorithm is three phases:
//!
//! 1. **Gather x** — for every owned row block `i ∈ R_p`, collect the other
//!    `λ₁ − 1` shards from the processors of `Q_i` (lines 10–21),
//! 2. **Local compute** — run the symmetric block kernels over
//!    `TB₃(R_p) ∪ N_p ∪ D_p` (lines 24–36),
//! 3. **Reduce y** — send each peer its shard of the partial `y` row blocks
//!    and sum the incoming partials (lines 38–50).
//!
//! Communication modes:
//!
//! * [`Mode::Scheduled`] — direct point-to-point exchanges following the
//!   edge-colored schedule; per vector each rank moves
//!   `n(q+1)/(q²+1) − n/P` words, matching the lower bound's leading term
//!   exactly (Section 7.2.2).
//! * [`Mode::AllToAllPadded`] — the paper's All-to-All collective variant:
//!   `P − 1` uniform messages of two shards each, costing
//!   `2n/(q+1)·(1 − 1/P)` per vector — twice the leading term.
//! * [`Mode::AllToAllSparse`] — ablation: the same pairwise collective but
//!   with exact (unpadded) message sizes; word counts equal the scheduled
//!   mode while still taking `P − 1` rounds.

use crate::blocks::OwnedBlocks;
use crate::partition::TetraPartition;
use crate::plan::{ExchangeKind, PlanWorkspace, RankPlan};
use crate::schedule::{shared_row_blocks, CommSchedule};
use std::cell::{OnceCell, RefCell};
use symtensor_core::SymTensor3;
use symtensor_mpsim::{AllToAllEvent, Comm, CommEvent, CostReport, FlightSnapshot, Universe};
use symtensor_pool::Pool;
use symtensor_telemetry::keys as telemetry_keys;

/// Runs `f`, adding its wall-clock nanoseconds to `acc` when `enabled`.
/// No clock reads when disabled — the telemetry-off overlap path must stay
/// instruction-identical to the pre-telemetry driver.
#[inline]
fn timed<R>(enabled: bool, acc: &mut u64, f: impl FnOnce() -> R) -> R {
    if !enabled {
        return f();
    }
    let t0 = std::time::Instant::now();
    let r = f();
    *acc += t0.elapsed().as_nanos() as u64;
    r
}

/// Communication strategy for the two vector phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Edge-colored point-to-point schedule (optimal bandwidth and steps).
    Scheduled,
    /// Uniform (padded) All-to-All collective, as analyzed in §7.2.2.
    AllToAllPadded,
    /// All-to-All with exact message sizes (ablation).
    AllToAllSparse,
}

const TAG_X: u64 = 1 << 40;
const TAG_Y: u64 = 2 << 40;

/// Everything one rank needs to run STTSV repeatedly (the tensor blocks are
/// extracted once and reused across iterations, e.g. by HOPM).
pub struct RankContext<'a> {
    /// The shared data distribution.
    pub part: &'a TetraPartition,
    /// This rank's tensor blocks (extracted once, never communicated).
    pub owned: OwnedBlocks,
    /// Communication strategy for the vector phases.
    pub mode: Mode,
    /// The point-to-point schedule (required for [`Mode::Scheduled`]).
    pub schedule: Option<&'a CommSchedule>,
    /// Optional shared-memory worker pool for the local-compute phase
    /// (see [`RankContext::with_pool`]); `None` runs the sequential
    /// kernels.
    pub pool: Option<&'a Pool>,
    /// Whether `sttsv`/`sttsv_multi` route through the compiled rank plan
    /// (see [`RankContext::with_plan`]).
    use_plan: bool,
    /// The lazily compiled plan (see [`RankContext::compile`]).
    plan: OnceCell<RankPlan>,
    /// The plan's reusable flat slabs and recycled message buffers.
    plan_ws: RefCell<PlanWorkspace>,
}

impl<'a> RankContext<'a> {
    /// Builds the context for `rank`, extracting its tensor blocks.
    pub fn new(
        tensor: &SymTensor3,
        part: &'a TetraPartition,
        rank: usize,
        mode: Mode,
        schedule: Option<&'a CommSchedule>,
    ) -> Self {
        Self::from_parts(part, OwnedBlocks::extract(tensor, part, rank), mode, schedule)
    }

    /// Assembles a context from already-extracted blocks — the receiving
    /// end of a tensor scatter, or any caller that obtained
    /// [`OwnedBlocks`] without the global tensor.
    pub fn from_parts(
        part: &'a TetraPartition,
        owned: OwnedBlocks,
        mode: Mode,
        schedule: Option<&'a CommSchedule>,
    ) -> Self {
        assert!(
            mode != Mode::Scheduled || schedule.is_some(),
            "scheduled mode needs a CommSchedule"
        );
        RankContext {
            part,
            owned,
            mode,
            schedule,
            pool: None,
            use_plan: false,
            plan: OnceCell::new(),
            plan_ws: RefCell::new(PlanWorkspace::new()),
        }
    }

    /// Attaches a shared-memory worker pool: the local-compute phase then
    /// runs [`OwnedBlocks::compute_par`] across the pool's threads (results
    /// bit-identical across thread counts) instead of the sequential
    /// kernels. This is the node-level `threads` knob below the simulated
    /// distributed machine.
    pub fn with_pool(mut self, pool: &'a Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Routes every subsequent [`RankContext::sttsv`] /
    /// [`RankContext::sttsv_multi`] call through the compiled rank plan:
    /// the first call invokes [`RankContext::compile`] lazily (packing the
    /// owned blocks into one contiguous arena and precomputing every
    /// message layout), and the steady state thereafter performs zero heap
    /// allocations. Results are **bit-identical** to the legacy path, and
    /// word/message/round counts are unchanged.
    pub fn with_plan(mut self) -> Self {
        self.use_plan = true;
        self
    }

    /// Compiles (on first call) and returns this rank's [`RankPlan`]; all
    /// later calls — and every plan-routed `sttsv`/`sttsv_multi`/HOPM
    /// iteration — reuse it.
    pub fn compile(&self, rank: usize) -> &RankPlan {
        let plan = self.plan.get_or_init(|| RankPlan::build(self.part, &self.owned, rank));
        assert_eq!(plan.rank(), rank, "one RankContext serves one rank");
        plan
    }

    /// The compiled plan, if [`RankContext::compile`] has run.
    pub fn plan(&self) -> Option<&RankPlan> {
        self.plan.get()
    }

    /// Steady-state heap events of the plan workspace (slab growth +
    /// message-buffer promotions); flat across iterations once warm.
    pub fn plan_fresh_allocs(&self) -> u64 {
        self.plan_ws.borrow().fresh_allocs()
    }

    /// Runs the local ternary-multiplication kernels, on the attached pool
    /// if any, inside a nested `compute:kernel` phase span (so traces show
    /// the pure kernel time within the enclosing `local-compute` phase).
    fn local_kernels(&self, comm: &Comm, x_full: &[Vec<f64>], y_acc: &mut [Vec<f64>]) -> u64 {
        let part = self.part;
        let p = comm.rank();
        let rp = part.r_set(p);
        comm.with_phase("compute:kernel", || match self.pool {
            Some(pool) => {
                self.owned.compute_par(x_full, y_acc, |i| rp.binary_search(&i).unwrap(), pool)
            }
            None => self.owned.compute(x_full, y_acc, |i| rp.binary_search(&i).unwrap()),
        })
    }

    /// One distributed STTSV: `my_shards[t]` is this rank's shard of row
    /// block `R_p[t]` of `x`; returns this rank's shards of `y` (same
    /// keying) and the ternary-multiplication count.
    pub fn sttsv(&self, comm: &Comm, my_shards: &[Vec<f64>]) -> (Vec<Vec<f64>>, u64) {
        if self.use_plan {
            return self.sttsv_plan(comm, my_shards);
        }
        let part = self.part;
        let p = comm.rank();
        let rp = part.r_set(p);
        assert_eq!(my_shards.len(), rp.len(), "one shard per owned row block");
        let b = part.block_size();

        // --- Phase 1: gather full x row blocks (Algorithm 5 lines 10-21).
        let mut x_full: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
        for (t, &i) in rp.iter().enumerate() {
            let range = part.shard_range(i, p);
            debug_assert_eq!(my_shards[t].len(), range.len());
            x_full[t][range].copy_from_slice(&my_shards[t]);
        }
        comm.with_phase("gather-x", || {
            self.exchange_phase(
                comm,
                TAG_X,
                1,
                // Pack: my shard of shared row block i.
                |_, t, _peer| my_shards[t].clone(),
                // Unpack: the peer's shard of row block i, placed at its range.
                |i, t, peer| {
                    let range = part.shard_range(i, peer);
                    (
                        range.len(),
                        Box::new(move |x_dst: &mut [Vec<f64>], piece: &[f64]| {
                            x_dst[t][range.clone()].copy_from_slice(piece);
                        }),
                    )
                },
                &mut x_full,
            )
        });

        // --- Phase 2: local ternary multiplications (lines 24-36).
        let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
        let ternary =
            comm.with_phase("local-compute", || self.local_kernels(comm, &x_full, &mut y_acc));

        // --- Phase 3: distribute and reduce partial y (lines 38-50).
        let mut y_out: Vec<Vec<f64>> = rp
            .iter()
            .enumerate()
            .map(|(t, &i)| y_acc[t][part.shard_range(i, p)].to_vec())
            .collect();
        comm.with_phase("reduce-y", || {
            self.exchange_phase(
                comm,
                TAG_Y,
                1,
                // Pack: my partial of the *peer's* shard of row block i.
                |i, t, peer| y_acc[t][part.shard_range(i, peer)].to_vec(),
                // Unpack: a partial of *my* shard of row block i — accumulate.
                |i, t, _peer| {
                    let len = part.shard_range(i, p).len();
                    (
                        len,
                        Box::new(move |y_dst: &mut [Vec<f64>], piece: &[f64]| {
                            for (acc, &v) in y_dst[t].iter_mut().zip(piece) {
                                *acc += v;
                            }
                        }),
                    )
                },
                &mut y_out,
            )
        });

        (y_out, ternary)
    }

    /// Batched distributed STTSV: runs `B = my_shards.len()` contractions
    /// through **one** pair of exchange phases — the serving/throughput
    /// path. `my_shards[v][t]` is this rank's shard of row block `R_p[t]`
    /// of input vector `v`; returns `ys[v][t]` keyed the same way, plus the
    /// total ternary-multiplication count (`B ×` the single-vector count).
    ///
    /// Each peer message carries the `B` vectors' pieces back-to-back
    /// (`width = B` in [`RankContext::exchange_phase`]), so the per-rank
    /// **message count and round count are those of a single STTSV** while
    /// words scale linearly with `B` — the α (latency) term of the α-β-γ
    /// cost is amortized across the batch, exactly like the multi-vector
    /// contractions in the Multi-TTM literature. Word counts are `B ×` the
    /// single-vector counts in every mode (the padded collective pads each
    /// message to `B ×` the single-vector pad).
    pub fn sttsv_multi(
        &self,
        comm: &Comm,
        my_shards: &[Vec<Vec<f64>>],
    ) -> (Vec<Vec<Vec<f64>>>, u64) {
        if my_shards.is_empty() {
            return (Vec::new(), 0);
        }
        if self.use_plan {
            return self.sttsv_multi_plan(comm, my_shards);
        }
        let part = self.part;
        let p = comm.rank();
        let rp = part.r_set(p);
        let batch = my_shards.len();
        let t_count = rp.len();
        for (v, shards) in my_shards.iter().enumerate() {
            assert_eq!(shards.len(), t_count, "vector {v}: one shard per owned row block");
        }
        let b = part.block_size();

        // Batched rank state, flattened as [v * t_count + t] so it fits the
        // `exchange_phase` state type.
        let mut x_full: Vec<Vec<f64>> = vec![vec![0.0; b]; batch * t_count];
        for (v, shards) in my_shards.iter().enumerate() {
            for (t, &i) in rp.iter().enumerate() {
                let range = part.shard_range(i, p);
                debug_assert_eq!(shards[t].len(), range.len());
                x_full[v * t_count + t][range].copy_from_slice(&shards[t]);
            }
        }
        comm.with_phase("gather-x", || {
            self.exchange_phase(
                comm,
                TAG_X,
                batch,
                // Pack: my shards of row block i, all vectors back-to-back.
                |_, t, _peer| {
                    let mut buf = Vec::new();
                    for shards in my_shards {
                        buf.extend_from_slice(&shards[t]);
                    }
                    buf
                },
                // Unpack: the peer's shards of row block i, per vector.
                |i, t, peer| {
                    let range = part.shard_range(i, peer);
                    let len = range.len();
                    (
                        len * batch,
                        Box::new(move |x_dst: &mut [Vec<f64>], piece: &[f64]| {
                            for v in 0..batch {
                                x_dst[v * t_count + t][range.clone()]
                                    .copy_from_slice(&piece[v * len..(v + 1) * len]);
                            }
                        }),
                    )
                },
                &mut x_full,
            )
        });

        // Local compute: one kernel pass per vector over the same owned
        // blocks (the blocks stay resident; only the vectors change).
        let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; batch * t_count];
        let ternary = comm.with_phase("local-compute", || {
            let mut total = 0;
            for (xs, ys) in x_full.chunks_exact(t_count).zip(y_acc.chunks_exact_mut(t_count)) {
                total += self.local_kernels(comm, xs, ys);
            }
            total
        });

        // Reduce: every vector's partial shards in one exchange.
        let mut y_flat: Vec<Vec<f64>> = (0..batch)
            .flat_map(|v| rp.iter().enumerate().map(move |(t, &i)| (v, t, i)).collect::<Vec<_>>())
            .map(|(v, t, i)| y_acc[v * t_count + t][part.shard_range(i, p)].to_vec())
            .collect();
        comm.with_phase("reduce-y", || {
            self.exchange_phase(
                comm,
                TAG_Y,
                batch,
                |i, t, peer| {
                    let range = part.shard_range(i, peer);
                    let mut buf = Vec::with_capacity(batch * range.len());
                    for v in 0..batch {
                        buf.extend_from_slice(&y_acc[v * t_count + t][range.clone()]);
                    }
                    buf
                },
                |i, t, _peer| {
                    let len = part.shard_range(i, p).len();
                    (
                        len * batch,
                        Box::new(move |y_dst: &mut [Vec<f64>], piece: &[f64]| {
                            for v in 0..batch {
                                for (acc, &val) in y_dst[v * t_count + t]
                                    .iter_mut()
                                    .zip(&piece[v * len..(v + 1) * len])
                                {
                                    *acc += val;
                                }
                            }
                        }),
                    )
                },
                &mut y_flat,
            )
        });

        let ys = y_flat.chunks_exact(t_count).map(|c| c.to_vec()).collect();
        (ys, ternary)
    }

    /// [`RankContext::sttsv`] through the compiled plan: identical phases,
    /// wire format, arithmetic and counts, but all state lives in the
    /// plan's flat slabs and recycled buffers — zero heap allocations in
    /// steady state (only the returned shard vectors are fresh; use
    /// [`RankContext::sttsv_into`] to avoid even those).
    fn sttsv_plan(&self, comm: &Comm, my_shards: &[Vec<f64>]) -> (Vec<Vec<f64>>, u64) {
        let plan = self.compile(comm.rank());
        let mut ws = self.plan_ws.borrow_mut();
        let ternary = self.run_plan_single(comm, plan, &mut ws, my_shards);
        (plan.extract(&ws, 0), ternary)
    }

    /// Fully allocation-free steady-state STTSV: like
    /// [`RankContext::sttsv`] on the plan path, but the output shards are
    /// written into caller-provided vectors (reused capacity). Returns the
    /// ternary count. Requires [`RankContext::with_plan`].
    pub fn sttsv_into(&self, comm: &Comm, my_shards: &[Vec<f64>], out: &mut [Vec<f64>]) -> u64 {
        assert!(self.use_plan, "sttsv_into requires the plan path (with_plan)");
        let plan = self.compile(comm.rank());
        let mut ws = self.plan_ws.borrow_mut();
        let ternary = self.run_plan_single(comm, plan, &mut ws, my_shards);
        plan.extract_into(&ws, 0, out);
        ternary
    }

    /// The three plan phases for one vector (shared by `sttsv_plan` and
    /// `sttsv_into`).
    fn run_plan_single(
        &self,
        comm: &Comm,
        plan: &RankPlan,
        ws: &mut PlanWorkspace,
        my_shards: &[Vec<f64>],
    ) -> u64 {
        plan.ensure_capacity(ws, 1);
        plan.load_shards(ws, 0, my_shards);
        comm.with_phase("gather-x", || {
            self.plan_exchange(comm, plan, ws, TAG_X, ExchangeKind::Gather, 1)
        });
        let ternary = comm.with_phase("local-compute", || {
            comm.with_phase("compute:kernel", || {
                let t = plan.compute(ws, 1, self.pool);
                comm.annotate_counter("plan:arena_bytes", plan.arena_bytes() as u64);
                comm.annotate_counter("plan:fresh_allocs", ws.fresh_allocs());
                t
            })
        });
        comm.with_phase("reduce-y", || {
            self.plan_exchange(comm, plan, ws, TAG_Y, ExchangeKind::Reduce, 1)
        });
        ternary
    }

    /// [`RankContext::sttsv_multi`] through the compiled plan: the batch
    /// moves through one exchange-phase pair exactly like the legacy
    /// batched path (messages carry the `B` vectors' pieces back-to-back),
    /// with all batch state in the flat slabs.
    fn sttsv_multi_plan(
        &self,
        comm: &Comm,
        my_shards: &[Vec<Vec<f64>>],
    ) -> (Vec<Vec<Vec<f64>>>, u64) {
        let batch = my_shards.len();
        let plan = self.compile(comm.rank());
        let mut ws = self.plan_ws.borrow_mut();
        plan.ensure_capacity(&mut ws, batch);
        for (v, shards) in my_shards.iter().enumerate() {
            plan.load_shards(&mut ws, v, shards);
        }
        comm.with_phase("gather-x", || {
            self.plan_exchange(comm, plan, &mut ws, TAG_X, ExchangeKind::Gather, batch)
        });
        let ternary = comm.with_phase("local-compute", || {
            comm.with_phase("compute:kernel", || {
                let t = plan.compute(&mut ws, batch, self.pool);
                comm.annotate_counter("plan:arena_bytes", plan.arena_bytes() as u64);
                comm.annotate_counter("plan:fresh_allocs", ws.fresh_allocs());
                t
            })
        });
        comm.with_phase("reduce-y", || {
            self.plan_exchange(comm, plan, &mut ws, TAG_Y, ExchangeKind::Reduce, batch)
        });
        let ys = (0..batch).map(|v| plan.extract(&ws, v)).collect();
        (ys, ternary)
    }

    /// [`RankContext::sttsv_multi`] on the plan path with **request-scoped
    /// tracing**: `requests[v]` is the serving-layer id of vector `v`. The
    /// per-vector kernel passes are annotated with their request id (so
    /// flight-recorder records and `CommEvent`s emitted during request
    /// `v`'s compute carry it) and individually timed; the batch-level
    /// exchange phases are timed as a whole, since each message carries
    /// every request's pieces back-to-back and cannot be attributed to one
    /// request. While a request's compute runs, the attached [`Pool`]'s
    /// workspace leases are tagged with the same id.
    ///
    /// Returns the outputs and ternary count of [`RankContext::sttsv_multi`]
    /// (bit-identical — the per-vector kernel loop is the same
    /// decomposition) plus this rank's [`BatchSpans`].
    pub fn sttsv_multi_requests(
        &self,
        comm: &Comm,
        my_shards: &[Vec<Vec<f64>>],
        requests: &[u64],
    ) -> (Vec<Vec<Vec<f64>>>, u64, BatchSpans) {
        assert!(self.use_plan, "sttsv_multi_requests requires the plan path (with_plan)");
        assert_eq!(my_shards.len(), requests.len(), "one request id per vector");
        let batch = my_shards.len();
        let start_ns = comm.elapsed_ns();
        if batch == 0 {
            return (Vec::new(), 0, BatchSpans::empty(start_ns));
        }
        let plan = self.compile(comm.rank());
        let mut ws = self.plan_ws.borrow_mut();
        plan.ensure_capacity(&mut ws, batch);
        for (v, shards) in my_shards.iter().enumerate() {
            plan.load_shards(&mut ws, v, shards);
        }
        let gather_t0 = comm.elapsed_ns();
        comm.with_phase("gather-x", || {
            self.plan_exchange(comm, plan, &mut ws, TAG_X, ExchangeKind::Gather, batch)
        });
        let gather_ns = comm.elapsed_ns().saturating_sub(gather_t0);
        let mut compute_ns = Vec::with_capacity(batch);
        let ternary = comm.with_phase("local-compute", || {
            let mut total = 0u64;
            for (v, &request) in requests.iter().enumerate() {
                // One request-annotated `compute:kernel` span per vector:
                // the span's flight records (and any trace events inside)
                // carry the request id, as do the pool's workspace leases.
                comm.annotate_request(request);
                if let Some(pool) = self.pool {
                    pool.workspaces().set_request(request);
                }
                let t0 = comm.elapsed_ns();
                total += comm
                    .with_phase("compute:kernel", || plan.compute_vector(&mut ws, v, self.pool));
                compute_ns.push(comm.elapsed_ns().saturating_sub(t0));
                if let Some(pool) = self.pool {
                    pool.workspaces().clear_request();
                }
                comm.clear_request();
            }
            comm.annotate_counter("plan:arena_bytes", plan.arena_bytes() as u64);
            comm.annotate_counter("plan:fresh_allocs", ws.fresh_allocs());
            total
        });
        let reduce_t0 = comm.elapsed_ns();
        comm.with_phase("reduce-y", || {
            self.plan_exchange(comm, plan, &mut ws, TAG_Y, ExchangeKind::Reduce, batch)
        });
        let reduce_ns = comm.elapsed_ns().saturating_sub(reduce_t0);
        let ys = (0..batch).map(|v| plan.extract(&ws, v)).collect();
        let spans =
            BatchSpans { start_ns, gather_ns, compute_ns, reduce_ns, end_ns: comm.elapsed_ns() };
        (ys, ternary, spans)
    }

    /// Serves `n_batches` request batches through a **double-buffered
    /// pipeline**: while batch `k` computes, batch `k + 1`'s gather-x
    /// messages are already in flight, alternating between two leased
    /// [`PlanWorkspace`]s so the in-flight batch never clobbers the
    /// computing one. `form(k)` produces batch `k`'s shards and request
    /// ids the moment the pipeline is ready to admit it — which is when
    /// its queue wait ends.
    ///
    /// Per-sender FIFO delivery makes the overlap safe without new tags:
    /// batch `k`'s gather message on a given `(src, round)` link is always
    /// claimed before batch `k + 1`'s (the mailbox preserves arrival order
    /// per `(src, tag)`), so the wire format, cost counters and output
    /// bits are identical to the sequential serving loop — only the
    /// *timing* moves. Scheduled mode pipelines; the all-to-all modes fall
    /// back to sequential barrier batches (their collective is a single
    /// indivisible step).
    pub fn sttsv_serve_pipelined(
        &self,
        comm: &Comm,
        n_batches: usize,
        mut form: impl FnMut(usize) -> (Vec<Vec<Vec<f64>>>, Vec<u64>),
    ) -> Vec<ServedBatch> {
        assert!(self.use_plan, "sttsv_serve_pipelined requires the plan path (with_plan)");
        if self.mode != Mode::Scheduled {
            // The collective exchanges are indivisible; serve batches
            // back-to-back exactly like the sequential loop.
            return (0..n_batches)
                .map(|k| {
                    let begin_ns = comm.elapsed_ns();
                    let (shards, ids) = form(k);
                    let formed_ns = comm.elapsed_ns();
                    let (ys, ternary, spans) = self.sttsv_multi_requests(comm, &shards, &ids);
                    ServedBatch { begin_ns, formed_ns, spans, ys, ternary }
                })
                .collect();
        }
        let p = comm.rank();
        let plan = self.compile(p);
        let schedule = self.schedule.expect("scheduled mode requires a schedule");
        let actions = schedule.actions(p);
        let mut wss = [PlanWorkspace::new(), PlanWorkspace::new()];
        // Admits batch `k` into workspace `ws`: form, load, and put its
        // gather messages on the wire. Receives are deferred to the
        // batch's own turn — that deferral is the pipeline.
        let mut stage = |k: usize, ws: &mut PlanWorkspace| -> (u64, u64, Vec<u64>) {
            let begin_ns = comm.elapsed_ns();
            let (shards, ids) = form(k);
            let batch = shards.len();
            plan.ensure_capacity(ws, batch);
            for (v, s) in shards.iter().enumerate() {
                plan.load_shards(ws, v, s);
            }
            let formed_ns = comm.elapsed_ns();
            comm.with_phase("gather-x", || {
                for (round, act) in actions.iter().enumerate() {
                    comm.annotate_round(round as u64);
                    if let Some(dst) = act.send_to {
                        let pidx = plan.peer_slot(dst).expect("scheduled peer is in the plan");
                        let buf = plan.pack(ws, ExchangeKind::Gather, pidx, batch);
                        comm.send(dst, TAG_X + round as u64, buf);
                    }
                }
                comm.clear_round();
            });
            (begin_ns, formed_ns, ids)
        };
        let mut pending: [Option<(u64, u64, Vec<u64>)>; 2] = [None, None];
        let mut out = Vec::with_capacity(n_batches);
        if n_batches > 0 {
            pending[0] = Some(stage(0, &mut wss[0]));
        }
        for k in 0..n_batches {
            let cur = k % 2;
            let (begin_ns, formed_ns, ids) =
                pending[cur].take().expect("batch was staged before its turn");
            let batch = ids.len();
            // Drain this batch's gather receives — the *exposed* gather
            // time; everything hidden behind the previous batch's compute
            // has already arrived and costs only a mailbox claim.
            let gather_t0 = comm.elapsed_ns();
            comm.with_phase("gather-x", || {
                for (round, act) in actions.iter().enumerate() {
                    comm.annotate_round(round as u64);
                    if let Some(src) = act.recv_from {
                        let buf =
                            comm.recv(src, TAG_X + round as u64).expect("pipelined gather failed");
                        let pidx = plan.peer_slot(src).expect("scheduled peer is in the plan");
                        plan.unpack(&mut wss[cur], ExchangeKind::Gather, pidx, batch, buf);
                    }
                    if act.send_to.is_some() || act.recv_from.is_some() {
                        comm.count_round();
                    }
                }
                comm.clear_round();
            });
            let gather_ns = comm.elapsed_ns().saturating_sub(gather_t0);
            // Admit the next batch before this one computes: its gather
            // traffic rides under our kernel time.
            if k + 1 < n_batches {
                pending[1 - cur] = Some(stage(k + 1, &mut wss[1 - cur]));
            }
            let mut compute_ns = Vec::with_capacity(batch);
            let ternary = comm.with_phase("local-compute", || {
                let mut total = 0u64;
                for (v, &request) in ids.iter().enumerate() {
                    comm.annotate_request(request);
                    if let Some(pool) = self.pool {
                        pool.workspaces().set_request(request);
                    }
                    let t0 = comm.elapsed_ns();
                    total += comm.with_phase("compute:kernel", || {
                        plan.compute_vector(&mut wss[cur], v, self.pool)
                    });
                    compute_ns.push(comm.elapsed_ns().saturating_sub(t0));
                    if let Some(pool) = self.pool {
                        pool.workspaces().clear_request();
                    }
                    comm.clear_request();
                }
                comm.annotate_counter("plan:arena_bytes", plan.arena_bytes() as u64);
                comm.annotate_counter("plan:fresh_allocs", wss[cur].fresh_allocs());
                total
            });
            let reduce_t0 = comm.elapsed_ns();
            comm.with_phase("reduce-y", || {
                self.plan_exchange(comm, plan, &mut wss[cur], TAG_Y, ExchangeKind::Reduce, batch)
            });
            let reduce_ns = comm.elapsed_ns().saturating_sub(reduce_t0);
            let ys = (0..batch).map(|v| plan.extract(&wss[cur], v)).collect();
            let spans = BatchSpans {
                start_ns: begin_ns,
                gather_ns,
                compute_ns,
                reduce_ns,
                end_ns: comm.elapsed_ns(),
            };
            out.push(ServedBatch { begin_ns, formed_ns, spans, ys, ternary });
        }
        out
    }

    /// One **overlapped** distributed STTSV through the compiled plan:
    /// same wire format, word/message/round counts and output bits as
    /// [`RankContext::sttsv`] on the plan path, but communication and
    /// computation are pipelined — owned-only blocks run while the gather
    /// messages are in flight, each dependency group runs the moment its
    /// last x piece lands (drained in arrival order via
    /// [`Comm::recv_any`]), and finalized scatter-y contributions flush
    /// early in scheduled mode. Requires [`RankContext::with_plan`].
    pub fn sttsv_overlapped(&self, comm: &Comm, my_shards: &[Vec<f64>]) -> (Vec<Vec<f64>>, u64) {
        assert!(self.use_plan, "sttsv_overlapped requires the plan path (with_plan)");
        let plan = self.compile(comm.rank());
        let mut ws = self.plan_ws.borrow_mut();
        plan.ensure_capacity(&mut ws, 1);
        plan.load_shards(&mut ws, 0, my_shards);
        let ternary = self.run_plan_overlapped(comm, plan, &mut ws, 1);
        (plan.extract(&ws, 0), ternary)
    }

    /// Batched form of [`RankContext::sttsv_overlapped`]: the whole batch
    /// moves through one overlapped exchange pair, bit-identical to
    /// [`RankContext::sttsv_multi`] on the plan path.
    pub fn sttsv_multi_overlapped(
        &self,
        comm: &Comm,
        my_shards: &[Vec<Vec<f64>>],
    ) -> (Vec<Vec<Vec<f64>>>, u64) {
        assert!(self.use_plan, "sttsv_multi_overlapped requires the plan path (with_plan)");
        if my_shards.is_empty() {
            return (Vec::new(), 0);
        }
        let batch = my_shards.len();
        let plan = self.compile(comm.rank());
        let mut ws = self.plan_ws.borrow_mut();
        plan.ensure_capacity(&mut ws, batch);
        for (v, shards) in my_shards.iter().enumerate() {
            plan.load_shards(&mut ws, v, shards);
        }
        let ternary = self.run_plan_overlapped(comm, plan, &mut ws, batch);
        let ys = (0..batch).map(|v| plan.extract(&ws, v)).collect();
        (ys, ternary)
    }

    /// The overlapped three-phase pipeline (see the [`crate::plan`] module
    /// docs for the bit-identity argument):
    ///
    /// 1. **gather-x** — all sends posted up-front (schedule order, round
    ///    tags unchanged), owned-only blocks computed inside a nested
    ///    `compute:overlap` span, then arrivals drained in completion
    ///    order, each unlocking its dependency groups.
    /// 2. **local-compute** — the remaining blocks (everything not yet
    ///    computed opportunistically) inside the usual `compute:kernel`
    ///    span, parallel on the attached pool.
    /// 3. **reduce-y** — in scheduled mode, peers whose y rows finalized
    ///    early were already flushed during phases 1–2; the rest flush
    ///    here, and incoming partials are drained in arrival order but
    ///    *applied* in schedule order (prefix rule), so the accumulation
    ///    order — and therefore every output bit — matches the barrier
    ///    path. The all-to-all modes flush at the collective and apply in
    ///    ascending peer order, like their barrier form.
    fn run_plan_overlapped(
        &self,
        comm: &Comm,
        plan: &RankPlan,
        ws: &mut PlanWorkspace,
        batch: usize,
    ) -> u64 {
        let p = comm.rank();
        let mut st = plan.overlap_state(batch, self.pool.is_some());
        // Live overlap decomposition: compute done while gather messages
        // are in flight is *hidden* communication; time spent blocked in
        // an arrival wait is *exposed*. Published as telemetry gauges so a
        // concurrent scrape can report overlap efficiency mid-run.
        let tele = comm.telemetry_enabled();
        let mut hidden_ns = 0u64;
        let mut exposed_ns = 0u64;
        match self.mode {
            Mode::Scheduled => {
                let schedule = self.schedule.expect("scheduled mode requires a schedule");
                let actions = schedule.actions(p);
                // The round in which the schedule sends to each dst — the
                // receiver's recv round is the same (rounds pair up), so
                // early-flushed reduce messages carry the barrier tags.
                let mut send_round = vec![None; self.part.num_procs()];
                for (round, act) in actions.iter().enumerate() {
                    if let Some(dst) = act.send_to {
                        send_round[dst] = Some(round as u64);
                    }
                }
                comm.with_phase("gather-x", || {
                    for (round, act) in actions.iter().enumerate() {
                        comm.annotate_round(round as u64);
                        if let Some(dst) = act.send_to {
                            let pidx = plan.peer_slot(dst).expect("scheduled peer is in the plan");
                            let buf = plan.pack(ws, ExchangeKind::Gather, pidx, batch);
                            comm.send(dst, TAG_X + round as u64, buf);
                        }
                    }
                    comm.clear_round();
                    // Owned-only blocks while every message is in flight.
                    timed(tele, &mut hidden_ns, || {
                        comm.with_phase("compute:overlap", || {
                            plan.compute_overlapped(ws, &mut st, self.pool)
                        })
                    });
                    self.flush_ready(comm, plan, ws, &mut st, batch, &send_round);
                    let mut candidates: Vec<(usize, u64)> = actions
                        .iter()
                        .enumerate()
                        .filter_map(|(round, act)| {
                            act.recv_from.map(|src| (src, TAG_X + round as u64))
                        })
                        .collect();
                    while !candidates.is_empty() {
                        let (src, tag, buf) = timed(tele, &mut exposed_ns, || {
                            comm.recv_any(&candidates).expect("overlapped gather failed")
                        });
                        candidates.retain(|&c| c != (src, tag));
                        let pidx = plan.peer_slot(src).expect("scheduled peer is in the plan");
                        plan.unpack(ws, ExchangeKind::Gather, pidx, batch, buf);
                        plan.note_gather_arrival(&mut st, pidx);
                        timed(tele, &mut hidden_ns, || {
                            comm.with_phase("compute:overlap", || {
                                plan.compute_overlapped(ws, &mut st, self.pool)
                            })
                        });
                        self.flush_ready(comm, plan, ws, &mut st, batch, &send_round);
                    }
                    for act in actions {
                        if act.send_to.is_some() || act.recv_from.is_some() {
                            comm.count_round();
                        }
                    }
                });
                let ternary = comm.with_phase("local-compute", || {
                    comm.with_phase("compute:kernel", || {
                        let t = plan.finish_overlapped(ws, &mut st, self.pool);
                        comm.annotate_counter("plan:arena_bytes", plan.arena_bytes() as u64);
                        comm.annotate_counter("plan:fresh_allocs", ws.fresh_allocs());
                        t
                    })
                });
                comm.with_phase("reduce-y", || {
                    self.flush_ready(comm, plan, ws, &mut st, batch, &send_round);
                    // Drain in arrival order, apply in schedule order: the
                    // reduce accumulation is order-sensitive, so arrivals
                    // beyond the applied prefix are stashed.
                    let recv_rounds: Vec<(usize, u64)> = actions
                        .iter()
                        .enumerate()
                        .filter_map(|(round, act)| act.recv_from.map(|src| (src, round as u64)))
                        .collect();
                    let mut candidates: Vec<(usize, u64)> =
                        recv_rounds.iter().map(|&(src, round)| (src, TAG_Y + round)).collect();
                    let mut arrived: Vec<Option<Vec<f64>>> = vec![None; recv_rounds.len()];
                    let mut applied = 0usize;
                    while !candidates.is_empty() {
                        let (src, tag, buf) =
                            comm.recv_any(&candidates).expect("overlapped reduce failed");
                        candidates.retain(|&c| c != (src, tag));
                        let slot = recv_rounds
                            .iter()
                            .position(|&(s, round)| s == src && TAG_Y + round == tag)
                            .expect("arrival matches a scheduled recv");
                        arrived[slot] = Some(buf);
                        while applied < recv_rounds.len() {
                            let Some(buf) = arrived[applied].take() else { break };
                            let pidx = plan
                                .peer_slot(recv_rounds[applied].0)
                                .expect("scheduled peer is in the plan");
                            plan.unpack(ws, ExchangeKind::Reduce, pidx, batch, buf);
                            applied += 1;
                        }
                    }
                    for act in actions {
                        if act.send_to.is_some() || act.recv_from.is_some() {
                            comm.count_round();
                        }
                    }
                });
                if tele {
                    comm.telemetry_gauge_add(telemetry_keys::HIDDEN_NS, hidden_ns);
                    comm.telemetry_gauge_add(telemetry_keys::EXPOSED_NS, exposed_ns);
                }
                ternary
            }
            Mode::AllToAllPadded | Mode::AllToAllSparse => {
                let p_count = self.part.num_procs();
                let pad_len = batch * plan.pad_unit();
                comm.with_phase("gather-x", || {
                    let mut sendbufs = std::mem::take(&mut ws.a2a_send);
                    sendbufs.resize_with(p_count, Vec::new);
                    for pidx in 0..plan.peers().len() {
                        let peer = plan.peers()[pidx].peer;
                        let mut buf = plan.pack(ws, ExchangeKind::Gather, pidx, batch);
                        if self.mode == Mode::AllToAllPadded {
                            debug_assert!(buf.len() <= pad_len);
                            buf.resize(pad_len, 0.0);
                        }
                        sendbufs[peer] = buf;
                    }
                    // The collective's wall time minus its hidden compute
                    // is the exposed arrival wait.
                    let mut total_ns = 0u64;
                    let shell = timed(tele, &mut total_ns, || {
                        comm.all_to_all_v_overlapped(sendbufs, |event| match event {
                            // Owned-only blocks start once the sends are
                            // in flight (posting first keeps peers fed).
                            AllToAllEvent::SendsPosted => {
                                timed(tele, &mut hidden_ns, || {
                                    comm.with_phase("compute:overlap", || {
                                        plan.compute_overlapped(ws, &mut st, self.pool)
                                    })
                                });
                            }
                            AllToAllEvent::Arrival { src, buf } => {
                                let pidx =
                                    plan.peer_slot(src).expect("every non-self rank is a peer");
                                plan.unpack(ws, ExchangeKind::Gather, pidx, batch, buf);
                                plan.note_gather_arrival(&mut st, pidx);
                                timed(tele, &mut hidden_ns, || {
                                    comm.with_phase("compute:overlap", || {
                                        plan.compute_overlapped(ws, &mut st, self.pool)
                                    })
                                });
                            }
                        })
                    })
                    .expect("all-to-all failed");
                    exposed_ns = total_ns.saturating_sub(hidden_ns);
                    ws.a2a_send = shell;
                });
                let ternary = comm.with_phase("local-compute", || {
                    comm.with_phase("compute:kernel", || {
                        let t = plan.finish_overlapped(ws, &mut st, self.pool);
                        comm.annotate_counter("plan:arena_bytes", plan.arena_bytes() as u64);
                        comm.annotate_counter("plan:fresh_allocs", ws.fresh_allocs());
                        t
                    })
                });
                comm.with_phase("reduce-y", || {
                    let mut sendbufs = std::mem::take(&mut ws.a2a_send);
                    sendbufs.resize_with(p_count, Vec::new);
                    for pidx in 0..plan.peers().len() {
                        let peer = plan.peers()[pidx].peer;
                        let mut buf = plan.pack(ws, ExchangeKind::Reduce, pidx, batch);
                        if self.mode == Mode::AllToAllPadded {
                            debug_assert!(buf.len() <= pad_len);
                            buf.resize(pad_len, 0.0);
                        }
                        sendbufs[peer] = buf;
                    }
                    // Drain in arrival order, apply in ascending peer
                    // order (the barrier form's accumulation order).
                    let mut arrived: Vec<Option<Vec<f64>>> = vec![None; p_count];
                    let mut applied = 0usize;
                    let shell = comm
                        .all_to_all_v_overlapped(sendbufs, |event| match event {
                            AllToAllEvent::SendsPosted => {}
                            AllToAllEvent::Arrival { src, buf } => {
                                arrived[src] = Some(buf);
                                while applied < p_count {
                                    if applied == p {
                                        applied += 1;
                                        continue;
                                    }
                                    let Some(buf) = arrived[applied].take() else { break };
                                    let pidx = plan
                                        .peer_slot(applied)
                                        .expect("every non-self rank is a peer");
                                    plan.unpack(ws, ExchangeKind::Reduce, pidx, batch, buf);
                                    applied += 1;
                                }
                            }
                        })
                        .expect("all-to-all failed");
                    ws.a2a_send = shell;
                });
                if tele {
                    comm.telemetry_gauge_add(telemetry_keys::HIDDEN_NS, hidden_ns);
                    comm.telemetry_gauge_add(telemetry_keys::EXPOSED_NS, exposed_ns);
                }
                ternary
            }
        }
    }

    /// Sends the reduce contribution of every peer whose y rows just
    /// finalized (scheduled mode's early flush): packs through the
    /// ordinary [`RankPlan::pack`] layout and reuses the barrier path's
    /// `TAG_Y + round` tags, so the wire format is untouched — only the
    /// send time moves earlier.
    fn flush_ready(
        &self,
        comm: &Comm,
        plan: &RankPlan,
        ws: &mut PlanWorkspace,
        st: &mut crate::plan::OverlapState,
        batch: usize,
        send_round: &[Option<u64>],
    ) {
        for pidx in st.take_flushable() {
            let dst = plan.peers()[pidx].peer;
            if let Some(round) = send_round[dst] {
                comm.annotate_round(round);
                let buf = plan.pack(ws, ExchangeKind::Reduce, pidx, batch);
                comm.send(dst, TAG_Y + round, buf);
                comm.clear_round();
            }
        }
    }

    /// The plan path's exchange: mirrors [`RankContext::exchange_phase`]
    /// round for round and byte for byte, but packs from / unpacks into
    /// the flat slabs using the precompiled piece layouts, with message
    /// buffers drawn from (and recycled into) the workspace free list.
    fn plan_exchange(
        &self,
        comm: &Comm,
        plan: &RankPlan,
        ws: &mut PlanWorkspace,
        tag_base: u64,
        kind: ExchangeKind,
        batch: usize,
    ) {
        let p = comm.rank();
        match self.mode {
            Mode::Scheduled => {
                let schedule = self.schedule.expect("scheduled mode requires a schedule");
                for (round, act) in schedule.actions(p).iter().enumerate() {
                    comm.annotate_round(round as u64);
                    if let Some(dst) = act.send_to {
                        let pidx = plan.peer_slot(dst).expect("scheduled peer is in the plan");
                        comm.send(dst, tag_base + round as u64, plan.pack(ws, kind, pidx, batch));
                    }
                    if let Some(src) = act.recv_from {
                        let buf = comm
                            .recv(src, tag_base + round as u64)
                            .expect("scheduled exchange failed");
                        let pidx = plan.peer_slot(src).expect("scheduled peer is in the plan");
                        plan.unpack(ws, kind, pidx, batch, buf);
                    }
                    if act.send_to.is_some() || act.recv_from.is_some() {
                        comm.count_round();
                    }
                }
                comm.clear_round();
            }
            Mode::AllToAllPadded | Mode::AllToAllSparse => {
                let p_count = self.part.num_procs();
                let pad_len = batch * plan.pad_unit();
                // Recycle the outer collective vector across calls.
                let mut sendbufs = std::mem::take(&mut ws.a2a_send);
                sendbufs.resize_with(p_count, Vec::new);
                for pidx in 0..plan.peers().len() {
                    let peer = plan.peers()[pidx].peer;
                    let mut buf = plan.pack(ws, kind, pidx, batch);
                    if self.mode == Mode::AllToAllPadded {
                        debug_assert!(buf.len() <= pad_len);
                        buf.resize(pad_len, 0.0);
                    }
                    sendbufs[peer] = buf;
                }
                let mut recvd = comm.all_to_all_v(sendbufs).expect("all-to-all failed");
                for (peer, slot) in recvd.iter_mut().enumerate() {
                    if peer == p {
                        continue;
                    }
                    let buf = std::mem::take(slot);
                    let pidx = plan.peer_slot(peer).expect("every non-self rank is a peer");
                    plan.unpack(ws, kind, pidx, batch, buf);
                }
                ws.a2a_send = recvd;
            }
        }
    }

    /// Shared machinery for both vector phases: for every peer sharing row
    /// blocks with this rank, send the packed pieces (one per shared block,
    /// ascending) and apply `unpack` to the received pieces.
    ///
    /// `pack(i, t, peer)` produces the outgoing piece for shared row block
    /// `i` (`t` = its position in `R_p`). `unpack(i, t, peer)` returns the
    /// expected piece length and a closure applying it to `state`. `width`
    /// is the number of vector columns moved together (1 for STTSV, `r`
    /// for MTTKRP) — it scales the padded-mode uniform message size.
    #[allow(clippy::type_complexity, clippy::needless_lifetimes)]
    pub(crate) fn exchange_phase<'s>(
        &'s self,
        comm: &Comm,
        tag_base: u64,
        width: usize,
        pack: impl Fn(usize, usize, usize) -> Vec<f64>,
        unpack: impl Fn(usize, usize, usize) -> (usize, Box<dyn FnOnce(&mut [Vec<f64>], &[f64]) + 's>),
        state: &mut [Vec<f64>],
    ) {
        let part = self.part;
        let p = comm.rank();
        let rp = part.r_set(p);
        let pos_of = |i: usize| rp.binary_search(&i).unwrap();

        let pack_for = |peer: usize| -> Vec<f64> {
            let mut buf = Vec::new();
            for i in shared_row_blocks(part, p, peer) {
                buf.extend_from_slice(&pack(i, pos_of(i), peer));
            }
            buf
        };
        let unpack_from = |peer: usize, buf: &[f64], state: &mut [Vec<f64>]| {
            let mut offset = 0;
            for i in shared_row_blocks(part, p, peer) {
                let (len, apply) = unpack(i, pos_of(i), peer);
                apply(state, &buf[offset..offset + len]);
                offset += len;
            }
        };

        match self.mode {
            Mode::Scheduled => {
                let schedule = self.schedule.expect("scheduled mode requires a schedule");
                for (round, act) in schedule.actions(p).iter().enumerate() {
                    comm.annotate_round(round as u64);
                    if let Some(dst) = act.send_to {
                        comm.send(dst, tag_base + round as u64, pack_for(dst));
                    }
                    if let Some(src) = act.recv_from {
                        let buf = comm
                            .recv(src, tag_base + round as u64)
                            .expect("scheduled exchange failed");
                        unpack_from(src, &buf, state);
                    }
                    if act.send_to.is_some() || act.recv_from.is_some() {
                        comm.count_round();
                    }
                }
                comm.clear_round();
            }
            Mode::AllToAllPadded | Mode::AllToAllSparse => {
                let p_count = part.num_procs();
                // Uniform message size for the padded (MPI_Alltoall) mode:
                // two shards of the largest shard size (a pair of processors
                // shares at most two row blocks).
                let pad_len = 2 * width * part.block_size().div_ceil(part.lambda1());
                let mut sendbufs: Vec<Vec<f64>> = (0..p_count)
                    .map(|peer| {
                        if peer == p {
                            return Vec::new();
                        }
                        let mut buf = pack_for(peer);
                        if self.mode == Mode::AllToAllPadded {
                            debug_assert!(buf.len() <= pad_len);
                            buf.resize(pad_len, 0.0);
                        }
                        buf
                    })
                    .collect();
                sendbufs[p] = Vec::new();
                let recvd = comm.all_to_all_v(sendbufs).expect("all-to-all failed");
                for (peer, buf) in recvd.iter().enumerate() {
                    if peer != p {
                        unpack_from(peer, buf, state);
                    }
                }
            }
        }
    }
}

/// The result of a driver-level parallel STTSV run.
#[derive(Clone, Debug)]
pub struct SttsvRun {
    /// The assembled output vector `y = 𝓐 ×₂ x ×₃ x`.
    pub y: Vec<f64>,
    /// Exact per-rank communication costs.
    pub report: CostReport,
    /// Per-rank ternary-multiplication counts (the §7.1 work measure).
    pub ternary_per_rank: Vec<u64>,
}

/// Runs Algorithm 5 on the simulated machine: one thread per processor,
/// with the tensor blocks extracted per-rank (never communicated) and the
/// input/output vectors distributed per Section 6.1.2.
///
/// `part.dim()` must equal `tensor.dim()` and `x.len()`; use
/// [`parallel_sttsv_padded`] for arbitrary `n`.
///
/// ```
/// use symtensor_parallel::{parallel_sttsv, Mode, TetraPartition};
/// use symtensor_core::SymTensor3;
/// use symtensor_steiner::spherical;
///
/// let n = 30;                                  // m = 5 row blocks, b = 6
/// let part = TetraPartition::new(spherical(2), n).unwrap();
/// let mut a = SymTensor3::zeros(n);
/// for i in 0..n { a.set(i, i, i, 1.0); }       // y_i = x_i²
/// let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
/// let run = parallel_sttsv(&a, &part, &x, Mode::Scheduled);
/// assert!(run.y.iter().enumerate().all(|(i, &y)| y == (i * i) as f64));
/// assert!(run.report.bandwidth_cost() > 0);    // vectors moved, tensor did not
/// ```
pub fn parallel_sttsv(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
) -> SttsvRun {
    let (run, _traces, _flight) = run_sttsv(tensor, part, x, mode, false);
    run
}

/// Like [`parallel_sttsv`] but with per-rank event tracing enabled: also
/// returns each rank's full [`CommEvent`] log (phase-annotated sends/recvs,
/// round annotations from the scheduled exchanges), ready for the
/// `symtensor-obs` exporters. The [`CostReport`] is identical to the
/// untraced run — tracing never touches the counters.
pub fn parallel_sttsv_traced(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
) -> (SttsvRun, Vec<Vec<CommEvent>>) {
    let (run, traces, _flight) = run_sttsv(tensor, part, x, mode, true);
    (run, traces)
}

/// [`parallel_sttsv_traced`] plus each rank's **flight-recorder window**:
/// the always-on bounded ring of delta-encoded send/recv/phase records the
/// runtime keeps regardless of tracing. The snapshots feed the
/// `symtensor-obs` flight exporters (`--flight` in the CLI); results and
/// the [`CostReport`] are identical to the untraced run.
pub fn parallel_sttsv_traced_flight(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
) -> (SttsvRun, Vec<Vec<CommEvent>>, Vec<FlightSnapshot>) {
    run_sttsv(tensor, part, x, mode, true)
}

fn run_sttsv(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    traced: bool,
) -> (SttsvRun, Vec<Vec<CommEvent>>, Vec<FlightSnapshot>) {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x.len(), n);
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref());
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        ctx.sttsv(comm, &my_shards)
    };
    let universe = Universe::new(p_count);
    let (rank_results, report, traces, flight) = if traced {
        universe.run_traced_flight(rank_main)
    } else {
        let (results, report) = universe.run(rank_main);
        (results, report, Vec::new(), Vec::new())
    };

    let mut y = vec![0.0; n];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (shards, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            y[global.start + local.start..global.start + local.end].copy_from_slice(&shards[t]);
        }
    }
    (SttsvRun { y, report, ternary_per_rank }, traces, flight)
}

/// The result of a driver-level **batched** parallel STTSV run.
#[derive(Clone, Debug)]
pub struct SttsvMultiRun {
    /// One assembled output vector per input vector: `ys[v] = 𝓐 ×₂ x_v ×₃ x_v`.
    pub ys: Vec<Vec<f64>>,
    /// Exact per-rank communication costs for the whole batch.
    pub report: CostReport,
    /// Per-rank ternary-multiplication counts summed over the batch
    /// (`B ×` the single-vector counts).
    pub ternary_per_rank: Vec<u64>,
}

/// One rank's timing decomposition of a request-annotated batch
/// ([`RankContext::sttsv_multi_requests`]), in the rank's own
/// [`Comm::elapsed_ns`] clock. The serving driver merges these across
/// ranks with straggler semantics (each span is as slow as its slowest
/// rank).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchSpans {
    /// When this rank entered the batch (absolute).
    pub start_ns: u64,
    /// Duration of the gather-x exchange phase.
    pub gather_ns: u64,
    /// Per-vector kernel durations, indexed like the batch.
    pub compute_ns: Vec<u64>,
    /// Duration of the reduce-y exchange phase.
    pub reduce_ns: u64,
    /// When this rank finished extracting the batch's outputs (absolute).
    pub end_ns: u64,
}

impl BatchSpans {
    fn empty(now_ns: u64) -> Self {
        BatchSpans { start_ns: now_ns, end_ns: now_ns, ..BatchSpans::default() }
    }
}

/// One rank's measurement of a batch served through the double-buffered
/// pipeline ([`RankContext::sttsv_serve_pipelined`]): when the batch was
/// admitted and formed on this rank, its timing decomposition, and its
/// outputs — the same shape the sequential serving loop records per batch.
#[derive(Clone, Debug)]
pub struct ServedBatch {
    /// Batch admitted to the pipeline on this rank (absolute) — its queue
    /// wait ends here.
    pub begin_ns: u64,
    /// Shards extracted and loaded, gather traffic on the wire (absolute).
    pub formed_ns: u64,
    /// The batch's timing decomposition. `gather_ns` is the *exposed*
    /// gather time (drain only) — the pipeline's win shows up as this
    /// shrinking relative to the sequential loop.
    pub spans: BatchSpans,
    /// This rank's output shards, indexed `[v][t]`.
    pub ys: Vec<Vec<Vec<f64>>>,
    /// Ternary multiplications this rank performed for the batch.
    pub ternary: u64,
}

/// Runs [`RankContext::sttsv_multi`] on the simulated machine: all `B`
/// contractions share one pair of exchange phases, so each rank's message
/// and round counts equal a **single** STTSV while words scale with `B`.
///
/// `threads > 1` additionally attaches a [`Pool`] per rank so the
/// local-compute phase runs [`OwnedBlocks::compute_par`]
/// (results bit-identical to the sequential kernels across thread counts).
///
/// [`OwnedBlocks::compute_par`]: crate::blocks::OwnedBlocks::compute_par
pub fn parallel_sttsv_multi(
    tensor: &SymTensor3,
    part: &TetraPartition,
    xs: &[Vec<f64>],
    mode: Mode,
    threads: usize,
) -> SttsvMultiRun {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    for (v, x) in xs.iter().enumerate() {
        assert_eq!(x.len(), n, "vector {v} has wrong dimension");
    }
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref());
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let my_shards: Vec<Vec<Vec<f64>>> = xs
            .iter()
            .map(|x| {
                part.r_set(p)
                    .iter()
                    .map(|&i| {
                        let block = &x[part.block_range(i)];
                        block[part.shard_range(i, p)].to_vec()
                    })
                    .collect()
            })
            .collect();
        ctx.sttsv_multi(comm, &my_shards)
    };
    let universe = Universe::new(p_count);
    let (rank_results, report) = universe.run(rank_main);

    let mut ys = vec![vec![0.0; n]; xs.len()];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (shard_sets, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        for (v, shards) in shard_sets.into_iter().enumerate() {
            for (t, &i) in part.r_set(p).iter().enumerate() {
                let global = part.block_range(i);
                let local = part.shard_range(i, p);
                ys[v][global.start + local.start..global.start + local.end]
                    .copy_from_slice(&shards[t]);
            }
        }
    }
    SttsvMultiRun { ys, report, ternary_per_rank }
}

/// Like [`parallel_sttsv`] but with a node-level worker pool of `threads`
/// threads attached to every rank: the distributed algorithm (and its
/// communication costs) are unchanged, while each rank's local-compute
/// phase runs the work-stealing block kernels. Results are bit-identical
/// to [`parallel_sttsv`] for every thread count.
pub fn parallel_sttsv_mt(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    threads: usize,
) -> SttsvRun {
    if threads <= 1 {
        return parallel_sttsv(tensor, part, x, mode);
    }
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x.len(), n);
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = Pool::new(threads);
        let ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_pool(&pool);
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        ctx.sttsv(comm, &my_shards)
    };
    let universe = Universe::new(p_count);
    let (rank_results, report) = universe.run(rank_main);

    let mut y = vec![0.0; n];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (shards, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            y[global.start + local.start..global.start + local.end].copy_from_slice(&shards[t]);
        }
    }
    SttsvRun { y, report, ternary_per_rank }
}

/// Like [`parallel_sttsv_mt`] but routed through the **compiled rank
/// plan** ([`RankContext::with_plan`]): each rank compiles its plan on the
/// first call and the steady state is allocation-free. Results (values,
/// ternary counts, and the full [`CostReport`]) are bit-identical to the
/// legacy drivers for every mode and thread count.
pub fn parallel_sttsv_planned(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    threads: usize,
) -> SttsvRun {
    let (run, _traces) = run_sttsv_planned(tensor, part, x, mode, threads, false);
    run
}

/// Like [`parallel_sttsv_planned`] but with per-rank event tracing enabled,
/// so compiled-plan runs feed the same `symtensor-obs` profiling pipeline
/// (replay, critical path, comm matrix) as the legacy drivers. The
/// [`CostReport`] and results are identical to the untraced planned run.
pub fn parallel_sttsv_planned_traced(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    threads: usize,
) -> (SttsvRun, Vec<Vec<CommEvent>>) {
    run_sttsv_planned(tensor, part, x, mode, threads, true)
}

fn run_sttsv_planned(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    threads: usize,
    traced: bool,
) -> (SttsvRun, Vec<Vec<CommEvent>>) {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x.len(), n);
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        ctx.sttsv(comm, &my_shards)
    };
    let universe = Universe::new(p_count);
    let (rank_results, report, traces) = if traced {
        universe.run_traced(rank_main)
    } else {
        let (results, report) = universe.run(rank_main);
        (results, report, Vec::new())
    };

    let mut y = vec![0.0; n];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (shards, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            y[global.start + local.start..global.start + local.end].copy_from_slice(&shards[t]);
        }
    }
    (SttsvRun { y, report, ternary_per_rank }, traces)
}

/// [`parallel_sttsv_multi`] routed through the compiled rank plan — the
/// high-throughput serving configuration: blocks packed once into the
/// arena, the whole batch moving through one allocation-free exchange-
/// phase pair. Bit-identical to [`parallel_sttsv_multi`].
pub fn parallel_sttsv_multi_planned(
    tensor: &SymTensor3,
    part: &TetraPartition,
    xs: &[Vec<f64>],
    mode: Mode,
    threads: usize,
) -> SttsvMultiRun {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    for (v, x) in xs.iter().enumerate() {
        assert_eq!(x.len(), n, "vector {v} has wrong dimension");
    }
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let my_shards: Vec<Vec<Vec<f64>>> = xs
            .iter()
            .map(|x| {
                part.r_set(p)
                    .iter()
                    .map(|&i| {
                        let block = &x[part.block_range(i)];
                        block[part.shard_range(i, p)].to_vec()
                    })
                    .collect()
            })
            .collect();
        ctx.sttsv_multi(comm, &my_shards)
    };
    let universe = Universe::new(p_count);
    let (rank_results, report) = universe.run(rank_main);

    let mut ys = vec![vec![0.0; n]; xs.len()];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (shard_sets, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        for (v, shards) in shard_sets.into_iter().enumerate() {
            for (t, &i) in part.r_set(p).iter().enumerate() {
                let global = part.block_range(i);
                let local = part.shard_range(i, p);
                ys[v][global.start + local.start..global.start + local.end]
                    .copy_from_slice(&shards[t]);
            }
        }
    }
    SttsvMultiRun { ys, report, ternary_per_rank }
}

/// [`parallel_sttsv_planned`] with the **overlapped exchange** engine:
/// owned-only blocks compute while gather-x messages are still in flight,
/// dependency groups fire as each peer's piece lands, and (in scheduled
/// mode) finished y rows flush their reduce contributions early. Values,
/// ternary counts, and the full [`CostReport`] are bit-identical to the
/// barrier-planned run — only event *timing* differs.
pub fn parallel_sttsv_overlapped(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    threads: usize,
) -> SttsvRun {
    let (run, _traces) = run_sttsv_overlapped(tensor, part, x, mode, threads, false);
    run
}

/// Like [`parallel_sttsv_overlapped`] but with per-rank event tracing, so
/// the overlapped pipeline feeds the same `symtensor-obs` replay/critical-
/// path tooling as the barrier drivers (the E16 A/B study runs on this).
pub fn parallel_sttsv_overlapped_traced(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    threads: usize,
) -> (SttsvRun, Vec<Vec<CommEvent>>) {
    run_sttsv_overlapped(tensor, part, x, mode, threads, true)
}

fn run_sttsv_overlapped(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
    threads: usize,
    traced: bool,
) -> (SttsvRun, Vec<Vec<CommEvent>>) {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x.len(), n);
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        ctx.sttsv_overlapped(comm, &my_shards)
    };
    let universe = Universe::new(p_count);
    let (rank_results, report, traces) = if traced {
        universe.run_traced(rank_main)
    } else {
        let (results, report) = universe.run(rank_main);
        (results, report, Vec::new())
    };

    let mut y = vec![0.0; n];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (shards, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            y[global.start + local.start..global.start + local.end].copy_from_slice(&shards[t]);
        }
    }
    (SttsvRun { y, report, ternary_per_rank }, traces)
}

/// [`parallel_sttsv_multi_planned`] with the overlapped exchange engine:
/// the whole batch pipelines through one dependency-driven gather /
/// compute / reduce pass per rank. Bit-identical to the barrier-planned
/// multi-vector run.
pub fn parallel_sttsv_multi_overlapped(
    tensor: &SymTensor3,
    part: &TetraPartition,
    xs: &[Vec<f64>],
    mode: Mode,
    threads: usize,
) -> SttsvMultiRun {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    for (v, x) in xs.iter().enumerate() {
        assert_eq!(x.len(), n, "vector {v} has wrong dimension");
    }
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let my_shards: Vec<Vec<Vec<f64>>> = xs
            .iter()
            .map(|x| {
                part.r_set(p)
                    .iter()
                    .map(|&i| {
                        let block = &x[part.block_range(i)];
                        block[part.shard_range(i, p)].to_vec()
                    })
                    .collect()
            })
            .collect();
        ctx.sttsv_multi_overlapped(comm, &my_shards)
    };
    let universe = Universe::new(p_count);
    let (rank_results, report) = universe.run(rank_main);

    let mut ys = vec![vec![0.0; n]; xs.len()];
    let mut ternary_per_rank = Vec::with_capacity(p_count);
    for (p, (shard_sets, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        for (v, shards) in shard_sets.into_iter().enumerate() {
            for (t, &i) in part.r_set(p).iter().enumerate() {
                let global = part.block_range(i);
                let local = part.shard_range(i, p);
                ys[v][global.start + local.start..global.start + local.end]
                    .copy_from_slice(&shards[t]);
            }
        }
    }
    SttsvMultiRun { ys, report, ternary_per_rank }
}

/// Runs Algorithm 5 for an arbitrary dimension by zero-padding the tensor
/// and vector to [`TetraPartition::padded_dim`] (the paper's padding rule),
/// then truncating `y`.
pub fn parallel_sttsv_padded(
    tensor: &SymTensor3,
    system: symtensor_steiner::SteinerSystem,
    x: &[f64],
    mode: Mode,
) -> SttsvRun {
    let n = tensor.dim();
    assert_eq!(x.len(), n);
    let n_pad = TetraPartition::padded_dim(&system, n);
    let part = TetraPartition::new(system, n_pad).expect("padded dimension divides");
    if n_pad == n {
        return parallel_sttsv(tensor, &part, x, mode);
    }
    let mut big = SymTensor3::zeros(n_pad);
    for (i, j, k, v) in tensor.iter_lower() {
        big.set(i, j, k, v);
    }
    let mut x_pad = x.to_vec();
    x_pad.resize(n_pad, 0.0);
    let mut run = parallel_sttsv(&big, &part, &x_pad, mode);
    run.y.truncate(n);
    run
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::schedule::spherical_round_count;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::generate::random_symmetric;
    use symtensor_core::seq::sttsv_sym;
    use symtensor_steiner::{spherical, sqs8};

    fn check_against_sequential(part: &TetraPartition, mode: Mode, seed: u64) -> SttsvRun {
        let n = part.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) as f64 * 0.01).sin()).collect();
        let run = parallel_sttsv(&tensor, part, &x, mode);
        let (y_seq, _) = sttsv_sym(&tensor, &x);
        for i in 0..n {
            assert!(
                (run.y[i] - y_seq[i]).abs() < 1e-9 * (1.0 + y_seq[i].abs()),
                "y[{i}]: {} vs {}",
                run.y[i],
                y_seq[i]
            );
        }
        run
    }

    #[test]
    fn scheduled_matches_sequential_q2() {
        let part = TetraPartition::new(spherical(2), 30).unwrap();
        check_against_sequential(&part, Mode::Scheduled, 1);
    }

    #[test]
    fn all_to_all_padded_matches_sequential_q2() {
        let part = TetraPartition::new(spherical(2), 30).unwrap();
        check_against_sequential(&part, Mode::AllToAllPadded, 2);
    }

    #[test]
    fn all_to_all_sparse_matches_sequential_q2() {
        let part = TetraPartition::new(spherical(2), 30).unwrap();
        check_against_sequential(&part, Mode::AllToAllSparse, 3);
    }

    #[test]
    fn scheduled_matches_sequential_sqs8() {
        let part = TetraPartition::new(sqs8(), 56).unwrap();
        check_against_sequential(&part, Mode::Scheduled, 4);
    }

    #[test]
    fn scheduled_matches_sequential_q3() {
        let part = TetraPartition::new(spherical(3), 60).unwrap();
        check_against_sequential(&part, Mode::Scheduled, 5);
    }

    #[test]
    fn uneven_shards_still_correct() {
        // b = 6, λ₁ = 6 for q = 2 ... pick b not divisible by λ₁: n = 20,
        // b = 4, λ₁ = 6: some shards are empty.
        let part = TetraPartition::new(spherical(2), 20).unwrap();
        check_against_sequential(&part, Mode::Scheduled, 6);
        check_against_sequential(&part, Mode::AllToAllPadded, 7);
    }

    #[test]
    fn scheduled_words_match_closed_form_q3() {
        // n = 120, q = 3: per-vector words = n(q+1)/(q²+1) − n/P = 44,
        // both vectors = 88; rounds = 2 × 26.
        let n = 120;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let run = check_against_sequential(&part, Mode::Scheduled, 8);
        let expect = 2 * bounds::scheduled_words_per_vector(n, 3) as u64;
        for (p, cost) in run.report.per_rank.iter().enumerate() {
            assert_eq!(cost.words_sent, expect, "rank {p} sent");
            assert_eq!(cost.words_recv, expect, "rank {p} recv");
            assert_eq!(cost.rounds, 2 * spherical_round_count(3) as u64, "rank {p} rounds");
        }
    }

    #[test]
    fn padded_all_to_all_words_match_closed_form_q3() {
        // 4n/(q+1)·(1−1/P) = 120·(29/30) = 116 words per rank.
        let n = 120;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let run = check_against_sequential(&part, Mode::AllToAllPadded, 9);
        let expect = bounds::alltoall_words_total(n, 3) as u64;
        for (p, cost) in run.report.per_rank.iter().enumerate() {
            assert_eq!(cost.words_sent, expect, "rank {p}");
            assert_eq!(cost.words_recv, expect, "rank {p}");
        }
    }

    #[test]
    fn sparse_all_to_all_words_equal_scheduled_words() {
        let n = 120;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let run = check_against_sequential(&part, Mode::AllToAllSparse, 10);
        let expect = 2 * bounds::scheduled_words_per_vector(n, 3) as u64;
        for cost in &run.report.per_rank {
            assert_eq!(cost.words_sent, expect);
        }
    }

    #[test]
    fn ternary_counts_sum_to_global_and_match_partition() {
        let n = 60;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let run = check_against_sequential(&part, Mode::Scheduled, 11);
        let total: u64 = run.ternary_per_rank.iter().sum();
        let n64 = n as u64;
        assert_eq!(total, n64 * n64 * (n64 + 1) / 2);
        for (p, &t) in run.ternary_per_rank.iter().enumerate() {
            assert_eq!(t, part.ternary_mults(p), "rank {p}");
        }
    }

    #[test]
    fn multi_matches_per_vector_sequential_in_all_modes() {
        let n = 60;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let tensor = random_symmetric(n, &mut rng);
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|v| (0..n).map(|i| ((i * 3 + v * 11 + 1) as f64 * 0.013).sin()).collect())
            .collect();
        for mode in [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse] {
            let run = parallel_sttsv_multi(&tensor, &part, &xs, mode, 1);
            assert_eq!(run.ys.len(), xs.len());
            for (v, x) in xs.iter().enumerate() {
                let (y_seq, _) = sttsv_sym(&tensor, x);
                for i in 0..n {
                    assert!(
                        (run.ys[v][i] - y_seq[i]).abs() < 1e-9 * (1.0 + y_seq[i].abs()),
                        "{mode:?} vector {v} y[{i}]"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_words_scale_with_batch_but_rounds_do_not() {
        // The batched exchange must amortize latency: per-rank words are
        // B × the single-vector closed forms while message/round counts
        // stay those of a single STTSV.
        let n = 120;
        let batch = 3usize;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let tensor = random_symmetric(n, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..batch).map(|v| (0..n).map(|i| ((i + v) as f64 * 0.01).cos()).collect()).collect();

        let single = parallel_sttsv(&tensor, &part, &xs[0], Mode::Scheduled);
        let multi = parallel_sttsv_multi(&tensor, &part, &xs, Mode::Scheduled, 1);
        for (p, (one, many)) in
            single.report.per_rank.iter().zip(&multi.report.per_rank).enumerate()
        {
            assert_eq!(many.words_sent, batch as u64 * one.words_sent, "rank {p} words");
            assert_eq!(many.msgs_sent, one.msgs_sent, "rank {p} messages");
            assert_eq!(many.rounds, one.rounds, "rank {p} rounds");
        }
        // Ternary work also scales with the batch, matching the partition.
        for (p, &t) in multi.ternary_per_rank.iter().enumerate() {
            assert_eq!(t, batch as u64 * part.ternary_mults(p), "rank {p}");
        }

        let single_pad = parallel_sttsv(&tensor, &part, &xs[0], Mode::AllToAllPadded);
        let multi_pad = parallel_sttsv_multi(&tensor, &part, &xs, Mode::AllToAllPadded, 1);
        for (one, many) in single_pad.report.per_rank.iter().zip(&multi_pad.report.per_rank) {
            assert_eq!(many.words_sent, batch as u64 * one.words_sent);
            assert_eq!(many.msgs_sent, one.msgs_sent);
        }
    }

    #[test]
    fn mt_driver_matches_sequential_and_is_thread_count_invariant() {
        // The pooled local-compute phase uses a fixed chunk decomposition
        // and tree reduction, so it's bit-identical across *thread counts*
        // (and run-to-run); versus the sequential accumulation order it
        // agrees to rounding.
        let n = 60;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) as f64 * 0.017).sin()).collect();
        let base = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
        let pooled = parallel_sttsv_mt(&tensor, &part, &x, Mode::Scheduled, 2);
        for threads in [2usize, 4, 8] {
            let run = parallel_sttsv_mt(&tensor, &part, &x, Mode::Scheduled, threads);
            assert_eq!(run.ternary_per_rank, base.ternary_per_rank);
            for i in 0..n {
                assert!(
                    (run.y[i] - base.y[i]).abs() < 1e-12 * (1.0 + base.y[i].abs()),
                    "threads={threads} y[{i}]"
                );
                assert_eq!(run.y[i].to_bits(), pooled.y[i].to_bits(), "threads={threads} y[{i}]");
            }
            // Communication is untouched by the node-level pool.
            for (one, other) in base.report.per_rank.iter().zip(&run.report.per_rank) {
                assert_eq!(one.words_sent, other.words_sent);
                assert_eq!(one.rounds, other.rounds);
            }
        }
    }

    #[test]
    fn multi_with_pool_matches_multi_without() {
        let n = 40;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(24);
        let tensor = random_symmetric(n, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..2).map(|v| (0..n).map(|i| ((i * 2 + v) as f64 * 0.03).cos()).collect()).collect();
        let seq = parallel_sttsv_multi(&tensor, &part, &xs, Mode::AllToAllSparse, 1);
        let par4 = parallel_sttsv_multi(&tensor, &part, &xs, Mode::AllToAllSparse, 4);
        let par8 = parallel_sttsv_multi(&tensor, &part, &xs, Mode::AllToAllSparse, 8);
        assert_eq!(seq.ternary_per_rank, par4.ternary_per_rank);
        for (a, b) in seq.ys.iter().zip(&par4.ys) {
            for (va, vb) in a.iter().zip(b) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + va.abs()));
            }
        }
        // Thread-count invariance of the pooled path is exact.
        for (a, b) in par4.ys.iter().zip(&par8.ys) {
            for (va, vb) in a.iter().zip(b) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn multi_empty_batch_is_ok() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let tensor = SymTensor3::zeros(n);
        let run = parallel_sttsv_multi(&tensor, &part, &[], Mode::AllToAllSparse, 1);
        assert!(run.ys.is_empty());
        assert!(run.ternary_per_rank.iter().all(|&t| t == 0));
    }

    #[test]
    fn padded_driver_handles_arbitrary_dimension() {
        let n = 37;
        let mut rng = StdRng::seed_from_u64(12);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let run = parallel_sttsv_padded(&tensor, spherical(2), &x, Mode::Scheduled);
        assert_eq!(run.y.len(), n);
        let (y_seq, _) = sttsv_sym(&tensor, &x);
        for i in 0..n {
            assert!((run.y[i] - y_seq[i]).abs() < 1e-9);
        }
    }
}
