//! The higher-order power method on distributed vectors, with the
//! communication-optimal STTSV kernel inside (Algorithm 1 of the paper,
//! whose per-iteration bottleneck is exactly the computation this library
//! optimizes).
//!
//! `x` and `y` stay distributed in the tetrahedral shard layout across
//! iterations; each iteration costs one Algorithm-5 STTSV plus two small
//! all-reduces (norm/Rayleigh-quotient scalars and the convergence test).

use crate::algorithm5::{Mode, RankContext};
use crate::partition::TetraPartition;
use crate::schedule::CommSchedule;
use symtensor_core::hopm::{HopmOptions, HopmResult};
use symtensor_core::seq::OpCount;
use symtensor_core::SymTensor3;
use symtensor_mpsim::{Comm, CostReport, Universe};

/// Runs HOPM on the simulated machine. Returns the result (assembled on the
/// driver) plus the full communication report.
pub fn parallel_hopm(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x0: &[f64],
    opts: HopmOptions,
    mode: Mode,
) -> (HopmResult, CostReport) {
    parallel_shifted_hopm(tensor, part, x0, 0.0, opts, mode)
}

/// Shifted symmetric HOPM (S-HOPM) on the simulated machine: iterates with
/// `𝓐 ×₂ x ×₃ x + α·x`, which is guaranteed monotone for a large enough
/// shift `α` even on indefinite tensors. `α = 0` recovers plain HOPM.
pub fn parallel_shifted_hopm(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x0: &[f64],
    alpha: f64,
    opts: HopmOptions,
    mode: Mode,
) -> (HopmResult, CostReport) {
    parallel_shifted_hopm_mt(tensor, part, x0, alpha, opts, mode, 1)
}

/// [`parallel_shifted_hopm`] with a node-level worker pool of `threads`
/// threads per rank for the local-compute phase of every STTSV iteration
/// (see [`RankContext::with_pool`]); `threads ≤ 1` runs the sequential
/// kernels. The distributed algorithm and its communication costs are
/// unchanged, and the pooled kernels are bit-identical across thread
/// counts, so the iteration trajectory does not depend on `threads` beyond
/// the pooled-vs-sequential reduction order.
#[allow(clippy::too_many_arguments)]
pub fn parallel_shifted_hopm_mt(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x0: &[f64],
    alpha: f64,
    opts: HopmOptions,
    mode: Mode,
    threads: usize,
) -> (HopmResult, CostReport) {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x0.len(), n);
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let (rank_results, report) = Universe::new(p_count).run(|comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| symtensor_pool::Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref());
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x0[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        rank_hopm(comm, &ctx, my_shards, alpha, opts)
    });

    // Assemble x from the rank shards; scalars agree on all ranks.
    let mut x = vec![0.0; n];
    let mut lambda = 0.0;
    let mut iters = 0;
    let mut converged = false;
    let mut residual = 0.0;
    // Machine-wide work: sum of per-rank §7.1 ternary-multiplication
    // counts. (The distributed kernel does not track iteration-space
    // points, so `ops.points` stays 0; the parallel residual comes from
    // scalar all-reduces, not an extra STTSV, so no final-call term.)
    let mut ops = OpCount::default();
    for (p, out) in rank_results.into_iter().enumerate() {
        lambda = out.lambda;
        iters = out.iters;
        converged = out.converged;
        residual = out.residual;
        ops.ternary_mults += out.ternary;
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            x[global.start + local.start..global.start + local.end]
                .copy_from_slice(&out.x_shards[t]);
        }
    }
    (HopmResult { lambda, x, iters, converged, residual, ops }, report)
}

/// [`parallel_shifted_hopm_mt`] running on compiled rank plans
/// ([`RankContext::with_plan`]): each rank compiles its owned blocks into a
/// contiguous arena once, before the first iteration, and every subsequent
/// STTSV runs allocation-free over preallocated flat slabs. The iteration
/// trajectory is bit-identical to the legacy path at every thread count;
/// only the steady-state memory behaviour changes.
#[allow(clippy::too_many_arguments)]
pub fn parallel_shifted_hopm_planned(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x0: &[f64],
    alpha: f64,
    opts: HopmOptions,
    mode: Mode,
    threads: usize,
) -> (HopmResult, CostReport) {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x0.len(), n);
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let (rank_results, report) = Universe::new(p_count).run(|comm| {
        let p = comm.rank();
        let pool = (threads > 1).then(|| symtensor_pool::Pool::new(threads));
        let mut ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref()).with_plan();
        if let Some(pool) = pool.as_ref() {
            ctx = ctx.with_pool(pool);
        }
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x0[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        rank_hopm(comm, &ctx, my_shards, alpha, opts)
    });

    let mut x = vec![0.0; n];
    let mut lambda = 0.0;
    let mut iters = 0;
    let mut converged = false;
    let mut residual = 0.0;
    let mut ops = OpCount::default();
    for (p, out) in rank_results.into_iter().enumerate() {
        lambda = out.lambda;
        iters = out.iters;
        converged = out.converged;
        residual = out.residual;
        ops.ternary_mults += out.ternary;
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            x[global.start + local.start..global.start + local.end]
                .copy_from_slice(&out.x_shards[t]);
        }
    }
    (HopmResult { lambda, x, iters, converged, residual, ops }, report)
}

/// Per-rank HOPM state returned to the driver.
struct RankHopmOut {
    x_shards: Vec<Vec<f64>>,
    lambda: f64,
    iters: usize,
    converged: bool,
    residual: f64,
    /// Ternary multiplications this rank performed across all iterations.
    ternary: u64,
}

fn rank_hopm(
    comm: &Comm,
    ctx: &RankContext<'_>,
    mut x_shards: Vec<Vec<f64>>,
    alpha: f64,
    opts: HopmOptions,
) -> RankHopmOut {
    // Normalize the start vector globally.
    let local_sq: f64 = x_shards.iter().flatten().map(|&v| v * v).sum();
    let norm0 = comm.all_reduce(vec![local_sq]).expect("norm all-reduce")[0].sqrt();
    assert!(norm0 > 0.0, "start vector must be nonzero");
    for shard in &mut x_shards {
        for v in shard.iter_mut() {
            *v /= norm0;
        }
    }

    let mut lambda = 0.0;
    let mut residual = 0.0;
    let mut iters = 0;
    let mut converged = false;
    let mut ternary = 0u64;
    while iters < opts.max_iters {
        let (mut y_raw, count) = ctx.sttsv(comm, &x_shards);
        ternary += count;
        // ‖y_raw‖² and xᵀy_raw before shifting (for λ and the residual).
        let raw_sq: f64 = y_raw.iter().flatten().map(|&v| v * v).sum();
        let x_dot_raw: f64 =
            x_shards.iter().flatten().zip(y_raw.iter().flatten()).map(|(&a, &b)| a * b).sum();
        // Shifted iterate y = A·x·x + α·x.
        if alpha != 0.0 {
            for (shard, xs) in y_raw.iter_mut().zip(&x_shards) {
                for (v, &xv) in shard.iter_mut().zip(xs) {
                    *v += alpha * xv;
                }
            }
        }
        let shift_sq: f64 = y_raw.iter().flatten().map(|&v| v * v).sum();
        // Stage 1: all three scalars in one all-reduce.
        let global =
            comm.all_reduce(vec![shift_sq, x_dot_raw, raw_sq]).expect("stage-1 all-reduce");
        let y_norm = global[0].sqrt();
        lambda = global[1]; // ‖x‖ = 1, so xᵀ(Axx) is the Rayleigh quotient.
        residual = (global[2] - lambda * lambda).max(0.0).sqrt();
        if y_norm == 0.0 {
            break;
        }
        // Normalize y and measure the sign-aligned step.
        let mut diff_pos = 0.0;
        let mut diff_neg = 0.0;
        let mut new_shards = y_raw;
        for (shard, old) in new_shards.iter_mut().zip(&x_shards) {
            for (v, &o) in shard.iter_mut().zip(old) {
                *v /= y_norm;
                diff_pos += (o - *v) * (o - *v);
                diff_neg += (o + *v) * (o + *v);
            }
        }
        let diffs = comm.all_reduce(vec![diff_pos, diff_neg]).expect("stage-2 all-reduce");
        let diff = diffs[0].min(diffs[1]).sqrt();
        x_shards = new_shards;
        iters += 1;
        if diff < opts.tol {
            converged = true;
            break;
        }
    }
    RankHopmOut { x_shards, lambda, iters, converged, residual, ternary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symtensor_core::generate::random_odeco;
    use symtensor_core::hopm::hopm;
    use symtensor_core::ops::dot;
    use symtensor_steiner::spherical;

    #[test]
    fn parallel_hopm_matches_sequential_on_odeco() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let odeco = random_odeco(n, 3, &mut rng);
        let mut x0 = odeco.vectors[0].clone();
        x0[2] += 0.05;
        let opts = HopmOptions { tol: 1e-12, max_iters: 500 };
        let (par, report) = parallel_hopm(&odeco.tensor, &part, &x0, opts, Mode::Scheduled);
        let seq = hopm(&odeco.tensor, &x0, opts);
        assert!(par.converged);
        assert!((par.lambda - seq.lambda).abs() < 1e-8, "{} vs {}", par.lambda, seq.lambda);
        assert!((par.lambda - odeco.eigenvalues[0]).abs() < 1e-8);
        let align = dot(&par.x, &odeco.vectors[0]).abs();
        assert!(align > 1.0 - 1e-8);
        assert!(par.residual < 1e-8);
        // Communication happened on every rank.
        assert!(report.bandwidth_cost() > 0);
    }

    #[test]
    fn parallel_hopm_all_to_all_mode() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(92);
        let odeco = random_odeco(n, 2, &mut rng);
        let mut x0 = odeco.vectors[0].clone();
        x0[1] += 0.1;
        let opts = HopmOptions::default();
        let (par, _) = parallel_hopm(&odeco.tensor, &part, &x0, opts, Mode::AllToAllPadded);
        assert!(par.converged);
        assert!((par.lambda - odeco.eigenvalues[0]).abs() < 1e-8);
    }

    #[test]
    fn shifted_parallel_hopm_matches_sequential_on_indefinite_tensor() {
        use symtensor_core::generate::random_symmetric;
        use symtensor_core::hopm::{safe_shift, shifted_hopm};
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(94);
        let tensor = random_symmetric(n, &mut rng);
        let x0: Vec<f64> = (0..n).map(|i| ((i + 1) as f64 * 0.37).sin()).collect();
        let alpha = safe_shift(&tensor);
        let opts = HopmOptions { tol: 1e-13, max_iters: 20000 };
        let seq = shifted_hopm(&tensor, &x0, alpha, opts);
        let (par, _) =
            super::parallel_shifted_hopm(&tensor, &part, &x0, alpha, opts, Mode::Scheduled);
        assert!(par.converged && seq.converged);
        assert!((par.lambda - seq.lambda).abs() < 1e-6, "{} vs {}", par.lambda, seq.lambda);
        assert!(par.residual < 1e-5, "residual {}", par.residual);
    }

    #[test]
    fn ops_count_iterations_times_machine_work() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(95);
        let odeco = random_odeco(n, 3, &mut rng);
        let mut x0 = odeco.vectors[0].clone();
        x0[3] += 0.05;
        let opts = HopmOptions { tol: 1e-12, max_iters: 500 };
        let (par, _) = parallel_hopm(&odeco.tensor, &part, &x0, opts, Mode::Scheduled);
        assert!(par.converged);
        // One Algorithm-5 STTSV per iteration; each costs the sum of the
        // per-rank §7.1 ternary counts.
        let per_call: u64 = (0..part.num_procs()).map(|p| part.ternary_mults(p)).sum();
        assert_eq!(par.ops.ternary_mults, par.iters as u64 * per_call);
        assert_eq!(par.ops.flops(), 3 * par.ops.ternary_mults);
    }

    #[test]
    fn mt_hopm_converges_to_the_same_eigenpair() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(96);
        let odeco = random_odeco(n, 3, &mut rng);
        let mut x0 = odeco.vectors[0].clone();
        x0[2] += 0.05;
        let opts = HopmOptions { tol: 1e-12, max_iters: 500 };
        let (base, base_report) =
            parallel_shifted_hopm(&odeco.tensor, &part, &x0, 0.0, opts, Mode::Scheduled);
        let (mt, mt_report) =
            parallel_shifted_hopm_mt(&odeco.tensor, &part, &x0, 0.0, opts, Mode::Scheduled, 4);
        assert!(mt.converged);
        assert!((mt.lambda - base.lambda).abs() < 1e-10);
        assert_eq!(mt.iters, base.iters);
        // Communication is a function of the partition only, not the pool.
        for (a, b) in base_report.per_rank.iter().zip(&mt_report.per_rank) {
            assert_eq!(a.words_sent, b.words_sent);
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn planned_hopm_is_bit_identical_to_legacy() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(97);
        let odeco = random_odeco(n, 3, &mut rng);
        let mut x0 = odeco.vectors[0].clone();
        x0[2] += 0.05;
        let opts = HopmOptions { tol: 1e-12, max_iters: 500 };
        for mode in [Mode::Scheduled, Mode::AllToAllSparse, Mode::AllToAllPadded] {
            for threads in [1usize, 3] {
                let (base, base_report) =
                    parallel_shifted_hopm_mt(&odeco.tensor, &part, &x0, 0.0, opts, mode, threads);
                let (plan, plan_report) = parallel_shifted_hopm_planned(
                    &odeco.tensor,
                    &part,
                    &x0,
                    0.0,
                    opts,
                    mode,
                    threads,
                );
                assert_eq!(plan.x, base.x, "{mode:?} t={threads}: trajectory must be bit-equal");
                assert_eq!(plan.lambda.to_bits(), base.lambda.to_bits());
                assert_eq!(plan.iters, base.iters);
                assert_eq!(plan.ops.ternary_mults, base.ops.ternary_mults);
                assert_eq!(plan_report, base_report, "comm counters must not change");
            }
            // The pooled kernels are deterministic in the thread count: any
            // pool size reproduces the same fixed chunk tree.
            let (t2, _) =
                parallel_shifted_hopm_planned(&odeco.tensor, &part, &x0, 0.0, opts, mode, 2);
            let (t3, _) =
                parallel_shifted_hopm_planned(&odeco.tensor, &part, &x0, 0.0, opts, mode, 3);
            assert_eq!(t2.x, t3.x, "{mode:?}: pooled plan runs must not depend on pool size");
        }
    }

    #[test]
    fn unit_norm_output() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(93);
        let odeco = random_odeco(n, 2, &mut rng);
        let (par, _) = parallel_hopm(
            &odeco.tensor,
            &part,
            &odeco.vectors[0].clone(),
            HopmOptions::default(),
            Mode::Scheduled,
        );
        let norm: f64 = par.x.iter().map(|&v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-10);
    }
}
