//! Ablation: greedy diagonal-block assignment instead of the paper's
//! matching-based one (Section 6.1.3).
//!
//! The paper assigns non-central diagonal blocks via `q` disjoint matchings
//! (Corollary 6.7) so that **every** processor receives exactly `q` of
//! them, and central blocks via a Hall matching so each lands on a distinct
//! compatible processor. A natural simplification is first-fit greedy:
//! give each diagonal block to the *currently least-loaded* compatible
//! processor. Greedy always preserves the compatibility invariant (no
//! extra vector data is ever needed — the candidate list is the same), but
//! it does **not** guarantee the balanced `|N_p| = q` outcome in general;
//! this module lets experiments measure the gap.

use crate::tetra::{BlockIdx, BlockKind};
use symtensor_steiner::SteinerSystem;

/// Result of a greedy diagonal assignment.
#[derive(Clone, Debug)]
pub struct GreedyDiagonals {
    /// Non-central diagonal blocks per processor.
    pub n_sets: Vec<Vec<BlockIdx>>,
    /// Central diagonal block(s) per processor (greedy may stack several
    /// on one processor).
    pub d_sets: Vec<Vec<usize>>,
}

impl GreedyDiagonals {
    /// Greedy (least-loaded first-fit) assignment over the same candidate
    /// sets the matching construction uses.
    pub fn assign(system: &SteinerSystem) -> Self {
        let m = system.num_points();
        let p_count = system.num_blocks();
        let mut n_sets: Vec<Vec<BlockIdx>> = vec![Vec::new(); p_count];
        let mut d_sets: Vec<Vec<usize>> = vec![Vec::new(); p_count];
        let mut load = vec![0usize; p_count];

        // Non-central blocks in lexicographic order.
        for a in 1..m {
            for b in 0..a {
                for blk in [BlockIdx { i: a, j: a, k: b }, BlockIdx { i: a, j: b, k: b }] {
                    let candidates: Vec<usize> = (0..p_count)
                        .filter(|&p| {
                            let rp = system.blocks()[p].as_slice();
                            rp.binary_search(&a).is_ok() && rp.binary_search(&b).is_ok()
                        })
                        .collect();
                    let &winner =
                        candidates.iter().min_by_key(|&&p| load[p]).expect("λ₂ ≥ 1 candidates");
                    n_sets[winner].push(blk);
                    load[winner] += 1;
                }
            }
        }
        // Central blocks.
        for i in 0..m {
            let candidates: Vec<usize> =
                (0..p_count).filter(|&p| system.blocks()[p].binary_search(&i).is_ok()).collect();
            let &winner = candidates
                .iter()
                .min_by_key(|&&p| d_sets[p].len())
                .expect("every point lies in λ₁ blocks");
            d_sets[winner].push(i);
        }
        GreedyDiagonals { n_sets, d_sets }
    }

    /// Maximum non-central blocks on any processor.
    pub fn max_non_central(&self) -> usize {
        self.n_sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum non-central blocks on any processor.
    pub fn min_non_central(&self) -> usize {
        self.n_sets.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Maximum central blocks stacked on one processor (the matching
    /// guarantees ≤ 1).
    pub fn max_central(&self) -> usize {
        self.d_sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks the compatibility invariant: every assigned block's indices
    /// lie inside the owner's `R_p` (so no extra vector data is required).
    pub fn verify_compatibility(&self, system: &SteinerSystem) -> bool {
        for (p, blocks) in self.n_sets.iter().enumerate() {
            let rp = system.blocks()[p].as_slice();
            for blk in blocks {
                debug_assert!(matches!(
                    blk.kind(),
                    BlockKind::NonCentralIIK | BlockKind::NonCentralIKK
                ));
                if [blk.i, blk.j, blk.k].iter().any(|idx| rp.binary_search(idx).is_err()) {
                    return false;
                }
            }
        }
        for (p, centrals) in self.d_sets.iter().enumerate() {
            let rp = system.blocks()[p].as_slice();
            if centrals.iter().any(|i| rp.binary_search(i).is_err()) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_steiner::{spherical, sqs8};

    #[test]
    fn greedy_preserves_compatibility() {
        for system in [spherical(2), spherical(3), sqs8()] {
            let greedy = GreedyDiagonals::assign(&system);
            assert!(greedy.verify_compatibility(&system));
            // All blocks assigned.
            let m = system.num_points();
            let total: usize = greedy.n_sets.iter().map(Vec::len).sum();
            assert_eq!(total, m * (m - 1));
            let centrals: usize = greedy.d_sets.iter().map(Vec::len).sum();
            assert_eq!(centrals, m);
        }
    }

    #[test]
    fn matching_is_at_least_as_balanced_as_greedy() {
        // The matching yields exactly d blocks per processor; greedy can
        // only match or exceed that spread.
        for (system, d) in [(spherical(2), 2usize), (spherical(3), 3), (sqs8(), 4)] {
            let greedy = GreedyDiagonals::assign(&system);
            assert!(greedy.max_non_central() >= d);
            assert!(greedy.min_non_central() <= d);
            // Least-loaded greedy is usually good; record that it never
            // exceeds twice the balanced load on these systems.
            assert!(greedy.max_non_central() <= 2 * d, "greedy spread too large");
        }
    }

    #[test]
    fn greedy_central_stacking_is_bounded() {
        for system in [spherical(2), spherical(3), sqs8()] {
            let greedy = GreedyDiagonals::assign(&system);
            // Matching guarantees ≤ 1; greedy (least-loaded) should rarely
            // exceed 1, never exceed 2 at these sizes.
            assert!(greedy.max_central() <= 2);
        }
    }
}
