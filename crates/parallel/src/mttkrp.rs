//! Parallel symmetric MTTKRP and the distributed CP gradient — the
//! generalization the paper's Section 8 targets.
//!
//! Mode-1 symmetric MTTKRP `Y_{iℓ} = Σ_{jk} a_{ijk} X_{jℓ} X_{kℓ}` is one
//! STTSV per factor column, so the tetrahedral distribution applies
//! unchanged: each rank owns, for every row block `i ∈ R_p`, its shard of
//! **all `r` columns**. The gather/reduce phases ship all columns together
//! ("wide" shards), so the round structure (and hence the latency cost) is
//! identical to a single STTSV while the bandwidth scales by exactly `r` —
//! the best possible, since each column is an independent STTSV subject to
//! the Theorem 5.2 bound.
//!
//! On top of MTTKRP, [`parallel_cp_gradient`] evaluates the paper's
//! Algorithm 2 (`Y = X·[(XᵀX)∗(XᵀX)] − MTTKRP(𝓐, X)`) with the Gram matrix
//! assembled by an `r²`-word all-reduce of per-rank partial Grams.

use crate::algorithm5::{Mode, RankContext};
use crate::partition::TetraPartition;
use crate::schedule::CommSchedule;
use symtensor_core::ops::Matrix;
use symtensor_core::SymTensor3;
use symtensor_mpsim::{Comm, CostReport, Universe};

const TAG_MX: u64 = 3 << 40;
const TAG_MY: u64 = 4 << 40;

impl RankContext<'_> {
    /// One distributed MTTKRP over `r` columns. `my_wide_shards[t]` holds
    /// this rank's shard of row block `R_p[t]` for every column,
    /// column-major: `[col0 shard | col1 shard | …]`. Returns wide `y`
    /// shards (same layout) and the ternary-multiplication count.
    pub fn mttkrp(
        &self,
        comm: &Comm,
        my_wide_shards: &[Vec<f64>],
        r: usize,
    ) -> (Vec<Vec<f64>>, u64) {
        let part = self.part;
        let p = comm.rank();
        let rp = part.r_set(p);
        assert_eq!(my_wide_shards.len(), rp.len());
        let b = part.block_size();

        // --- Gather wide x row blocks: x_wide[t] is b·r long, column-major.
        let mut x_wide: Vec<Vec<f64>> = vec![vec![0.0; b * r]; rp.len()];
        for (t, &i) in rp.iter().enumerate() {
            let range = part.shard_range(i, p);
            let s = range.len();
            assert_eq!(my_wide_shards[t].len(), s * r, "wide shard must hold r columns");
            for col in 0..r {
                x_wide[t][col * b + range.start..col * b + range.end]
                    .copy_from_slice(&my_wide_shards[t][col * s..(col + 1) * s]);
            }
        }
        self.exchange_phase(
            comm,
            TAG_MX,
            r,
            |_, t, _peer| my_wide_shards[t].clone(),
            |i, t, peer| {
                let range = part.shard_range(i, peer);
                let s = range.len();
                (
                    s * r,
                    Box::new(move |x_dst: &mut [Vec<f64>], piece: &[f64]| {
                        for col in 0..r {
                            x_dst[t][col * b + range.start..col * b + range.end]
                                .copy_from_slice(&piece[col * s..(col + 1) * s]);
                        }
                    }),
                )
            },
            &mut x_wide,
        );

        // --- Compute: run the block kernels once per column.
        let mut y_wide: Vec<Vec<f64>> = vec![vec![0.0; b * r]; rp.len()];
        let mut ternary = 0u64;
        for col in 0..r {
            let x_col: Vec<Vec<f64>> =
                x_wide.iter().map(|wide| wide[col * b..(col + 1) * b].to_vec()).collect();
            let mut y_col: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
            ternary += self.owned.compute(&x_col, &mut y_col, |i| rp.binary_search(&i).unwrap());
            for (t, y) in y_col.into_iter().enumerate() {
                y_wide[t][col * b..(col + 1) * b].copy_from_slice(&y);
            }
        }

        // --- Reduce wide y shards.
        let mut y_out: Vec<Vec<f64>> = rp
            .iter()
            .enumerate()
            .map(|(t, &i)| {
                let range = part.shard_range(i, p);
                let s = range.len();
                let mut out = vec![0.0; s * r];
                for col in 0..r {
                    out[col * s..(col + 1) * s]
                        .copy_from_slice(&y_wide[t][col * b + range.start..col * b + range.end]);
                }
                out
            })
            .collect();
        self.exchange_phase(
            comm,
            TAG_MY,
            r,
            |i, t, peer| {
                let range = part.shard_range(i, peer);
                let s = range.len();
                let mut buf = Vec::with_capacity(s * r);
                for col in 0..r {
                    buf.extend_from_slice(&y_wide[t][col * b + range.start..col * b + range.end]);
                }
                buf
            },
            |i, t, _peer| {
                let s = part.shard_range(i, p).len();
                (
                    s * r,
                    Box::new(move |y_dst: &mut [Vec<f64>], piece: &[f64]| {
                        for (acc, &v) in y_dst[t].iter_mut().zip(piece) {
                            *acc += v;
                        }
                    }),
                )
            },
            &mut y_out,
        );

        (y_out, ternary)
    }
}

/// Result of a driver-level parallel MTTKRP / CP-gradient run.
#[derive(Clone, Debug)]
pub struct MttkrpRun {
    /// The `n × r` result matrix.
    pub y: Matrix,
    /// Exact per-rank communication costs.
    pub report: CostReport,
    /// Per-rank ternary-multiplication counts.
    pub ternary_per_rank: Vec<u64>,
}

/// Slices rank `p`'s wide shards of a replicated `n × r` matrix.
fn wide_shards(part: &TetraPartition, p: usize, mat: &Matrix) -> Vec<Vec<f64>> {
    let r = mat.cols();
    part.r_set(p)
        .iter()
        .map(|&i| {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            let s = local.len();
            let mut shard = Vec::with_capacity(s * r);
            for col in 0..r {
                for off in local.clone() {
                    shard.push(mat.get(global.start + off, col));
                }
            }
            let _ = s;
            shard
        })
        .collect()
}

/// Assembles rank results (wide y shards) into an `n × r` matrix.
fn assemble(part: &TetraPartition, r: usize, rank_shards: Vec<(usize, Vec<Vec<f64>>)>) -> Matrix {
    let n = part.dim();
    let mut y = Matrix::zeros(n, r);
    for (p, shards) in rank_shards {
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            let s = local.len();
            for col in 0..r {
                for (off_idx, off) in local.clone().enumerate() {
                    y.set(global.start + off, col, shards[t][col * s + off_idx]);
                }
            }
        }
    }
    y
}

/// Runs the distributed symmetric MTTKRP on the simulated machine.
pub fn parallel_mttkrp(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x_mat: &Matrix,
    mode: Mode,
) -> MttkrpRun {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x_mat.rows(), n);
    let r = x_mat.cols();
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let (rank_results, report) = Universe::new(p_count).run(|comm| {
        let p = comm.rank();
        let ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref());
        let shards = wide_shards(part, p, x_mat);
        ctx.mttkrp(comm, &shards, r)
    });

    let mut ternary_per_rank = Vec::with_capacity(p_count);
    let mut rank_shards = Vec::with_capacity(p_count);
    for (p, (shards, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        rank_shards.push((p, shards));
    }
    MttkrpRun { y: assemble(part, r, rank_shards), report, ternary_per_rank }
}

/// Distributed Algorithm 2: the symmetric CP gradient
/// `Y = X·[(XᵀX)∗(XᵀX)] − MTTKRP(𝓐, X)`, with the `r × r` Gram matrix
/// assembled by an all-reduce of per-rank partial Grams (`r²` words, a
/// lower-order term next to the MTTKRP traffic).
pub fn parallel_cp_gradient(
    tensor: &SymTensor3,
    part: &TetraPartition,
    x_mat: &Matrix,
    mode: Mode,
) -> MttkrpRun {
    let n = part.dim();
    assert_eq!(tensor.dim(), n);
    assert_eq!(x_mat.rows(), n);
    let r = x_mat.cols();
    let p_count = part.num_procs();
    let schedule = if mode == Mode::Scheduled { Some(CommSchedule::build(part)) } else { None };

    let (rank_results, report) = Universe::new(p_count).run(|comm| {
        let p = comm.rank();
        let ctx = RankContext::new(tensor, part, p, mode, schedule.as_ref());
        let shards = wide_shards(part, p, x_mat);
        // Distributed Gram: each rank contributes its owned rows.
        let mut partial = vec![0.0; r * r];
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let local = part.shard_range(i, p);
            let s = local.len();
            for a in 0..r {
                for bb in 0..r {
                    let mut acc = 0.0;
                    for off in 0..s {
                        acc += shards[t][a * s + off] * shards[t][bb * s + off];
                    }
                    partial[a * r + bb] += acc;
                }
            }
        }
        let gram = comm.all_reduce(partial).expect("gram all-reduce");
        // G = (XᵀX) ∗ (XᵀX).
        let g: Vec<f64> = gram.iter().map(|&v| v * v).collect();
        // MTTKRP part.
        let (mttkrp_shards, ternary) = ctx.mttkrp(comm, &shards, r);
        // Y = X·G − MTTKRP, computed on the owned shards only.
        let out: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .enumerate()
            .map(|(t, &i)| {
                let s = part.shard_range(i, p).len();
                let mut y = vec![0.0; s * r];
                for col in 0..r {
                    for off in 0..s {
                        let mut acc = 0.0;
                        for inner in 0..r {
                            acc += shards[t][inner * s + off] * g[inner * r + col];
                        }
                        y[col * s + off] = acc - mttkrp_shards[t][col * s + off];
                    }
                }
                y
            })
            .collect();
        (out, ternary)
    });

    let mut ternary_per_rank = Vec::with_capacity(p_count);
    let mut rank_shards = Vec::with_capacity(p_count);
    for (p, (shards, ternary)) in rank_results.into_iter().enumerate() {
        ternary_per_rank.push(ternary);
        rank_shards.push((p, shards));
    }
    MttkrpRun { y: assemble(part, r, rank_shards), report, ternary_per_rank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use symtensor_core::cp::cp_gradient;
    use symtensor_core::generate::random_symmetric;
    use symtensor_core::mttkrp::mttkrp_sym;
    use symtensor_steiner::spherical;

    fn random_factor(n: usize, r: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, r);
        for row in 0..n {
            for col in 0..r {
                m.set(row, col, rng.gen::<f64>() - 0.5);
            }
        }
        m
    }

    fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f64) {
        for row in 0..a.rows() {
            for col in 0..a.cols() {
                let (x, y) = (a.get(row, col), b.get(row, col));
                assert!((x - y).abs() < tol * (1.0 + x.abs()), "[{row},{col}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_mttkrp_matches_sequential() {
        let n = 30;
        let r = 3;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let tensor = random_symmetric(n, &mut rng);
        let x = random_factor(n, r, 52);
        let (y_ref, _) = mttkrp_sym(&tensor, &x);
        for mode in [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse] {
            let run = parallel_mttkrp(&tensor, &part, &x, mode);
            assert_matrix_close(&run.y, &y_ref, 1e-9);
        }
    }

    #[test]
    fn mttkrp_bandwidth_is_r_times_sttsv() {
        let n = 60;
        let q = 2usize;
        let r = 4;
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        let tensor = random_symmetric(n, &mut rng);
        let x = random_factor(n, r, 54);
        let run = parallel_mttkrp(&tensor, &part, &x, Mode::Scheduled);
        let per_vec = bounds::scheduled_words_per_vector(n, q) as u64;
        for cost in &run.report.per_rank {
            assert_eq!(cost.words_sent, 2 * per_vec * r as u64);
            // Same round structure as a single STTSV.
            assert_eq!(cost.rounds, 2 * crate::schedule::spherical_round_count(q) as u64);
        }
        // Work: r times the single-vector total.
        let total: u64 = run.ternary_per_rank.iter().sum();
        let n64 = n as u64;
        assert_eq!(total, r as u64 * n64 * n64 * (n64 + 1) / 2);
    }

    #[test]
    fn parallel_cp_gradient_matches_sequential() {
        let n = 30;
        let r = 2;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        let tensor = random_symmetric(n, &mut rng);
        let x = random_factor(n, r, 56);
        let y_ref = cp_gradient(&tensor, &x);
        for mode in [Mode::Scheduled, Mode::AllToAllPadded] {
            let run = parallel_cp_gradient(&tensor, &part, &x, mode);
            assert_matrix_close(&run.y, &y_ref, 1e-8);
        }
    }

    #[test]
    fn single_column_mttkrp_equals_sttsv_run() {
        let n = 30;
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(57);
        let tensor = random_symmetric(n, &mut rng);
        let x = random_factor(n, 1, 58);
        let mrun = parallel_mttkrp(&tensor, &part, &x, Mode::Scheduled);
        let xvec = x.col(0);
        let srun = crate::parallel_sttsv(&tensor, &part, &xvec, Mode::Scheduled);
        for i in 0..n {
            assert!((mrun.y.get(i, 0) - srun.y[i]).abs() < 1e-12);
        }
        assert_eq!(mrun.report, srun.report);
    }
}
