//! Closed-form costs: the communication lower bound (Theorem 5.2), the
//! algorithm's cost formulas (Sections 7.1–7.2) and the optimization
//! problem of Lemma 5.1 they derive from.

/// Lemma 5.1: minimize `x₁ + 2x₂` subject to
/// `n(n−1)(n−2)/(6P) ≤ x₁` and `n(n−1)(n−2)/P ≤ x₂³`. The optimum is at
/// both constraints tight; returns `(x₁*, x₂*)`.
pub fn lemma51_optimum(n: usize, p: usize) -> (f64, f64) {
    let s = strict_tetra(n) as f64 / p as f64;
    (s, (6.0 * s).cbrt())
}

/// Strict lower-tetrahedron size `n(n−1)(n−2)/6`.
pub fn strict_tetra(n: usize) -> u64 {
    let n = n as u64;
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

/// Theorem 5.2: any load-balanced parallel atomic STTSV algorithm has a
/// processor communicating at least
/// `2·(n(n−1)(n−2)/P)^{1/3} − 2n/P` words.
pub fn lower_bound_words(n: usize, p: usize) -> f64 {
    let nn = n as f64;
    let pp = p as f64;
    2.0 * (nn * (nn - 1.0) * (nn - 2.0) / pp).cbrt() - 2.0 * nn / pp
}

/// The lower bound's leading term `2n/P^{1/3}`.
pub fn lower_bound_leading(n: usize, p: usize) -> f64 {
    2.0 * n as f64 / (p as f64).cbrt()
}

/// Number of processors for the spherical family: `P = q(q²+1)`.
pub fn spherical_procs(q: usize) -> usize {
    q * (q * q + 1)
}

/// §7.2.2: per-vector words each processor sends (= receives) under the
/// point-to-point schedule: `n(q+1)/(q²+1) − n/P`. Exact integer when
/// `q(q+1) | b`.
pub fn scheduled_words_per_vector(n: usize, q: usize) -> usize {
    let p = spherical_procs(q);
    n * (q + 1) / (q * q + 1) - n / p
}

/// §7.2.2: total (both vectors) bandwidth of the scheduled algorithm:
/// `2(n(q+1)/(q²+1) − n/P)`.
pub fn scheduled_words_total(n: usize, q: usize) -> usize {
    2 * scheduled_words_per_vector(n, q)
}

/// §7.2.2 (All-to-All collective variant): per-vector cost
/// `2n/(q+1)·(1 − 1/P)`; total over both vectors `4n/(q+1)·(1 − 1/P)`.
/// Exact integer when `q(q+1)(q²+1) | n·2`.
pub fn alltoall_words_total(n: usize, q: usize) -> usize {
    let p = spherical_procs(q);
    let b = n / (q * q + 1);
    let shard2 = 2 * b / (q * (q + 1));
    // Two vectors, P−1 uniform messages each.
    2 * shard2 * (p - 1)
}

/// §7.1: leading-order per-processor computational cost `n³/(2P)` ternary
/// multiplications.
pub fn comp_cost_leading(n: usize, p: usize) -> f64 {
    let nn = n as f64;
    nn * nn * nn / (2.0 * p as f64)
}

/// §7.1: the exact upper bound on per-processor ternary multiplications:
/// `(q+1)q(q−1)/6·3b³ + q·3b²(b−1) + 3b(b−1)(b−2)/6 + 2b(b-1) + b`
/// (off-diagonal + non-central + central terms; the paper's displayed bound
/// keeps only the 3·b(b−1)(b−2)/6 central term, we include the full
/// central-block count).
pub fn comp_cost_upper(q: usize, b: usize) -> u64 {
    use crate::tetra::{ternary_mults_in_block, BlockKind};
    let off = (q + 1) * q * (q.max(1) - 1) / 6;
    off as u64 * ternary_mults_in_block(BlockKind::OffDiagonal, b)
        + q as u64 * ternary_mults_in_block(BlockKind::NonCentralIIK, b)
        + ternary_mults_in_block(BlockKind::CentralDiagonal, b)
}

/// §6.1.3: per-processor tensor storage upper bound (in words):
/// `(q+1)q(q−1)/6·b³ + q·b²(b+1)/2 + b(b+1)(b+2)/6 ≈ n³/(6P)`.
pub fn tensor_words_upper(q: usize, b: usize) -> u64 {
    use crate::tetra::{entries_in_block, BlockKind};
    let off = (q + 1) * q * (q.max(1) - 1) / 6;
    (off * entries_in_block(BlockKind::OffDiagonal, b)
        + q * entries_in_block(BlockKind::NonCentralIIK, b)
        + entries_in_block(BlockKind::CentralDiagonal, b)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma51_constraints_hold_at_optimum() {
        for &(n, p) in &[(120usize, 30usize), (1000, 350), (60, 10)] {
            let (x1, x2) = lemma51_optimum(n, p);
            let s = strict_tetra(n) as f64 / p as f64;
            assert!(x1 >= s - 1e-9);
            assert!(x2.powi(3) >= 6.0 * s - 1e-6);
            // Objective value = lower bound + owned data.
            let objective = x1 + 2.0 * x2;
            let owned = s + 2.0 * n as f64 / p as f64;
            assert!((objective - owned - lower_bound_words(n, p)).abs() < 1e-6);
        }
    }

    #[test]
    fn lower_bound_is_positive_and_below_leading_term() {
        for q in [2usize, 3, 5, 7] {
            let p = spherical_procs(q);
            let n = (q * q + 1) * q * (q + 1) * 4;
            let lb = lower_bound_words(n, p);
            assert!(lb > 0.0);
            assert!(lb <= lower_bound_leading(n, p));
        }
    }

    #[test]
    fn scheduled_cost_approaches_lower_bound() {
        // The ratio (algorithm cost)/(lower bound) is ≥ 1 and converges to 1
        // like 1 + O(1/q): the leading coefficient (the constant 2 in
        // 2n/P^{1/3}) matches exactly, which is the paper's tightness claim.
        let mut prev_ratio = f64::INFINITY;
        for q in [2usize, 3, 4, 5, 7, 9, 11, 13] {
            let p = spherical_procs(q);
            let n = (q * q + 1) * q * (q + 1) * 8;
            let algo = scheduled_words_total(n, q) as f64;
            let lb = lower_bound_words(n, p);
            let ratio = algo / lb;
            assert!(ratio >= 0.99, "algorithm can't beat the bound: q={q} ratio={ratio}");
            assert!(ratio <= 1.0 + 2.0 / q as f64, "q={q}: ratio {ratio} too far from 1");
            assert!(ratio < prev_ratio + 0.02, "ratio should shrink with q: q={q}");
            prev_ratio = ratio;
        }
        assert!(prev_ratio < 1.09, "at q=13 the ratio must be within 9% of 1, got {prev_ratio}");
    }

    #[test]
    fn alltoall_vs_scheduled_ratio_approaches_two() {
        // §7.2.2: the collective variant costs 2(q²+1)/(q+1)² × the
        // scheduled one, which rises toward 2 as q grows.
        let mut prev = 0.0;
        for q in [3usize, 5, 7, 9, 13] {
            let n = (q * q + 1) * q * (q + 1) * 4;
            let ratio = alltoall_words_total(n, q) as f64 / scheduled_words_total(n, q) as f64;
            assert!(ratio > 1.2 && ratio < 2.0, "q={q}: ratio {ratio}");
            assert!(ratio > prev, "ratio should grow with q");
            prev = ratio;
        }
        assert!(prev > 1.7, "at q=13 the ratio must be close to 2, got {prev}");
    }

    #[test]
    fn comp_cost_upper_close_to_leading() {
        for q in [3usize, 5, 7] {
            let b = q * (q + 1) * 4;
            let n = (q * q + 1) * b;
            let p = spherical_procs(q);
            let upper = comp_cost_upper(q, b) as f64;
            let leading = comp_cost_leading(n, p);
            assert!(upper >= leading * 0.95);
            assert!(upper <= leading * 1.5, "q={q}: {upper} vs {leading}");
        }
    }

    #[test]
    fn tensor_storage_close_to_ideal() {
        for q in [3usize, 5] {
            let b = q * (q + 1);
            let n = (q * q + 1) * b;
            let p = spherical_procs(q);
            let upper = tensor_words_upper(q, b) as f64;
            let ideal = (n as f64).powi(3) / (6.0 * p as f64);
            assert!(upper >= ideal * 0.9);
            assert!(upper <= ideal * 1.6, "q={q}: {upper} vs {ideal}");
        }
    }

    #[test]
    fn strict_tetra_small_cases() {
        assert_eq!(strict_tetra(0), 0);
        assert_eq!(strict_tetra(2), 0);
        assert_eq!(strict_tetra(3), 1);
        assert_eq!(strict_tetra(4), 4);
        assert_eq!(strict_tetra(10), 120);
    }
}
