//! Closed-form costs: the communication lower bound (Theorem 5.2), the
//! algorithm's cost formulas (Sections 7.1–7.2) and the optimization
//! problem of Lemma 5.1 they derive from.

/// Lemma 5.1: minimize `x₁ + 2x₂` subject to
/// `n(n−1)(n−2)/(6P) ≤ x₁` and `n(n−1)(n−2)/P ≤ x₂³`. The optimum is at
/// both constraints tight; returns `(x₁*, x₂*)`.
pub fn lemma51_optimum(n: usize, p: usize) -> (f64, f64) {
    let s = strict_tetra(n) as f64 / p as f64;
    (s, (6.0 * s).cbrt())
}

/// Strict lower-tetrahedron size `n(n−1)(n−2)/6`.
pub fn strict_tetra(n: usize) -> u64 {
    let n = n as u64;
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

/// Theorem 5.2: any load-balanced parallel atomic STTSV algorithm has a
/// processor communicating at least
/// `2·(n(n−1)(n−2)/P)^{1/3} − 2n/P` words, clamped at 0 — for `n < 3` the
/// strict tetrahedron is empty and the raw formula goes negative
/// (`n(n−1)(n−2) ≤ 0`), but a word count can never be: zero communication
/// is always "allowed" by the bound in the degenerate cases.
pub fn lower_bound_words(n: usize, p: usize) -> f64 {
    let nn = n as f64;
    let pp = p as f64;
    (2.0 * (nn * (nn - 1.0) * (nn - 2.0) / pp).cbrt() - 2.0 * nn / pp).max(0.0)
}

/// The lower bound's leading term `2n/P^{1/3}`.
pub fn lower_bound_leading(n: usize, p: usize) -> f64 {
    2.0 * n as f64 / (p as f64).cbrt()
}

/// Number of processors for the spherical family: `P = q(q²+1)`.
pub fn spherical_procs(q: usize) -> usize {
    q * (q * q + 1)
}

/// §7.2.2: per-vector words each processor sends (= receives) under the
/// point-to-point schedule: `n(q+1)/(q²+1) − n/P`.
///
/// Exact (integer) only when the partition's divisibility precondition
/// `q(q+1) | b` holds for `b = n/(q²+1)`; the integer divisions otherwise
/// truncate silently and the returned count is wrong, so the precondition
/// is `debug_assert!`ed. For arbitrary `n` (model sweeps over non-divisible
/// sizes) use [`scheduled_words_per_vector_f64`].
pub fn scheduled_words_per_vector(n: usize, q: usize) -> usize {
    debug_assert!(
        n % (q * q + 1) == 0 && (n / (q * q + 1)) % (q * (q + 1)) == 0,
        "scheduled_words_per_vector(n={n}, q={q}): requires q(q+1) | b with b = n/(q²+1); \
         use scheduled_words_per_vector_f64 for non-divisible n"
    );
    let p = spherical_procs(q);
    n * (q + 1) / (q * q + 1) - n / p
}

/// [`scheduled_words_per_vector`] as an exact real-valued model,
/// `n(q+1)/(q²+1) − n/P`, valid for **any** `n` (no divisibility
/// precondition). Agrees exactly with the integer version whenever that
/// one's precondition holds.
pub fn scheduled_words_per_vector_f64(n: usize, q: usize) -> f64 {
    let nn = n as f64;
    let qq = q as f64;
    nn * (qq + 1.0) / (qq * qq + 1.0) - nn / spherical_procs(q) as f64
}

/// §7.2.2: total (both vectors) bandwidth of the scheduled algorithm:
/// `2(n(q+1)/(q²+1) − n/P)`. Same divisibility precondition as
/// [`scheduled_words_per_vector`].
pub fn scheduled_words_total(n: usize, q: usize) -> usize {
    2 * scheduled_words_per_vector(n, q)
}

/// Real-valued twin of [`scheduled_words_total`], valid for any `n`.
pub fn scheduled_words_total_f64(n: usize, q: usize) -> f64 {
    2.0 * scheduled_words_per_vector_f64(n, q)
}

/// §7.2.2 (All-to-All collective variant): per-vector cost
/// `2n/(q+1)·(1 − 1/P)`; total over both vectors `4n/(q+1)·(1 − 1/P)`.
///
/// Exact (integer) only when `q(q+1)(q²+1) | 2n` — equivalently
/// `q(q+1) | 2b` with `b = n/(q²+1)`, the padded-shard divisibility — and
/// `debug_assert!`ed as such; the chained integer divisions otherwise
/// truncate (down to returning 0 for small non-divisible `n`). For
/// arbitrary `n` use [`alltoall_words_total_f64`].
pub fn alltoall_words_total(n: usize, q: usize) -> usize {
    debug_assert!(
        n % (q * q + 1) == 0 && (2 * n / (q * q + 1)) % (q * (q + 1)) == 0,
        "alltoall_words_total(n={n}, q={q}): requires q(q+1)(q²+1) | 2n; \
         use alltoall_words_total_f64 for non-divisible n"
    );
    let p = spherical_procs(q);
    let b = n / (q * q + 1);
    let shard2 = 2 * b / (q * (q + 1));
    // Two vectors, P−1 uniform messages each.
    2 * shard2 * (p - 1)
}

/// Real-valued twin of [`alltoall_words_total`]:
/// `4n/(q+1)·(1 − 1/P)`, valid for any `n`. Algebraically equal to the
/// integer version whenever its precondition holds
/// (`2·2b/(q(q+1))·(P−1) = 4n/(q+1)·(1−1/P)` with `b = n/(q²+1)`,
/// `P = q(q²+1)`).
pub fn alltoall_words_total_f64(n: usize, q: usize) -> f64 {
    let nn = n as f64;
    let qq = q as f64;
    4.0 * nn / (qq + 1.0) * (1.0 - 1.0 / spherical_procs(q) as f64)
}

/// §7.1: leading-order per-processor computational cost `n³/(2P)` ternary
/// multiplications.
pub fn comp_cost_leading(n: usize, p: usize) -> f64 {
    let nn = n as f64;
    nn * nn * nn / (2.0 * p as f64)
}

/// §7.1: the exact upper bound on per-processor ternary multiplications:
/// `(q+1)q(q−1)/6·3b³ + q·(3b²(b−1)/2 + 2b²) + 3b(b−1)(b−2)/6 + 2b(b−1) + b`
/// (off-diagonal + non-central + central terms; the paper's displayed bound
/// keeps only the leading term of each class, we include the full
/// per-block counts).
///
/// The non-central term is `3b²(b−1)/2 + 2b²` per block — a non-central
/// block holds `b·b(b−1)/2` entries with three distinct global indices
/// (3 multiplications each) and `b²` entries with exactly two equal
/// (2 each) — matching [`ternary_mults_in_block`], which is pinned against
/// a brute-force block enumeration in `tetra`'s tests. This is attained
/// exactly by the ranks owning a central diagonal block (the heaviest
/// assignment: `(q+1)q(q−1)/6` off-diagonal + `q` non-central + 1 central).
pub fn comp_cost_upper(q: usize, b: usize) -> u64 {
    use crate::tetra::{ternary_mults_in_block, BlockKind};
    let off = (q + 1) * q * (q.max(1) - 1) / 6;
    off as u64 * ternary_mults_in_block(BlockKind::OffDiagonal, b)
        + q as u64 * ternary_mults_in_block(BlockKind::NonCentralIIK, b)
        + ternary_mults_in_block(BlockKind::CentralDiagonal, b)
}

/// §6.1.3: per-processor tensor storage upper bound (in words):
/// `(q+1)q(q−1)/6·b³ + q·b²(b+1)/2 + b(b+1)(b+2)/6 ≈ n³/(6P)`.
pub fn tensor_words_upper(q: usize, b: usize) -> u64 {
    use crate::tetra::{entries_in_block, BlockKind};
    let off = (q + 1) * q * (q.max(1) - 1) / 6;
    (off * entries_in_block(BlockKind::OffDiagonal, b)
        + q * entries_in_block(BlockKind::NonCentralIIK, b)
        + entries_in_block(BlockKind::CentralDiagonal, b)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma51_constraints_hold_at_optimum() {
        for &(n, p) in &[(120usize, 30usize), (1000, 350), (60, 10)] {
            let (x1, x2) = lemma51_optimum(n, p);
            let s = strict_tetra(n) as f64 / p as f64;
            assert!(x1 >= s - 1e-9);
            assert!(x2.powi(3) >= 6.0 * s - 1e-6);
            // Objective value = lower bound + owned data.
            let objective = x1 + 2.0 * x2;
            let owned = s + 2.0 * n as f64 / p as f64;
            assert!((objective - owned - lower_bound_words(n, p)).abs() < 1e-6);
        }
    }

    #[test]
    fn lower_bound_is_positive_and_below_leading_term() {
        for q in [2usize, 3, 5, 7] {
            let p = spherical_procs(q);
            let n = (q * q + 1) * q * (q + 1) * 4;
            let lb = lower_bound_words(n, p);
            assert!(lb > 0.0);
            assert!(lb <= lower_bound_leading(n, p));
        }
    }

    #[test]
    fn scheduled_cost_approaches_lower_bound() {
        // The ratio (algorithm cost)/(lower bound) is ≥ 1 and converges to 1
        // like 1 + O(1/q): the leading coefficient (the constant 2 in
        // 2n/P^{1/3}) matches exactly, which is the paper's tightness claim.
        let mut prev_ratio = f64::INFINITY;
        for q in [2usize, 3, 4, 5, 7, 9, 11, 13] {
            let p = spherical_procs(q);
            let n = (q * q + 1) * q * (q + 1) * 8;
            let algo = scheduled_words_total(n, q) as f64;
            let lb = lower_bound_words(n, p);
            let ratio = algo / lb;
            assert!(ratio >= 0.99, "algorithm can't beat the bound: q={q} ratio={ratio}");
            assert!(ratio <= 1.0 + 2.0 / q as f64, "q={q}: ratio {ratio} too far from 1");
            assert!(ratio < prev_ratio + 0.02, "ratio should shrink with q: q={q}");
            prev_ratio = ratio;
        }
        assert!(prev_ratio < 1.09, "at q=13 the ratio must be within 9% of 1, got {prev_ratio}");
    }

    #[test]
    fn alltoall_vs_scheduled_ratio_approaches_two() {
        // §7.2.2: the collective variant costs 2(q²+1)/(q+1)² × the
        // scheduled one, which rises toward 2 as q grows.
        let mut prev = 0.0;
        for q in [3usize, 5, 7, 9, 13] {
            let n = (q * q + 1) * q * (q + 1) * 4;
            let ratio = alltoall_words_total(n, q) as f64 / scheduled_words_total(n, q) as f64;
            assert!(ratio > 1.2 && ratio < 2.0, "q={q}: ratio {ratio}");
            assert!(ratio > prev, "ratio should grow with q");
            prev = ratio;
        }
        assert!(prev > 1.7, "at q=13 the ratio must be close to 2, got {prev}");
    }

    #[test]
    fn comp_cost_upper_close_to_leading() {
        for q in [3usize, 5, 7] {
            let b = q * (q + 1) * 4;
            let n = (q * q + 1) * b;
            let p = spherical_procs(q);
            let upper = comp_cost_upper(q, b) as f64;
            let leading = comp_cost_leading(n, p);
            assert!(upper >= leading * 0.95);
            assert!(upper <= leading * 1.5, "q={q}: {upper} vs {leading}");
        }
    }

    #[test]
    fn tensor_storage_close_to_ideal() {
        for q in [3usize, 5] {
            let b = q * (q + 1);
            let n = (q * q + 1) * b;
            let p = spherical_procs(q);
            let upper = tensor_words_upper(q, b) as f64;
            let ideal = (n as f64).powi(3) / (6.0 * p as f64);
            assert!(upper >= ideal * 0.9);
            assert!(upper <= ideal * 1.6, "q={q}: {upper} vs {ideal}");
        }
    }

    #[test]
    fn strict_tetra_small_cases() {
        assert_eq!(strict_tetra(0), 0);
        assert_eq!(strict_tetra(2), 0);
        assert_eq!(strict_tetra(3), 1);
        assert_eq!(strict_tetra(4), 4);
        assert_eq!(strict_tetra(10), 120);
    }

    #[test]
    fn lower_bound_clamps_at_zero_for_degenerate_dimensions() {
        // n < 3: the strict tetrahedron is empty, the raw formula is
        // negative, and the bound must clamp to 0 (a word count).
        for n in 0usize..3 {
            for p in [1usize, 2, 30, 350] {
                assert_eq!(lower_bound_words(n, p), 0.0, "n={n} P={p}");
            }
        }
        // And it stays non-negative everywhere.
        for n in 3usize..50 {
            for p in [1usize, 6, 30, 350] {
                assert!(lower_bound_words(n, p) >= 0.0, "n={n} P={p}");
            }
        }
    }

    #[test]
    fn f64_twins_agree_with_integer_versions_when_divisible() {
        for q in [2usize, 3, 5, 7] {
            for mult in [1usize, 2, 8] {
                let n = (q * q + 1) * q * (q + 1) * mult;
                assert_eq!(
                    scheduled_words_per_vector(n, q) as f64,
                    scheduled_words_per_vector_f64(n, q),
                    "scheduled n={n} q={q}"
                );
                assert_eq!(
                    scheduled_words_total(n, q) as f64,
                    scheduled_words_total_f64(n, q),
                    "scheduled total n={n} q={q}"
                );
                assert_eq!(
                    alltoall_words_total(n, q) as f64,
                    alltoall_words_total_f64(n, q),
                    "alltoall n={n} q={q}"
                );
            }
        }
    }

    #[test]
    fn f64_twins_are_finite_and_positive_for_arbitrary_n() {
        // The integer versions would truncate (alltoall even returns 0 for
        // small non-divisible n, which is why the guards exist); the f64
        // twins must stay exact models for any n.
        for q in [2usize, 3, 5] {
            for n in [1usize, 17, 100, 513, 1000] {
                let s = scheduled_words_per_vector_f64(n, q);
                let a = alltoall_words_total_f64(n, q);
                assert!(s.is_finite() && s >= 0.0, "scheduled n={n} q={q}: {s}");
                assert!(a.is_finite() && a > 0.0, "alltoall n={n} q={q}: {a}");
                // §7.2.2 relation: collective ≤ 2× scheduled-per-vector×2.
                assert!(a <= 2.0 * 2.0 * s + 4.0 * n as f64 / spherical_procs(q) as f64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "scheduled_words_per_vector")]
    #[cfg(debug_assertions)]
    fn scheduled_guard_fires_on_non_divisible_n() {
        // n = 17 violates (q²+1) | n for q = 2.
        let _ = scheduled_words_per_vector(17, 2);
    }

    #[test]
    #[should_panic(expected = "alltoall_words_total")]
    #[cfg(debug_assertions)]
    fn alltoall_guard_fires_on_non_divisible_n() {
        // n = 15 = 3·(q²+1) for q = 2 but 2b = 6 is precisely divisible...
        // pick n = 10: b = 2, 2b = 4, q(q+1) = 6 ∤ 4.
        let _ = alltoall_words_total(10, 2);
    }

    #[test]
    fn comp_cost_upper_is_attained_by_central_block_owners() {
        // The §7.1 bound is exactly the work of a rank owning a central
        // diagonal block: (q+1)q(q−1)/6 off-diagonal + q non-central +
        // 1 central block. Check it is the maximum over ranks and attained.
        use crate::partition::TetraPartition;
        use symtensor_steiner::spherical;
        for q in [2usize, 3] {
            let b = q * (q + 1);
            let n = (q * q + 1) * b;
            let part = TetraPartition::new(spherical(q as u64), n).unwrap();
            let max_work = (0..part.num_procs()).map(|p| part.ternary_mults(p)).max().unwrap();
            assert_eq!(max_work, comp_cost_upper(q, b), "q={q}");
        }
    }
}
