//! Tetrahedral blocks and block classification (Section 6 of the paper).
//!
//! The tensor index range `{0..n}` is split into `m` contiguous *row blocks*
//! of size `b = n/m`. A block of the tensor is addressed by a sorted triple
//! of row-block indices `(i, j, k)` with `i ≥ j ≥ k`; the paper classifies
//! the blocks of the lower tetrahedron as
//!
//! * **off-diagonal** — `i > j > k` (all entries strictly lower-tetrahedral),
//! * **non-central diagonal** — exactly two indices equal
//!   (`(i,i,k)` or `(i,k,k)` with `i > k`),
//! * **central diagonal** — `i = j = k`.
//!
//! Given a subset `R` of row-block indices, the tetrahedral block `TB₃(R)`
//! is the set of off-diagonal block triples drawn from `R` (Definition in
//! Section 6): `TB₃(R) = {(i,j,k) : i,j,k ∈ R, i > j > k}`.

/// A sorted block triple `i ≥ j ≥ k` addressing one `b×b×b` block of the
/// lower tetrahedron.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockIdx {
    /// Largest row-block index.
    pub i: usize,
    /// Middle row-block index.
    pub j: usize,
    /// Smallest row-block index.
    pub k: usize,
}

impl BlockIdx {
    /// Creates a block index, sorting the coordinates descending.
    pub fn new(i: usize, j: usize, k: usize) -> Self {
        let mut v = [i, j, k];
        v.sort_unstable_by(|a, b| b.cmp(a));
        BlockIdx { i: v[0], j: v[1], k: v[2] }
    }

    /// The block's class.
    pub fn kind(&self) -> BlockKind {
        if self.i == self.j && self.j == self.k {
            BlockKind::CentralDiagonal
        } else if self.i == self.j {
            BlockKind::NonCentralIIK
        } else if self.j == self.k {
            BlockKind::NonCentralIKK
        } else {
            BlockKind::OffDiagonal
        }
    }
}

/// Classification of lower-tetrahedron blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// `i > j > k`.
    OffDiagonal,
    /// `(i, i, k)` with `i > k` — the two *larger* indices coincide.
    NonCentralIIK,
    /// `(i, k, k)` with `i > k` — the two *smaller* indices coincide.
    NonCentralIKK,
    /// `(i, i, i)`.
    CentralDiagonal,
}

/// `TB₃(R)`: all off-diagonal block triples over an index set `R` (sorted
/// ascending on input; output triples are `i > j > k`).
pub fn tb3(r: &[usize]) -> Vec<BlockIdx> {
    let mut sorted = r.to_vec();
    sorted.sort_unstable();
    let len = sorted.len();
    let mut out = Vec::with_capacity(len * (len.saturating_sub(1)) * (len.saturating_sub(2)) / 6);
    for a in 0..len {
        for b in 0..a {
            for c in 0..b {
                out.push(BlockIdx { i: sorted[a], j: sorted[b], k: sorted[c] });
            }
        }
    }
    out
}

/// Number of lower-tetrahedron **entries** in a block of size `b`, by kind
/// (Section 6.1.3): `b³` off-diagonal, `b²(b+1)/2` non-central diagonal,
/// `b(b+1)(b+2)/6` central diagonal.
pub fn entries_in_block(kind: BlockKind, b: usize) -> usize {
    match kind {
        BlockKind::OffDiagonal => b * b * b,
        BlockKind::NonCentralIIK | BlockKind::NonCentralIKK => b * b * (b + 1) / 2,
        BlockKind::CentralDiagonal => b * (b + 1) * (b + 2) / 6,
    }
}

/// Number of **ternary multiplications** the symmetric kernel performs for a
/// block of size `b`, by kind (Section 7.1): `3b³` off-diagonal,
/// `3b²(b−1)/2 + 2b²` non-central, `3·b(b−1)(b−2)/6 + 2b(b−1) + b` central.
pub fn ternary_mults_in_block(kind: BlockKind, b: usize) -> u64 {
    let b = b as u64;
    match kind {
        BlockKind::OffDiagonal => 3 * b * b * b,
        BlockKind::NonCentralIIK | BlockKind::NonCentralIKK => 3 * b * b * (b - 1) / 2 + 2 * b * b,
        BlockKind::CentralDiagonal => {
            3 * b * (b.saturating_sub(1)) * (b.saturating_sub(2)) / 6 + 2 * b * (b - 1) + b
        }
    }
}

/// Enumerates every block triple of the lower tetrahedron over `m` row
/// blocks (all `(i,j,k)` with `m > i ≥ j ≥ k`).
pub fn all_lower_blocks(m: usize) -> Vec<BlockIdx> {
    let mut out = Vec::with_capacity(m * (m + 1) * (m + 2) / 6);
    for i in 0..m {
        for j in 0..=i {
            for k in 0..=j {
                out.push(BlockIdx { i, j, k });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tb3_of_the_paper_example() {
        // TB3({1,4,6,8}) = {(6,4,1),(8,4,1),(8,6,1),(8,6,4)} (Section 6).
        let blocks = tb3(&[1, 4, 6, 8]);
        let expect: Vec<BlockIdx> = vec![
            BlockIdx { i: 6, j: 4, k: 1 },
            BlockIdx { i: 8, j: 4, k: 1 },
            BlockIdx { i: 8, j: 6, k: 1 },
            BlockIdx { i: 8, j: 6, k: 4 },
        ];
        let mut got = blocks.clone();
        got.sort();
        let mut want = expect.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn tb3_size_is_r_choose_3() {
        for r in 0..8usize {
            let set: Vec<usize> = (0..r).map(|x| x * 3 + 1).collect();
            let expected = if r >= 3 { r * (r - 1) * (r - 2) / 6 } else { 0 };
            assert_eq!(tb3(&set).len(), expected);
        }
    }

    #[test]
    fn block_kind_classification() {
        assert_eq!(BlockIdx::new(3, 2, 1).kind(), BlockKind::OffDiagonal);
        assert_eq!(BlockIdx::new(3, 3, 1).kind(), BlockKind::NonCentralIIK);
        assert_eq!(BlockIdx::new(3, 1, 1).kind(), BlockKind::NonCentralIKK);
        assert_eq!(BlockIdx::new(2, 2, 2).kind(), BlockKind::CentralDiagonal);
        // Construction sorts.
        assert_eq!(BlockIdx::new(1, 3, 2), BlockIdx { i: 3, j: 2, k: 1 });
    }

    #[test]
    fn block_census_matches_section_6() {
        // m = q²+1 blocks in the lower tetrahedron: (m)(m+1)(m+2)/6 total,
        // m·q²... in paper terms: off = (q²+1)q²(q²−1)/6, non-central =
        // q²(q²+1), central = q²+1.
        for q in [2usize, 3, 4, 5] {
            let m = q * q + 1;
            let all = all_lower_blocks(m);
            assert_eq!(all.len(), m * (m + 1) * (m + 2) / 6);
            let off = all.iter().filter(|b| b.kind() == BlockKind::OffDiagonal).count();
            let noncentral = all
                .iter()
                .filter(|b| matches!(b.kind(), BlockKind::NonCentralIIK | BlockKind::NonCentralIKK))
                .count();
            let central = all.iter().filter(|b| b.kind() == BlockKind::CentralDiagonal).count();
            assert_eq!(off, (q * q + 1) * q * q * (q * q - 1) / 6);
            assert_eq!(noncentral, q * q * (q * q + 1));
            assert_eq!(central, q * q + 1);
        }
    }

    #[test]
    fn entry_counts_partition_the_tetrahedron() {
        // Summing entries over all blocks must give the packed length of
        // the n-dimensional tensor, n = m·b.
        for (m, b) in [(4usize, 3usize), (5, 2), (10, 4)] {
            let n = m * b;
            let total: usize =
                all_lower_blocks(m).iter().map(|blk| entries_in_block(blk.kind(), b)).sum();
            assert_eq!(total, n * (n + 1) * (n + 2) / 6);
        }
    }

    /// Brute force: enumerate the lower-tetrahedron points of one block of
    /// each kind (with representative global row-block indices) and count
    /// the Algorithm 4 case analysis — 3 multiplications for strictly
    /// distinct global indices, 2 for exactly two equal, 1 for all equal.
    fn brute_force_ternary(kind: BlockKind, b: usize) -> u64 {
        // Representative sorted row-block triples per kind.
        let (bi, bj, bk) = match kind {
            BlockKind::OffDiagonal => (2, 1, 0),
            BlockKind::NonCentralIIK => (1, 1, 0),
            BlockKind::NonCentralIKK => (1, 0, 0),
            BlockKind::CentralDiagonal => (0, 0, 0),
        };
        let (range_i, range_j, range_k) =
            (bi * b..(bi + 1) * b, bj * b..(bj + 1) * b, bk * b..(bk + 1) * b);
        let mut count = 0u64;
        for gi in range_i {
            for gj in range_j.clone() {
                for gk in range_k.clone() {
                    if !(gi >= gj && gj >= gk) {
                        continue; // outside the block's lower-tetra portion
                    }
                    count += if gi > gj && gj > gk {
                        3
                    } else if gi == gj && gj == gk {
                        1
                    } else {
                        2
                    };
                }
            }
        }
        count
    }

    #[test]
    fn ternary_formulas_match_brute_force_enumeration() {
        // Pins the closed forms of `ternary_mults_in_block` — in particular
        // the non-central `3b²(b−1)/2 + 2b²` term that the
        // `bounds::comp_cost_upper` doc-comment quotes — against a direct
        // enumeration of every point in a block.
        for kind in [
            BlockKind::OffDiagonal,
            BlockKind::NonCentralIIK,
            BlockKind::NonCentralIKK,
            BlockKind::CentralDiagonal,
        ] {
            for b in 1usize..=7 {
                assert_eq!(
                    ternary_mults_in_block(kind, b),
                    brute_force_ternary(kind, b),
                    "{kind:?} b={b}"
                );
            }
        }
    }

    #[test]
    fn ternary_counts_sum_to_paper_total() {
        // Summing kernel work over all blocks must give n²(n+1)/2.
        for (m, b) in [(4usize, 3usize), (5, 2), (10, 4)] {
            let n = (m * b) as u64;
            let total: u64 =
                all_lower_blocks(m).iter().map(|blk| ternary_mults_in_block(blk.kind(), b)).sum();
            assert_eq!(total, n * n * (n + 1) / 2);
        }
    }
}
