//! The full tetrahedral data distribution of Section 6.1.
//!
//! Given a Steiner `(m, r, 3)` system with `P` blocks and a tensor dimension
//! `n = m·b`, processor `p` owns
//!
//! * the off-diagonal tensor blocks `TB₃(R_p)` (its Steiner block `R_p`),
//! * `d = r(r−1)/λ₂` non-central diagonal blocks `N_p` assigned via `d`
//!   disjoint matchings (Corollary 6.7) so that every `N_p` block's row
//!   indices lie inside `R_p`,
//! * at most one central diagonal block `D_p` assigned via a Hall matching,
//!   again with its index inside `R_p`,
//!
//! and, for each row block `i ∈ R_p`, an equal shard of the input and
//! output vectors, shared with the other processors of
//! `Q_i = {p : i ∈ R_p}` (|Q_i| = λ₁).
//!
//! Because every block a processor owns draws its indices from `R_p`, the
//! owner-compute rule needs **only** the vector row blocks `R_p` — no tensor
//! entry ever moves, which is what makes the lower bound attainable.

use crate::tetra::{entries_in_block, tb3, ternary_mults_in_block, BlockIdx, BlockKind};
use symtensor_matching::{disjoint_left_saturating_matchings, hopcroft_karp, BipartiteGraph};
use symtensor_steiner::{blocks_through_element, blocks_through_pair, SteinerSystem};

/// Errors from partition construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// `n` is not a multiple of the number of row blocks `m`.
    DimensionNotDivisible {
        /// The rejected tensor dimension.
        n: usize,
        /// The system's point count.
        m: usize,
    },
    /// The per-processor non-central block count `r(r−1)/λ₂` is fractional.
    NonCentralCountFractional {
        /// The system's block size.
        r: usize,
        /// Blocks through a pair of points.
        lambda2: usize,
    },
    /// The matching for non-central diagonal blocks does not exist (never
    /// happens for valid Steiner systems; guards corrupted input).
    NonCentralMatchingFailed,
    /// The matching for central diagonal blocks does not exist.
    CentralMatchingFailed,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::DimensionNotDivisible { n, m } => {
                write!(f, "tensor dimension {n} is not a multiple of {m} row blocks (pad first)")
            }
            PartitionError::NonCentralCountFractional { r, lambda2 } => {
                write!(f, "r(r-1)/λ₂ = {}·{}/{lambda2} is not an integer", r, r - 1)
            }
            PartitionError::NonCentralMatchingFailed => {
                write!(f, "no valid assignment of non-central diagonal blocks")
            }
            PartitionError::CentralMatchingFailed => {
                write!(f, "no valid assignment of central diagonal blocks")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// The complete data distribution for one Steiner system and one tensor
/// dimension.
#[derive(Clone, Debug)]
pub struct TetraPartition {
    system: SteinerSystem,
    n: usize,
    b: usize,
    lambda1: usize,
    lambda2: usize,
    /// `Q_i`: processors requiring row block `i` (sorted).
    q_sets: Vec<Vec<usize>>,
    /// `N_p`: non-central diagonal blocks per processor.
    n_sets: Vec<Vec<BlockIdx>>,
    /// `D_p`: the central diagonal block owned by processor `p`, if any.
    d_sets: Vec<Option<usize>>,
}

impl TetraPartition {
    /// Builds the distribution. `n` must be a multiple of the system's point
    /// count `m` (use [`TetraPartition::padded_dim`] + zero-padding
    /// otherwise).
    pub fn new(system: SteinerSystem, n: usize) -> Result<Self, PartitionError> {
        let m = system.num_points();
        let r = system.block_size();
        let p_count = system.num_blocks();
        if n % m != 0 {
            return Err(PartitionError::DimensionNotDivisible { n, m });
        }
        let b = n / m;
        let lambda1 = blocks_through_element(m, r);
        let lambda2 = blocks_through_pair(m, r);
        let q_sets = system.point_to_blocks();

        // --- Non-central diagonal blocks via d disjoint matchings. ---
        if (r * (r - 1)) % lambda2 != 0 {
            return Err(PartitionError::NonCentralCountFractional { r, lambda2 });
        }
        let d = r * (r - 1) / lambda2;
        // Right vertices: for each ordered pair a > b, the blocks (a,a,b)
        // and (a,b,b).
        let mut y_blocks: Vec<BlockIdx> = Vec::with_capacity(m * (m - 1));
        for a in 1..m {
            for bb in 0..a {
                y_blocks.push(BlockIdx { i: a, j: a, k: bb });
                y_blocks.push(BlockIdx { i: a, j: bb, k: bb });
            }
        }
        debug_assert_eq!(y_blocks.len(), m * (m - 1));
        debug_assert_eq!(d * p_count, y_blocks.len());
        let mut graph = BipartiteGraph::new(p_count, y_blocks.len());
        for (p, rp) in system.blocks().iter().enumerate() {
            for (yi, blk) in y_blocks.iter().enumerate() {
                let (a, bb) = (blk.i, blk.k.min(blk.j));
                let hi = a;
                let lo = if blk.kind() == BlockKind::NonCentralIIK { blk.k } else { bb };
                if rp.binary_search(&hi).is_ok() && rp.binary_search(&lo).is_ok() {
                    graph.add_edge(p, yi);
                }
            }
        }
        let matchings = disjoint_left_saturating_matchings(&graph, d)
            .ok_or(PartitionError::NonCentralMatchingFailed)?;
        let mut n_sets: Vec<Vec<BlockIdx>> = vec![Vec::with_capacity(d); p_count];
        for matching in &matchings {
            for (p, y) in matching.iter().enumerate() {
                n_sets[p].push(y_blocks[y.expect("saturating matching")]);
            }
        }
        for set in &mut n_sets {
            set.sort_unstable();
        }

        // --- Central diagonal blocks via a Hall matching. ---
        let mut central_graph = BipartiteGraph::new(m, p_count);
        for (p, rp) in system.blocks().iter().enumerate() {
            for &i in rp {
                central_graph.add_edge(i, p);
            }
        }
        let central = hopcroft_karp(&central_graph);
        let mut d_sets: Vec<Option<usize>> = vec![None; p_count];
        for (i, proc) in central.iter().enumerate() {
            let p = proc.ok_or(PartitionError::CentralMatchingFailed)?;
            debug_assert!(d_sets[p].is_none());
            d_sets[p] = Some(i);
        }

        Ok(TetraPartition { system, n, b, lambda1, lambda2, q_sets, n_sets, d_sets })
    }

    /// The smallest `n' ≥ n` usable with an `m`-point system such that the
    /// vector shards divide evenly: `m·λ₁ | n'`.
    pub fn padded_dim(system: &SteinerSystem, n: usize) -> usize {
        let m = system.num_points();
        let lambda1 = blocks_through_element(m, system.block_size());
        let unit = m * lambda1;
        n.div_ceil(unit) * unit
    }

    /// The underlying Steiner system.
    pub fn system(&self) -> &SteinerSystem {
        &self.system
    }

    /// Tensor dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Row-block size `b = n/m`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Number of row blocks `m`.
    pub fn num_row_blocks(&self) -> usize {
        self.system.num_points()
    }

    /// Number of processors `P`.
    pub fn num_procs(&self) -> usize {
        self.system.num_blocks()
    }

    /// `λ₁`: processors sharing each row block.
    pub fn lambda1(&self) -> usize {
        self.lambda1
    }

    /// `λ₂`: processors sharing each **pair** of row blocks.
    pub fn lambda2(&self) -> usize {
        self.lambda2
    }

    /// `R_p`: the row-block indices owned by processor `p` (sorted).
    pub fn r_set(&self, p: usize) -> &[usize] {
        &self.system.blocks()[p]
    }

    /// `Q_i`: the processors requiring row block `i` (sorted).
    pub fn q_set(&self, i: usize) -> &[usize] {
        &self.q_sets[i]
    }

    /// `N_p`: the non-central diagonal blocks owned by `p`.
    pub fn n_set(&self, p: usize) -> &[BlockIdx] {
        &self.n_sets[p]
    }

    /// `D_p`: the central diagonal block owned by `p`, if any.
    pub fn d_set(&self, p: usize) -> Option<usize> {
        self.d_sets[p]
    }

    /// All tensor blocks owned by `p`: `TB₃(R_p) ∪ N_p ∪ D_p`.
    pub fn owned_blocks(&self, p: usize) -> Vec<BlockIdx> {
        let mut blocks = tb3(self.r_set(p));
        blocks.extend_from_slice(&self.n_sets[p]);
        if let Some(i) = self.d_sets[p] {
            blocks.push(BlockIdx { i, j: i, k: i });
        }
        blocks.sort_unstable();
        blocks
    }

    /// Global index range of row block `i`.
    pub fn block_range(&self, i: usize) -> std::ops::Range<usize> {
        i * self.b..(i + 1) * self.b
    }

    /// Local (within-row-block) index range of the shard of row block `i`
    /// owned by the processor at position `t` in `Q_i`. Shards are
    /// contiguous, ordered by `Q_i` position, with sizes differing by at
    /// most one when `λ₁ ∤ b`.
    pub fn shard_bounds(&self, t: usize) -> std::ops::Range<usize> {
        let l = self.lambda1;
        debug_assert!(t < l);
        (t * self.b) / l..((t + 1) * self.b) / l
    }

    /// Local shard range of row block `i` owned by processor `p`
    /// (`p ∈ Q_i`).
    pub fn shard_range(&self, i: usize, p: usize) -> std::ops::Range<usize> {
        let t = self.q_sets[i].binary_search(&p).expect("p must be in Q_i");
        self.shard_bounds(t)
    }

    /// Tensor words stored by processor `p` (Section 6.1.3 counts).
    pub fn tensor_words(&self, p: usize) -> usize {
        self.owned_blocks(p).iter().map(|blk| entries_in_block(blk.kind(), self.b)).sum()
    }

    /// Vector words owned by processor `p` per vector (x or y).
    pub fn vector_words(&self, p: usize) -> usize {
        self.r_set(p).iter().map(|&i| self.shard_range(i, p).len()).sum()
    }

    /// Model ternary multiplications processor `p` performs (Section 7.1).
    pub fn ternary_mults(&self, p: usize) -> u64 {
        self.owned_blocks(p).iter().map(|blk| ternary_mults_in_block(blk.kind(), self.b)).sum()
    }

    /// Verifies the distribution invariants: each lower-tetrahedron block
    /// owned exactly once, diagonal assignments compatible with `R_p`, and
    /// `Q_i` consistent with the `R_p` sets. Used in tests and by callers
    /// that construct systems from untrusted input.
    pub fn verify(&self) -> Result<(), String> {
        let m = self.num_row_blocks();
        let mut owner: std::collections::HashMap<BlockIdx, usize> =
            std::collections::HashMap::new();
        for p in 0..self.num_procs() {
            for blk in self.owned_blocks(p) {
                if let Some(prev) = owner.insert(blk, p) {
                    return Err(format!("block {blk:?} owned by both {prev} and {p}"));
                }
            }
            // Compatibility: all indices of owned blocks lie in R_p.
            let rp = self.r_set(p);
            for blk in self.owned_blocks(p) {
                for idx in [blk.i, blk.j, blk.k] {
                    if rp.binary_search(&idx).is_err() {
                        return Err(format!(
                            "processor {p} owns block {blk:?} with index {idx} ∉ R_p"
                        ));
                    }
                }
            }
        }
        let expected = m * (m + 1) * (m + 2) / 6;
        if owner.len() != expected {
            return Err(format!("{} blocks owned, expected {expected}", owner.len()));
        }
        // Q_i consistency and shard tiling.
        for i in 0..m {
            for &p in self.q_set(i) {
                if self.r_set(p).binary_search(&i).is_err() {
                    return Err(format!("Q_{i} lists {p} but i ∉ R_p"));
                }
            }
            if self.q_set(i).len() != self.lambda1 {
                return Err(format!("|Q_{i}| = {} ≠ λ₁ = {}", self.q_set(i).len(), self.lambda1));
            }
            let mut covered = 0;
            for t in 0..self.lambda1 {
                let range = self.shard_bounds(t);
                if range.start != covered {
                    return Err(format!("shard gap in row block {i}"));
                }
                covered = range.end;
            }
            if covered != self.b {
                return Err(format!("shards of row block {i} do not tile it"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_steiner::{spherical, sqs8};

    #[test]
    fn q3_partition_counts_match_paper() {
        // m = 10, P = 30, |R_p| = 4, |N_p| = q = 3, |D_p| ∈ {0, 1}.
        let part = TetraPartition::new(spherical(3), 120).unwrap();
        assert_eq!(part.num_procs(), 30);
        assert_eq!(part.num_row_blocks(), 10);
        assert_eq!(part.block_size(), 12);
        assert_eq!(part.lambda1(), 12);
        assert_eq!(part.lambda2(), 4);
        for p in 0..30 {
            assert_eq!(part.r_set(p).len(), 4);
            assert_eq!(part.n_set(p).len(), 3);
        }
        // Exactly m = 10 processors get a central block.
        let with_central = (0..30).filter(|&p| part.d_set(p).is_some()).count();
        assert_eq!(with_central, 10);
        part.verify().unwrap();
    }

    #[test]
    fn sqs8_partition_matches_table3_shape() {
        // m = 8, P = 14, |N_p| = 4, 8 central blocks.
        let part = TetraPartition::new(sqs8(), 56).unwrap();
        assert_eq!(part.num_procs(), 14);
        assert_eq!(part.lambda1(), 7);
        assert_eq!(part.lambda2(), 3);
        for p in 0..14 {
            assert_eq!(part.n_set(p).len(), 4);
        }
        let with_central = (0..14).filter(|&p| part.d_set(p).is_some()).count();
        assert_eq!(with_central, 8);
        part.verify().unwrap();
    }

    #[test]
    fn q2_partition() {
        let part = TetraPartition::new(spherical(2), 30).unwrap();
        assert_eq!(part.num_procs(), 10);
        part.verify().unwrap();
    }

    #[test]
    fn q4_partition() {
        let part = TetraPartition::new(spherical(4), 17 * 20).unwrap();
        assert_eq!(part.num_procs(), 68);
        part.verify().unwrap();
    }

    #[test]
    fn tensor_words_near_ideal() {
        // Section 6.1.3: each processor stores ≈ n³/(6P) tensor words.
        let n = 240;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let ideal = (n * n * n) as f64 / (6.0 * 30.0);
        for p in 0..30 {
            let words = part.tensor_words(p) as f64;
            assert!(
                (words - ideal).abs() / ideal < 0.15,
                "processor {p}: {words} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn vector_words_equal_n_over_p() {
        // Section 6.1.2: each processor owns exactly n/P vector words
        // when shards divide evenly.
        let n = 120; // b = 12 = λ₁ exactly.
        let part = TetraPartition::new(spherical(3), n).unwrap();
        for p in 0..30 {
            assert_eq!(part.vector_words(p), n / 30, "processor {p}");
        }
    }

    #[test]
    fn ternary_mults_sum_to_global_total() {
        let n = 60;
        let part = TetraPartition::new(spherical(3), n).unwrap();
        let total: u64 = (0..30).map(|p| part.ternary_mults(p)).sum();
        let n64 = n as u64;
        assert_eq!(total, n64 * n64 * (n64 + 1) / 2);
    }

    #[test]
    fn padded_dim_is_minimal_multiple() {
        let sys = spherical(3);
        // unit = m·λ₁ = 120.
        assert_eq!(TetraPartition::padded_dim(&sys, 1), 120);
        assert_eq!(TetraPartition::padded_dim(&sys, 120), 120);
        assert_eq!(TetraPartition::padded_dim(&sys, 121), 240);
    }

    #[test]
    fn rejects_indivisible_dimension() {
        assert!(matches!(
            TetraPartition::new(spherical(3), 55),
            Err(PartitionError::DimensionNotDivisible { .. })
        ));
    }

    #[test]
    fn shard_ranges_are_disjoint_and_ordered() {
        let part = TetraPartition::new(spherical(2), 60).unwrap();
        for i in 0..part.num_row_blocks() {
            let mut end = 0;
            for &p in part.q_set(i) {
                let range = part.shard_range(i, p);
                assert_eq!(range.start, end);
                end = range.end;
            }
            assert_eq!(end, part.block_size());
        }
    }
}
