//! Property tests pinning the compiled-plan path to the legacy path.
//!
//! The contract of `RankContext::compile` is *bit*-equivalence: for every
//! `(q, n, threads, batch, mode)` the planned STTSV must reproduce the
//! legacy result exactly — same floating-point bits, same ternary counts,
//! same per-rank communication counters — and stay within `1e-12`
//! (relative) of the sequential `sttsv_sym` reference.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symtensor_core::generate::random_symmetric;
use symtensor_core::seq::sttsv_sym;
use symtensor_parallel::blocks::OwnedBlocks;
use symtensor_parallel::{
    parallel_sttsv_mt, parallel_sttsv_multi, parallel_sttsv_multi_planned, parallel_sttsv_planned,
    Mode, RankPlan, TetraPartition,
};
use symtensor_steiner::spherical;

const MODES: [Mode; 3] = [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse];

/// `(q, n)` pairs satisfying the partition's divisibility requirements —
/// the adversarial axis is the seed/threads/batch/mode space around them.
fn geometry(idx: usize) -> (u64, usize) {
    [(2u64, 30usize), (2, 60), (3, 60)][idx % 3]
}

fn random_vectors(n: usize, batch: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..batch).map(|_| (0..n).map(|_| rng.gen::<f64>() - 0.5).collect()).collect()
}

proptest! {
    // Full-universe runs spawn P threads per case; keep the case count low.
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Planned single-vector STTSV is bit-identical to the legacy driver
    /// (same values, ternary counts and communication report) and within
    /// 1e-12 of the sequential kernel.
    #[test]
    fn planned_sttsv_is_bit_identical_to_legacy(
        geom in 0usize..3,
        seed in 0u64..10_000,
        mode_idx in 0usize..3,
        threads in 1usize..4,
    ) {
        let (q, n) = geometry(geom);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mode = MODES[mode_idx];

        let legacy = parallel_sttsv_mt(&tensor, &part, &x, mode, threads);
        let planned = parallel_sttsv_planned(&tensor, &part, &x, mode, threads);
        prop_assert_eq!(&planned.y, &legacy.y, "plan must be bit-identical to legacy");
        prop_assert_eq!(&planned.ternary_per_rank, &legacy.ternary_per_rank);
        prop_assert_eq!(&planned.report, &legacy.report);

        let (y_ref, ops) = sttsv_sym(&tensor, &x);
        prop_assert_eq!(
            planned.ternary_per_rank.iter().sum::<u64>(),
            ops.ternary_mults,
            "exact machine-wide ternary count"
        );
        for (i, (yp, yr)) in planned.y.iter().zip(&y_ref).enumerate() {
            prop_assert!(
                (yp - yr).abs() < 1e-12 * (1.0 + yr.abs()),
                "y[{}]: {} vs {}", i, yp, yr
            );
        }
    }

    /// Planned batched STTSV is bit-identical to the legacy batched driver
    /// for every batch size, and deterministic in the thread count.
    #[test]
    fn planned_multi_is_bit_identical_and_thread_deterministic(
        geom in 0usize..3,
        seed in 0u64..10_000,
        mode_idx in 0usize..3,
        threads in 1usize..4,
        batch in 1usize..5,
    ) {
        let (q, n) = geometry(geom);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = random_symmetric(n, &mut rng);
        let xs = random_vectors(n, batch, &mut rng);
        let mode = MODES[mode_idx];

        let legacy = parallel_sttsv_multi(&tensor, &part, &xs, mode, threads);
        let planned = parallel_sttsv_multi_planned(&tensor, &part, &xs, mode, threads);
        prop_assert_eq!(&planned.ys, &legacy.ys, "batched plan must be bit-identical");
        prop_assert_eq!(&planned.ternary_per_rank, &legacy.ternary_per_rank);
        prop_assert_eq!(&planned.report, &legacy.report);

        // Pooled plans are deterministic in the pool size: the chunk tree
        // is fixed by the block count, not the worker count.
        if threads > 1 {
            let other = parallel_sttsv_multi_planned(&tensor, &part, &xs, mode, threads + 1);
            prop_assert_eq!(&other.ys, &planned.ys, "thread count must not change bits");
        }

        for (x, y) in xs.iter().zip(&planned.ys) {
            let (y_ref, _) = sttsv_sym(&tensor, x);
            for (i, (yp, yr)) in y.iter().zip(&y_ref).enumerate() {
                prop_assert!(
                    (yp - yr).abs() < 1e-12 * (1.0 + yr.abs()),
                    "y[{}]: {} vs {}", i, yp, yr
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The plan's packed-arena compute is bit-identical to
    /// `OwnedBlocks::compute` on every rank, for arbitrary tensors and
    /// gathered inputs — the per-rank pin that makes the full-run
    /// equivalence above hold mode-by-mode.
    #[test]
    fn plan_compute_matches_owned_blocks_bitwise(
        geom in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let (q, n) = geometry(geom);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = random_symmetric(n, &mut rng);
        let b = part.block_size();
        for rank in 0..part.num_procs() {
            let rp = part.r_set(rank);
            let owned = OwnedBlocks::extract(&tensor, &part, rank);
            let plan = RankPlan::build(&part, &owned, rank);

            // A full gathered input: one dense row block per owned slot.
            let x_full: Vec<Vec<f64>> =
                (0..rp.len()).map(|_| (0..b).map(|_| rng.gen::<f64>() - 0.5).collect()).collect();

            let mut y_legacy = vec![vec![0.0; b]; rp.len()];
            let row_pos = |i: usize| rp.binary_search(&i).unwrap();
            let t_legacy = owned.compute(&x_full, &mut y_legacy, row_pos);

            // Feed the same gathered state through the flat slabs (the
            // post-gather picture, bypassing the exchange).
            let mut ws = symtensor_parallel::PlanWorkspace::new();
            plan.ensure_capacity(&mut ws, 1);
            plan.load_full(&mut ws, 0, &x_full);
            let t_plan = plan.compute(&mut ws, 1, None);
            prop_assert_eq!(t_plan, t_legacy, "rank {}: ternary counts", rank);
            let y_plan = plan.output_slab(&ws, 0);
            for (t, row) in y_legacy.iter().enumerate() {
                prop_assert_eq!(
                    &y_plan[t * b..(t + 1) * b], row.as_slice(),
                    "rank {} row slot {}: bitwise equal", rank, t
                );
            }
        }
    }
}
