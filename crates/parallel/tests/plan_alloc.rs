//! The acceptance witness for the compiled-plan steady state: after
//! `compile()` and one warm-up iteration, every comm-free plan step
//! (`load_shards` → pack → unpack → `compute` → `extract_into`) performs
//! **zero heap allocations**, measured by a counting global allocator.
//!
//! The simulated transport's channel nodes are excluded by construction —
//! this test drives the plan's own state machine directly, standing in for
//! both exchange phases with length-matched pack/unpack pairs (a
//! `Gather`-pack produces exactly the words a `Reduce`-unpack consumes and
//! vice versa), so the measured region contains only algorithm work.
//!
//! This file intentionally holds a single `#[test]`: the counting
//! allocator is process-global, and a lone test per binary keeps the
//! measured window free of concurrent test-harness allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symtensor_core::generate::random_symmetric;
use symtensor_mpsim::{FlightKind, FlightRecorder};
use symtensor_parallel::blocks::OwnedBlocks;
use symtensor_parallel::plan::ExchangeKind;
use symtensor_parallel::{PlanWorkspace, RankPlan, TetraPartition};
use symtensor_steiner::spherical;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// One full iteration's worth of comm-free plan steps on `plan`/`ws`.
fn iteration(
    plan: &RankPlan,
    ws: &mut PlanWorkspace,
    batch: usize,
    shards: &[Vec<Vec<f64>>],
    out: &mut [Vec<Vec<f64>>],
) -> u64 {
    for (v, sh) in shards.iter().enumerate() {
        plan.load_shards(ws, v, sh);
    }
    // Gather phase stand-in: what I pack for a peer in `Reduce` layout has
    // exactly the piece lengths their gather message to me carries.
    for pidx in 0..plan.peers().len() {
        let buf = plan.pack(ws, ExchangeKind::Gather, pidx, batch);
        ws.give_back(buf);
        let incoming = plan.pack(ws, ExchangeKind::Reduce, pidx, batch);
        plan.unpack(ws, ExchangeKind::Gather, pidx, batch, incoming);
    }
    let ternary = plan.compute(ws, batch, None);
    // Reduce phase stand-in, mirrored.
    for pidx in 0..plan.peers().len() {
        let buf = plan.pack(ws, ExchangeKind::Reduce, pidx, batch);
        ws.give_back(buf);
        let incoming = plan.pack(ws, ExchangeKind::Gather, pidx, batch);
        plan.unpack(ws, ExchangeKind::Reduce, pidx, batch, incoming);
    }
    for (v, slot) in out.iter_mut().enumerate() {
        plan.extract_into(ws, v, slot);
    }
    ternary
}

#[test]
fn steady_state_sttsv_performs_zero_heap_allocations() {
    let n = 30;
    let batch = 2;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    let tensor = random_symmetric(n, &mut rng);

    for rank in [0, part.num_procs() / 2, part.num_procs() - 1] {
        let rp = part.r_set(rank);
        let owned = OwnedBlocks::extract(&tensor, &part, rank);
        let plan = RankPlan::build(&part, &owned, rank);
        let mut ws = PlanWorkspace::new();
        plan.ensure_capacity(&mut ws, batch);

        let shards: Vec<Vec<Vec<f64>>> = (0..batch)
            .map(|_| {
                rp.iter()
                    .map(|&i| {
                        (0..part.shard_range(i, rank).len())
                            .map(|_| rng.gen::<f64>() - 0.5)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Output shard vectors are reused across iterations; the warm-up
        // sizes them once.
        let mut out: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); rp.len()]; batch];

        // Warm-up: promotes every message buffer to the global target and
        // sizes the output shards.
        let warm = iteration(&plan, &mut ws, batch, &shards, &mut out);
        let fresh_after_warmup = ws.fresh_allocs();

        // Steady state: zero heap allocations and a flat fresh counter.
        // (The synthetic exchange feeds the evolving `y` slab back in as
        // peer input, so output *values* evolve by design; bit-stability
        // of the real pipeline is pinned by the plan_equivalence and HOPM
        // tests.)
        let before = allocs();
        for _ in 0..3 {
            let ternary = iteration(&plan, &mut ws, batch, &shards, &mut out);
            assert_eq!(ternary, warm, "exact ternary count is iteration-invariant");
        }
        let after = allocs();
        assert_eq!(
            after - before,
            0,
            "rank {rank}: steady-state plan steps must not touch the heap"
        );
        assert_eq!(ws.fresh_allocs(), fresh_after_warmup, "no buffer growth after warm-up");
        assert!(out.iter().flatten().flatten().all(|v| v.is_finite()));
    }

    // The always-on flight recorder shares the steady state's zero-alloc
    // contract: once constructed, recording never touches the heap — not
    // even when the ring wraps and starts evicting. 10 000 records into a
    // 512-slot ring exercise both the fill and the wrap regimes.
    let mut rec = FlightRecorder::new(512);
    let before = allocs();
    for i in 0..10_000u64 {
        rec.record(
            i * 100,
            if i % 2 == 0 { FlightKind::Send } else { FlightKind::Recv },
            Some("gather-x"),
            Some(i % 7),
            Some((i % 5) as usize),
            6,
            (i % 3 == 0).then_some(i),
        );
    }
    let after = allocs();
    assert_eq!(after - before, 0, "flight recording must not touch the heap");
    let snap = rec.snapshot(0);
    assert_eq!(snap.events.len(), 512, "the ring retains exactly its capacity");
    assert_eq!(snap.overhead.recorded, 10_000);
    assert_eq!(snap.overhead.dropped, 9_488);
    assert!(snap.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
}
