//! Property tests pinning the overlapped exchange to the barrier plan path.
//!
//! The contract of `RankContext::sttsv_overlapped` is *bit*-equivalence with
//! the barrier-planned driver: for every adversarial `(q, n, threads, batch,
//! mode)` the overlapped pipeline must reproduce the same y bits, the same
//! ternary counts, the same per-rank [`CostReport`] and the same rank-to-rank
//! communication matrix — only event *timing* may differ. A chaos case pins
//! the failure path: a dropped gather message fails fast with wire-exact
//! accounting instead of hanging out the full timeout.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symtensor_core::generate::random_symmetric;
use symtensor_core::seq::sttsv_sym;
use symtensor_mpsim::{CommEvent, CommEventKind, FaultPlan, InjectedFault, Universe};
use symtensor_parallel::{
    parallel_sttsv_multi_overlapped, parallel_sttsv_multi_planned, parallel_sttsv_overlapped,
    parallel_sttsv_overlapped_traced, parallel_sttsv_planned, parallel_sttsv_planned_traced,
    CommSchedule, Mode, RankContext, TetraPartition,
};
use symtensor_steiner::spherical;

const MODES: [Mode; 3] = [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse];

/// `(q, n)` pairs satisfying the partition's divisibility requirements —
/// the adversarial axis is the seed/threads/batch/mode space around them.
fn geometry(idx: usize) -> (u64, usize) {
    [(2u64, 30usize), (2, 60), (3, 60)][idx % 3]
}

/// Folds per-rank traces into a `(src, dst) -> words` matrix — the same
/// aggregation `symtensor-obs` renders, computed here without the extra
/// dependency edge.
fn comm_matrix(traces: &[Vec<CommEvent>]) -> BTreeMap<(usize, usize), u64> {
    let mut matrix = BTreeMap::new();
    for (src, trace) in traces.iter().enumerate() {
        for ev in trace {
            if let CommEventKind::Send { dst, words, .. } = ev.kind {
                *matrix.entry((src, dst)).or_insert(0) += words;
            }
        }
    }
    matrix
}

proptest! {
    // Full-universe runs spawn P threads per case; keep the case count low.
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Overlapped single-vector STTSV is bit-identical to the barrier
    /// planned driver — y bits, ternary counts, cost report — and within
    /// 1e-12 of the sequential kernel.
    #[test]
    fn overlapped_sttsv_is_bit_identical_to_planned(
        geom in 0usize..3,
        seed in 0u64..10_000,
        mode_idx in 0usize..3,
        threads in 1usize..4,
    ) {
        let (q, n) = geometry(geom);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mode = MODES[mode_idx];

        let barrier = parallel_sttsv_planned(&tensor, &part, &x, mode, threads);
        let overlapped = parallel_sttsv_overlapped(&tensor, &part, &x, mode, threads);
        prop_assert_eq!(&overlapped.y, &barrier.y, "overlap must be bit-identical");
        prop_assert_eq!(&overlapped.ternary_per_rank, &barrier.ternary_per_rank);
        prop_assert_eq!(&overlapped.report, &barrier.report);

        let (y_ref, ops) = sttsv_sym(&tensor, &x);
        prop_assert_eq!(
            overlapped.ternary_per_rank.iter().sum::<u64>(),
            ops.ternary_mults,
            "exact machine-wide ternary count"
        );
        for (i, (yo, yr)) in overlapped.y.iter().zip(&y_ref).enumerate() {
            prop_assert!(
                (yo - yr).abs() < 1e-12 * (1.0 + yr.abs()),
                "y[{}]: {} vs {}", i, yo, yr
            );
        }
    }

    /// The overlapped wire picture matches the barrier path message for
    /// message: identical rank-to-rank word matrices and identical per-rank
    /// multisets of `(peer, tag, words)` in both directions. Only arrival
    /// *order* — the thing the overlap exploits — may differ.
    #[test]
    fn overlapped_comm_matrix_matches_barrier(
        geom in 0usize..3,
        seed in 0u64..10_000,
        mode_idx in 0usize..3,
    ) {
        let (q, n) = geometry(geom);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mode = MODES[mode_idx];

        let (barrier, barrier_traces) =
            parallel_sttsv_planned_traced(&tensor, &part, &x, mode, 1);
        let (overlapped, overlap_traces) =
            parallel_sttsv_overlapped_traced(&tensor, &part, &x, mode, 1);
        prop_assert_eq!(&overlapped.y, &barrier.y);
        prop_assert_eq!(
            comm_matrix(&overlap_traces),
            comm_matrix(&barrier_traces),
            "rank-to-rank word matrix must be unchanged"
        );
        // Stronger than the matrix: per rank, the multiset of messages on
        // the wire (tags included) is identical in both directions.
        for (rank, (ot, bt)) in overlap_traces.iter().zip(&barrier_traces).enumerate() {
            let msgs = |trace: &[CommEvent]| {
                let mut sends = Vec::new();
                let mut recvs = Vec::new();
                for ev in trace {
                    match ev.kind {
                        CommEventKind::Send { dst, tag, words } => sends.push((dst, tag, words)),
                        CommEventKind::Recv { src, tag, words } => recvs.push((src, tag, words)),
                        _ => {}
                    }
                }
                sends.sort_unstable();
                recvs.sort_unstable();
                (sends, recvs)
            };
            prop_assert_eq!(msgs(ot), msgs(bt), "rank {} wire multiset", rank);
        }
    }

    /// Overlapped batched STTSV is bit-identical to the barrier batched
    /// driver for every batch size, and deterministic in the thread count.
    #[test]
    fn overlapped_multi_is_bit_identical_and_thread_deterministic(
        geom in 0usize..3,
        seed in 0u64..10_000,
        mode_idx in 0usize..3,
        threads in 1usize..4,
        batch in 1usize..5,
    ) {
        let (q, n) = geometry(geom);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = random_symmetric(n, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..batch).map(|_| (0..n).map(|_| rng.gen::<f64>() - 0.5).collect()).collect();
        let mode = MODES[mode_idx];

        let barrier = parallel_sttsv_multi_planned(&tensor, &part, &xs, mode, threads);
        let overlapped = parallel_sttsv_multi_overlapped(&tensor, &part, &xs, mode, threads);
        prop_assert_eq!(&overlapped.ys, &barrier.ys, "batched overlap must be bit-identical");
        prop_assert_eq!(&overlapped.ternary_per_rank, &barrier.ternary_per_rank);
        prop_assert_eq!(&overlapped.report, &barrier.report);

        // The chunk tree is fixed by the block count, not the worker count.
        if threads > 1 {
            let other = parallel_sttsv_multi_overlapped(&tensor, &part, &xs, mode, threads + 1);
            prop_assert_eq!(&other.ys, &overlapped.ys, "thread count must not change bits");
        }
    }
}

/// A dropped gather-x message fails the overlapped run fast — attributed to
/// an exchange phase on a starved rank, with every surviving rank released
/// by the abort flag well inside the receive timeout — and the dropped
/// message stays off the cost counters (wire-exact failure accounting).
#[test]
fn overlapped_gather_drop_fails_fast_with_exact_accounting() {
    let q = 2u64;
    let n = 30;
    let part = TetraPartition::new(spherical(q), n).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    let schedule = CommSchedule::build(&part);

    let part_ref = &part;
    let tensor_ref = &tensor;
    let x_ref = &x;
    let schedule_ref = &schedule;
    let rank_main = move |comm: &symtensor_mpsim::Comm| {
        let p = comm.rank();
        let ctx = RankContext::new(tensor_ref, part_ref, p, Mode::Scheduled, Some(schedule_ref))
            .with_plan();
        let my_shards: Vec<Vec<f64>> = part_ref
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x_ref[part_ref.block_range(i)];
                block[part_ref.shard_range(i, p)].to_vec()
            })
            .collect();
        ctx.sttsv_overlapped(comm, &my_shards)
    };

    // Rank 0's first send is a gather-x message; dropping it starves one
    // receiver, whose timeout panic must release everyone else via the
    // abort flag (fail fast), not leave them to block out their own waits.
    let started = std::time::Instant::now();
    let failure = Universe::new(part.num_procs())
        .with_faults(FaultPlan::seeded(7).drop_nth_send(0, 0))
        .with_recv_timeout(Duration::from_millis(200))
        .with_poll_interval(Duration::from_millis(2))
        .try_run_traced(rank_main)
        .expect_err("a dropped gather message must fail the run");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "fail-fast must not serialize per-rank timeouts"
    );
    // The starved gather receiver and the reduce receivers downstream of it
    // all hit their timeouts at ~the same instant; whichever panic trips the
    // abort flag first wins root-cause attribution. Either attribution is a
    // legitimate consequence of the single dropped message — what matters is
    // that it lands on an exchange phase with the overlapped panic text.
    assert!(
        matches!(failure.phase, Some("gather-x") | Some("reduce-y")),
        "failure attributed to an exchange phase, got {:?}",
        failure.phase
    );
    assert!(
        failure.message.contains("overlapped gather failed")
            || failure.message.contains("overlapped reduce failed"),
        "unexpected panic message: {}",
        failure.message
    );

    // The drop is recorded as an injected fault on rank 0 …
    let drops: Vec<_> = failure.traces[0]
        .iter()
        .filter(|e| matches!(e.kind, CommEventKind::Fault { fault: InjectedFault::Drop, .. }))
        .collect();
    assert_eq!(drops.len(), 1, "exactly one injected drop");
    // … and never charged to the counters: sent == received + in-flight at
    // abort, and the dropped words appear in neither.
    let trace_sent: u64 = failure
        .traces
        .iter()
        .flatten()
        .map(|e| match e.kind {
            CommEventKind::Send { words, .. } => words,
            _ => 0,
        })
        .sum();
    assert_eq!(
        failure.report.total_words_sent(),
        trace_sent,
        "counters and trace agree on what entered the network"
    );
    assert!(
        failure.report.total_words_recv() <= failure.report.total_words_sent(),
        "nothing received that was never sent"
    );
}
