//! The projective line `PG(1, q) = F_q ∪ {∞}` and the Möbius (`PGL₂(q)`)
//! action on it.
//!
//! The spherical Steiner systems used by the tetrahedral partitioning scheme
//! are orbits of the subline `F_q ∪ {∞}` under `PGL₂(q²)` acting on
//! `PG(1, q²)` (Colbourn–Dinitz Example 3.23, quoted as Theorem 6.5 in the
//! paper). Because `PGL₂` acts *sharply* 3-transitively, the block through
//! any three distinct points is the image of the base block under the unique
//! Möbius map carrying `(0, 1, ∞)` to that triple — which is how
//! [`crate::projective::Mobius::through_triple`] constructs blocks without
//! enumerating the whole group.

use crate::gf::{FieldElem, Gf};

/// A point of the projective line: a finite field element or ∞.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PPoint {
    /// A finite point `x ∈ F_q`.
    Finite(FieldElem),
    /// The point at infinity.
    Infinity,
}

impl PPoint {
    /// Homogeneous coordinates `(x : y)`, with ∞ = `(1 : 0)` and finite
    /// `a` = `(a : 1)`.
    #[inline]
    pub fn homogeneous(self) -> (FieldElem, FieldElem) {
        match self {
            PPoint::Finite(a) => (a, 1),
            PPoint::Infinity => (1, 0),
        }
    }

    /// Reconstructs a point from homogeneous coordinates (not both zero).
    #[inline]
    pub fn from_homogeneous(field: &Gf, x: FieldElem, y: FieldElem) -> PPoint {
        assert!(x != 0 || y != 0, "(0:0) is not a projective point");
        if y == 0 {
            PPoint::Infinity
        } else {
            PPoint::Finite(field.div(x, y))
        }
    }
}

/// The projective line over a finite field, with a fixed point numbering.
///
/// Points are numbered `0..q` for the finite elements (by element code) and
/// `q` for ∞, giving `q + 1` points total.
#[derive(Clone, Debug)]
pub struct ProjectiveLine {
    field: Gf,
}

impl ProjectiveLine {
    /// Wraps a field as the projective line `PG(1, q)` over it.
    pub fn new(field: Gf) -> Self {
        ProjectiveLine { field }
    }

    /// The underlying field.
    pub fn field(&self) -> &Gf {
        &self.field
    }

    /// Number of points, `q + 1`.
    pub fn num_points(&self) -> usize {
        self.field.order() as usize + 1
    }

    /// All points, finite elements first then ∞.
    pub fn points(&self) -> Vec<PPoint> {
        let mut pts: Vec<PPoint> = self.field.elements().map(PPoint::Finite).collect();
        pts.push(PPoint::Infinity);
        pts
    }

    /// Index of a point in the fixed numbering.
    #[inline]
    pub fn index_of(&self, p: PPoint) -> usize {
        match p {
            PPoint::Finite(a) => a as usize,
            PPoint::Infinity => self.field.order() as usize,
        }
    }

    /// Point with a given index.
    #[inline]
    pub fn point_at(&self, idx: usize) -> PPoint {
        let q = self.field.order() as usize;
        assert!(idx <= q, "point index {idx} out of range for PG(1,{q})");
        if idx == q {
            PPoint::Infinity
        } else {
            PPoint::Finite(idx as FieldElem)
        }
    }
}

/// A Möbius transformation `x ↦ (a·x + b) / (c·x + d)` with `ad − bc ≠ 0`,
/// i.e. an element of `PGL₂(q)` represented by a matrix `[[a, b], [c, d]]`.
#[derive(Clone, Copy, Debug)]
pub struct Mobius {
    /// Matrix entry `a` (top-left).
    pub a: FieldElem,
    /// Matrix entry `b` (top-right).
    pub b: FieldElem,
    /// Matrix entry `c` (bottom-left).
    pub c: FieldElem,
    /// Matrix entry `d` (bottom-right).
    pub d: FieldElem,
}

impl Mobius {
    /// Constructs a Möbius map, checking invertibility.
    pub fn new(field: &Gf, a: FieldElem, b: FieldElem, c: FieldElem, d: FieldElem) -> Self {
        let det = field.sub(field.mul(a, d), field.mul(b, c));
        assert!(det != 0, "singular matrix is not a Möbius transformation");
        Mobius { a, b, c, d }
    }

    /// The identity map.
    pub fn identity() -> Self {
        Mobius { a: 1, b: 0, c: 0, d: 1 }
    }

    /// Applies the map to a projective point via homogeneous coordinates:
    /// `(x : y) ↦ (a·x + b·y : c·x + d·y)`.
    pub fn apply(&self, field: &Gf, p: PPoint) -> PPoint {
        let (x, y) = p.homogeneous();
        let nx = field.add(field.mul(self.a, x), field.mul(self.b, y));
        let ny = field.add(field.mul(self.c, x), field.mul(self.d, y));
        PPoint::from_homogeneous(field, nx, ny)
    }

    /// The inverse transformation (adjugate matrix).
    pub fn inverse(&self, field: &Gf) -> Mobius {
        Mobius::new(field, self.d, field.neg(self.b), field.neg(self.c), self.a)
    }

    /// Composition `self ∘ other` (matrix product).
    pub fn compose(&self, field: &Gf, other: &Mobius) -> Mobius {
        Mobius::new(
            field,
            field.add(field.mul(self.a, other.a), field.mul(self.b, other.c)),
            field.add(field.mul(self.a, other.b), field.mul(self.b, other.d)),
            field.add(field.mul(self.c, other.a), field.mul(self.d, other.c)),
            field.add(field.mul(self.c, other.b), field.mul(self.d, other.d)),
        )
    }

    /// The unique Möbius map sending `(0, 1, ∞) ↦ (p0, p1, pinf)` for three
    /// distinct points — the constructive form of sharp 3-transitivity.
    ///
    /// With homogeneous vectors `v0, v1, v∞` for the targets, pick scalars
    /// `α, β` such that `α·v0 + β·v∞ = v1` (solvable since `v0, v∞` form a
    /// basis); then the matrix with columns `(β·v∞ | α·v0)` works.
    pub fn through_triple(field: &Gf, p0: PPoint, p1: PPoint, pinf: PPoint) -> Mobius {
        assert!(p0 != p1 && p1 != pinf && p0 != pinf, "triple points must be distinct");
        let (x0, y0) = p0.homogeneous();
        let (x1, y1) = p1.homogeneous();
        let (xi, yi) = pinf.homogeneous();
        // Solve alpha * (x0, y0) + beta * (xi, yi) = (x1, y1) by Cramer.
        let det = field.sub(field.mul(x0, yi), field.mul(xi, y0));
        assert!(det != 0, "target points must be distinct projective points");
        let det_inv = field.inv(det);
        let alpha = field.mul(field.sub(field.mul(x1, yi), field.mul(xi, y1)), det_inv);
        let beta = field.mul(field.sub(field.mul(x0, y1), field.mul(x1, y0)), det_inv);
        // Both alpha and beta are nonzero because the three points are distinct.
        debug_assert!(alpha != 0 && beta != 0);
        // Columns: image of (1:0) is beta*vinf, image of (0:1) is alpha*v0.
        Mobius::new(
            field,
            field.mul(beta, xi),
            field.mul(alpha, x0),
            field.mul(beta, yi),
            field.mul(alpha, y0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_roundtrip() {
        let f = Gf::new(9);
        let line = ProjectiveLine::new(f);
        for p in line.points() {
            let (x, y) = p.homogeneous();
            assert_eq!(PPoint::from_homogeneous(line.field(), x, y), p);
        }
    }

    #[test]
    fn point_indexing_roundtrip() {
        let line = ProjectiveLine::new(Gf::new(9));
        for idx in 0..line.num_points() {
            assert_eq!(line.index_of(line.point_at(idx)), idx);
        }
    }

    #[test]
    fn identity_fixes_all_points() {
        let line = ProjectiveLine::new(Gf::new(25));
        let id = Mobius::identity();
        for p in line.points() {
            assert_eq!(id.apply(line.field(), p), p);
        }
    }

    #[test]
    fn mobius_is_a_bijection() {
        let line = ProjectiveLine::new(Gf::new(9));
        let f = line.field();
        let m = Mobius::new(f, 2, 1, 1, 0);
        let mut seen = std::collections::HashSet::new();
        for p in line.points() {
            assert!(seen.insert(m.apply(f, p)));
        }
        assert_eq!(seen.len(), line.num_points());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let line = ProjectiveLine::new(Gf::new(49));
        let f = line.field();
        let m = Mobius::new(f, 3, 5, 1, 2);
        let minv = m.inverse(f);
        for p in line.points() {
            assert_eq!(minv.apply(f, m.apply(f, p)), p);
            assert_eq!(m.apply(f, minv.apply(f, p)), p);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let line = ProjectiveLine::new(Gf::new(9));
        let f = line.field();
        let m1 = Mobius::new(f, 2, 1, 0, 1);
        let m2 = Mobius::new(f, 1, 0, 3, 1);
        let comp = m1.compose(f, &m2);
        for p in line.points() {
            assert_eq!(comp.apply(f, p), m1.apply(f, m2.apply(f, p)));
        }
    }

    #[test]
    fn through_triple_hits_targets() {
        let line = ProjectiveLine::new(Gf::new(9));
        let f = line.field();
        let pts = line.points();
        let zero = PPoint::Finite(0);
        let one = PPoint::Finite(1);
        let inf = PPoint::Infinity;
        for &p0 in &pts {
            for &p1 in &pts {
                for &p2 in &pts {
                    if p0 == p1 || p1 == p2 || p0 == p2 {
                        continue;
                    }
                    let m = Mobius::through_triple(f, p0, p1, p2);
                    assert_eq!(m.apply(f, zero), p0);
                    assert_eq!(m.apply(f, one), p1);
                    assert_eq!(m.apply(f, inf), p2);
                }
            }
        }
    }

    #[test]
    fn through_triple_works_with_infinity_in_any_slot() {
        let line = ProjectiveLine::new(Gf::new(4));
        let f = line.field();
        let cases = [
            (PPoint::Infinity, PPoint::Finite(1), PPoint::Finite(2)),
            (PPoint::Finite(1), PPoint::Infinity, PPoint::Finite(2)),
            (PPoint::Finite(1), PPoint::Finite(2), PPoint::Infinity),
        ];
        for (p0, p1, p2) in cases {
            let m = Mobius::through_triple(f, p0, p1, p2);
            assert_eq!(m.apply(f, PPoint::Finite(0)), p0);
            assert_eq!(m.apply(f, PPoint::Finite(1)), p1);
            assert_eq!(m.apply(f, PPoint::Infinity), p2);
        }
    }
}
