#![warn(missing_docs)]
//! Finite fields and projective-line geometry.
//!
//! This crate provides exactly the algebra needed to construct the spherical
//! Steiner systems of Colbourn–Dinitz Example 3.23 (used by the STTSV paper
//! to generate tetrahedral block partitions):
//!
//! * [`poly`] — polynomial arithmetic over prime fields and a search for
//!   irreducible polynomials,
//! * [`gf`] — table-driven arithmetic for `GF(p^m)` with subfield detection,
//! * [`projective`] — the projective line `PG(1, q)` and the sharply
//!   3-transitive Möbius (`PGL₂`) action on it.
//!
//! Field sizes in this project are tiny (at most a few hundred elements), so
//! all arithmetic is precomputed into dense tables for O(1) operations.

pub mod gf;
pub mod poly;
pub mod projective;

pub use gf::{FieldElem, Gf};
pub use projective::{Mobius, PPoint, ProjectiveLine};

/// Returns `Some((p, k))` if `q = p^k` for a prime `p` and `k ≥ 1`.
///
/// This is the "prime power" check used throughout the paper: tetrahedral
/// partitions exist for `P = q(q²+1)` whenever `q` is a prime power.
pub fn prime_power(q: u64) -> Option<(u64, u32)> {
    if q < 2 {
        return None;
    }
    let mut m = q;
    // Find the smallest prime factor of q.
    let mut p = 0;
    let mut d = 2;
    while d * d <= m {
        if m % d == 0 {
            p = d;
            break;
        }
        d += 1;
    }
    if p == 0 {
        // q itself is prime.
        return Some((q, 1));
    }
    let mut k = 0;
    while m > 1 {
        if m % p != 0 {
            return None;
        }
        m /= p;
        k += 1;
    }
    Some((p, k))
}

/// Returns true if `q` is a prime power.
pub fn is_prime_power(q: u64) -> bool {
    prime_power(q).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_power_detection() {
        assert_eq!(prime_power(2), Some((2, 1)));
        assert_eq!(prime_power(3), Some((3, 1)));
        assert_eq!(prime_power(4), Some((2, 2)));
        assert_eq!(prime_power(5), Some((5, 1)));
        assert_eq!(prime_power(6), None);
        assert_eq!(prime_power(7), Some((7, 1)));
        assert_eq!(prime_power(8), Some((2, 3)));
        assert_eq!(prime_power(9), Some((3, 2)));
        assert_eq!(prime_power(10), None);
        assert_eq!(prime_power(12), None);
        assert_eq!(prime_power(16), Some((2, 4)));
        assert_eq!(prime_power(25), Some((5, 2)));
        assert_eq!(prime_power(27), Some((3, 3)));
        assert_eq!(prime_power(49), Some((7, 2)));
        assert_eq!(prime_power(81), Some((3, 4)));
        assert_eq!(prime_power(0), None);
        assert_eq!(prime_power(1), None);
    }

    #[test]
    fn prime_powers_below_100() {
        let expected: Vec<u64> = vec![
            2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32, 37, 41, 43, 47, 49,
            53, 59, 61, 64, 67, 71, 73, 79, 81, 83, 89, 97,
        ];
        let got: Vec<u64> = (2..100).filter(|&q| is_prime_power(q)).collect();
        assert_eq!(got, expected);
    }
}
