//! Polynomial arithmetic over the prime field `GF(p)`, used only to find an
//! irreducible polynomial that defines the extension field `GF(p^m)`.
//!
//! Coefficients are stored little-endian (`coeffs[i]` multiplies `x^i`) and
//! polynomials are kept normalized (no trailing zeros).

/// A polynomial over `GF(p)` with little-endian coefficients in `[0, p)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Poly {
    /// Little-endian coefficients in `[0, p)` (no trailing zeros).
    pub coeffs: Vec<u64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: vec![] }
    }

    /// The constant polynomial `c` (reduced mod `p` by the caller).
    pub fn constant(c: u64) -> Self {
        let mut poly = Poly { coeffs: vec![c] };
        poly.normalize();
        poly
    }

    /// The monomial `x^d`.
    pub fn monomial(d: usize) -> Self {
        let mut coeffs = vec![0; d + 1];
        coeffs[d] = 1;
        Poly { coeffs }
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Returns true for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    fn normalize(&mut self) {
        while self.coeffs.last() == Some(&0) {
            self.coeffs.pop();
        }
    }

    /// Addition in `GF(p)[x]`.
    pub fn add(&self, other: &Poly, p: u64) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0; n];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *c = (a + b) % p;
        }
        let mut poly = Poly { coeffs };
        poly.normalize();
        poly
    }

    /// Subtraction in `GF(p)[x]`.
    pub fn sub(&self, other: &Poly, p: u64) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0; n];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *c = (a + p - b) % p;
        }
        let mut poly = Poly { coeffs };
        poly.normalize();
        poly
    }

    /// Schoolbook multiplication in `GF(p)[x]`.
    pub fn mul(&self, other: &Poly, p: u64) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] = (coeffs[i + j] + a * b) % p;
            }
        }
        let mut poly = Poly { coeffs };
        poly.normalize();
        poly
    }

    /// Remainder of `self` divided by monic-after-scaling `divisor`.
    pub fn rem(&self, divisor: &Poly, p: u64) -> Poly {
        let dd = divisor.degree().expect("division by the zero polynomial");
        let lead = *divisor.coeffs.last().unwrap();
        let lead_inv = mod_inverse(lead, p);
        let mut rem = self.clone();
        while let Some(rd) = rem.degree() {
            if rd < dd {
                break;
            }
            let factor = (*rem.coeffs.last().unwrap() * lead_inv) % p;
            let shift = rd - dd;
            for (i, &dc) in divisor.coeffs.iter().enumerate() {
                let idx = i + shift;
                rem.coeffs[idx] = (rem.coeffs[idx] + p * factor - (factor * dc) % p) % p;
            }
            rem.normalize();
        }
        rem
    }

    /// `self^e mod modulus` via square-and-multiply, with `x`-power exponents
    /// potentially as large as `p^m` (fits in u64 for our field sizes).
    pub fn pow_mod(&self, mut e: u64, modulus: &Poly, p: u64) -> Poly {
        let mut base = self.rem(modulus, p);
        let mut acc = Poly::constant(1);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base, p).rem(modulus, p);
            }
            base = base.mul(&base, p).rem(modulus, p);
            e >>= 1;
        }
        acc
    }

    /// Greatest common divisor (monic) in `GF(p)[x]`.
    pub fn gcd(&self, other: &Poly, p: u64) -> Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b, p);
            a = b;
            b = r;
        }
        // Make monic for a canonical result.
        if let Some(&lead) = a.coeffs.last() {
            if lead != 1 {
                let inv = mod_inverse(lead, p);
                for c in &mut a.coeffs {
                    *c = (*c * inv) % p;
                }
            }
        }
        a
    }
}

/// Modular inverse in `GF(p)` via Fermat's little theorem (`p` prime).
pub fn mod_inverse(a: u64, p: u64) -> u64 {
    mod_pow(a % p, p - 2, p)
}

/// Modular exponentiation.
pub fn mod_pow(mut base: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        e >>= 1;
    }
    acc
}

/// Tests irreducibility of a monic degree-`m` polynomial `f` over `GF(p)`
/// using the standard criterion: `x^(p^m) ≡ x (mod f)` and, for every prime
/// divisor `d` of `m`, `gcd(x^(p^(m/d)) − x, f) = 1`.
pub fn is_irreducible(f: &Poly, p: u64) -> bool {
    let m = match f.degree() {
        Some(m) if m >= 1 => m,
        _ => return false,
    };
    let x = Poly::monomial(1);
    // x^(p^m) mod f, computed by m repeated Frobenius steps (raising to p).
    let mut frob = x.clone();
    let mut frobs = Vec::with_capacity(m);
    for _ in 0..m {
        frob = frob.pow_mod(p, f, p);
        frobs.push(frob.clone());
    }
    if frobs[m - 1] != x.rem(f, p) {
        return false;
    }
    for d in prime_divisors(m as u64) {
        let k = m / d as usize;
        let g = frobs[k - 1].sub(&x, p).gcd(f, p);
        if g.degree() != Some(0) {
            return false;
        }
    }
    true
}

fn prime_divisors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            out.push(d);
            while n % d == 0 {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Finds the lexicographically smallest monic irreducible polynomial of
/// degree `m` over `GF(p)`. Exists for every prime `p` and `m ≥ 1`.
pub fn find_irreducible(p: u64, m: usize) -> Poly {
    assert!(m >= 1);
    if m == 1 {
        // x itself is irreducible of degree 1.
        return Poly::monomial(1);
    }
    // Enumerate lower coefficients as base-p counters.
    let total = (p as u128).pow(m as u32);
    for code in 0..total {
        let mut coeffs = Vec::with_capacity(m + 1);
        let mut c = code;
        for _ in 0..m {
            coeffs.push((c % p as u128) as u64);
            c /= p as u128;
        }
        coeffs.push(1); // monic
        let f = Poly { coeffs };
        if is_irreducible(&f, p) {
            return f;
        }
    }
    unreachable!("an irreducible polynomial of degree {m} over GF({p}) must exist");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rem_basic() {
        // (x^2 + 1) mod (x + 1) over GF(3): x = -1 => 1 + 1 = 2.
        let f = Poly { coeffs: vec![1, 0, 1] };
        let g = Poly { coeffs: vec![1, 1] };
        assert_eq!(f.rem(&g, 3), Poly::constant(2));
    }

    #[test]
    fn known_irreducibles() {
        // x^2 + x + 1 over GF(2).
        assert!(is_irreducible(&Poly { coeffs: vec![1, 1, 1] }, 2));
        // x^2 + 1 over GF(2) = (x+1)^2: reducible.
        assert!(!is_irreducible(&Poly { coeffs: vec![1, 0, 1] }, 2));
        // x^2 + 1 over GF(3): irreducible (-1 is a non-residue mod 3).
        assert!(is_irreducible(&Poly { coeffs: vec![1, 0, 1] }, 3));
        // x^2 - 2 over GF(7): 2 = 3^2 mod 7, reducible.
        assert!(!is_irreducible(&Poly { coeffs: vec![5, 0, 1] }, 7));
        // x^3 + x + 1 over GF(2): irreducible.
        assert!(is_irreducible(&Poly { coeffs: vec![1, 1, 0, 1] }, 2));
        // x^4 + x + 1 over GF(2): irreducible.
        assert!(is_irreducible(&Poly { coeffs: vec![1, 1, 0, 0, 1] }, 2));
        // x^4 + x^3 + x^2 + x + 1 over GF(2): irreducible? It divides x^5-1;
        // its roots have order 5 and 5 | 2^4 - 1 = 15, so yes.
        assert!(is_irreducible(&Poly { coeffs: vec![1, 1, 1, 1, 1] }, 2));
    }

    #[test]
    fn find_irreducible_has_right_degree_and_is_irreducible() {
        for &(p, m) in &[
            (2u64, 2usize),
            (2, 3),
            (2, 4),
            (2, 6),
            (3, 2),
            (3, 4),
            (5, 2),
            (7, 2),
            (11, 2),
            (13, 2),
        ] {
            let f = find_irreducible(p, m);
            assert_eq!(f.degree(), Some(m), "degree for p={p} m={m}");
            assert!(is_irreducible(&f, p), "irreducible for p={p} m={m}");
        }
    }

    #[test]
    fn gcd_of_coprime_is_one() {
        // gcd(x^2+1, x) over GF(3) = 1.
        let f = Poly { coeffs: vec![1, 0, 1] };
        let g = Poly::monomial(1);
        assert_eq!(f.gcd(&g, 3), Poly::constant(1));
    }

    #[test]
    fn mod_inverse_works() {
        for p in [2u64, 3, 5, 7, 11, 13] {
            for a in 1..p {
                assert_eq!(a * mod_inverse(a, p) % p, 1);
            }
        }
    }
}
