//! Table-driven arithmetic for the finite field `GF(p^m)`.
//!
//! Elements are identified with integers in `[0, p^m)` by reading the base-`p`
//! digits of the integer as polynomial coefficients (little-endian) of the
//! residue class modulo a fixed irreducible polynomial. The fields used by
//! this project have at most a few hundred elements, so full multiplication
//! and inverse tables are precomputed.

use crate::poly::{find_irreducible, Poly};

/// An element of a [`Gf`] field, stored as its integer code in `[0, q)`.
pub type FieldElem = u32;

/// The finite field `GF(p^m)` with `q = p^m` elements.
#[derive(Clone, Debug)]
pub struct Gf {
    p: u64,
    m: u32,
    q: u32,
    /// Defining irreducible polynomial (little-endian coefficients).
    modulus: Vec<u64>,
    add_table: Vec<FieldElem>,
    mul_table: Vec<FieldElem>,
    neg_table: Vec<FieldElem>,
    inv_table: Vec<FieldElem>,
}

impl Gf {
    /// Constructs `GF(q)` for a prime power `q = p^m`.
    ///
    /// # Panics
    /// Panics if `q` is not a prime power or exceeds `2^16` (tables would be
    /// needlessly large for this project's use).
    pub fn new(q: u64) -> Self {
        let (p, m) = crate::prime_power(q).unwrap_or_else(|| panic!("GF({q}): not a prime power"));
        assert!(q <= 1 << 16, "GF({q}): field too large for table-driven arithmetic");
        let modulus = find_irreducible(p, m as usize);
        let q = q as u32;

        // Element <-> polynomial conversions.
        let to_poly = |e: u32| -> Poly {
            let mut coeffs = Vec::with_capacity(m as usize);
            let mut v = e as u64;
            for _ in 0..m {
                coeffs.push(v % p);
                v /= p;
            }
            let mut poly = Poly { coeffs };
            while poly.coeffs.last() == Some(&0) {
                poly.coeffs.pop();
            }
            poly
        };
        let from_poly = |poly: &Poly| -> u32 {
            let mut v = 0u64;
            for &c in poly.coeffs.iter().rev() {
                v = v * p + c;
            }
            v as u32
        };

        let qs = q as usize;
        let mut add_table = vec![0; qs * qs];
        let mut mul_table = vec![0; qs * qs];
        let mut neg_table = vec![0; qs];
        let mut inv_table = vec![0; qs];
        let polys: Vec<Poly> = (0..q).map(to_poly).collect();
        for a in 0..qs {
            for b in a..qs {
                let s = from_poly(&polys[a].add(&polys[b], p));
                add_table[a * qs + b] = s;
                add_table[b * qs + a] = s;
                let t = from_poly(&polys[a].mul(&polys[b], p).rem(&modulus, p));
                mul_table[a * qs + b] = t;
                mul_table[b * qs + a] = t;
            }
        }
        for a in 0..qs {
            let negp = Poly::zero().sub(&polys[a], p);
            neg_table[a] = from_poly(&negp);
        }
        // Inverses: a^(q-2) = a^{-1}; build by scanning the mul table.
        for a in 1..qs {
            for b in 1..qs {
                if mul_table[a * qs + b] == 1 {
                    inv_table[a] = b as u32;
                    break;
                }
            }
        }

        Gf { p, m, q, modulus: modulus.coeffs, add_table, mul_table, neg_table, inv_table }
    }

    /// Number of elements `q = p^m`.
    #[inline]
    pub fn order(&self) -> u32 {
        self.q
    }

    /// Characteristic `p`.
    #[inline]
    pub fn characteristic(&self) -> u64 {
        self.p
    }

    /// Extension degree `m` over the prime field.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Coefficients of the defining irreducible polynomial (little-endian).
    pub fn modulus(&self) -> &[u64] {
        &self.modulus
    }

    /// The additive identity.
    #[inline]
    pub fn zero(&self) -> FieldElem {
        0
    }

    /// The multiplicative identity.
    #[inline]
    pub fn one(&self) -> FieldElem {
        1
    }

    /// Field addition.
    #[inline]
    pub fn add(&self, a: FieldElem, b: FieldElem) -> FieldElem {
        self.add_table[a as usize * self.q as usize + b as usize]
    }

    /// Field subtraction.
    #[inline]
    pub fn sub(&self, a: FieldElem, b: FieldElem) -> FieldElem {
        self.add(a, self.neg(b))
    }

    /// Additive inverse.
    #[inline]
    pub fn neg(&self, a: FieldElem) -> FieldElem {
        self.neg_table[a as usize]
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: FieldElem, b: FieldElem) -> FieldElem {
        self.mul_table[a as usize * self.q as usize + b as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on the zero element.
    #[inline]
    pub fn inv(&self, a: FieldElem) -> FieldElem {
        assert!(a != 0, "inverse of zero in GF({})", self.q);
        self.inv_table[a as usize]
    }

    /// Division `a / b`.
    #[inline]
    pub fn div(&self, a: FieldElem, b: FieldElem) -> FieldElem {
        self.mul(a, self.inv(b))
    }

    /// `a^e` by square-and-multiply.
    pub fn pow(&self, a: FieldElem, mut e: u64) -> FieldElem {
        let mut base = a;
        let mut acc = self.one();
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Iterator over all elements of the field.
    pub fn elements(&self) -> impl Iterator<Item = FieldElem> {
        0..self.q
    }

    /// The Frobenius automorphism `x ↦ x^p`.
    #[inline]
    pub fn frobenius(&self, a: FieldElem) -> FieldElem {
        self.pow(a, self.p)
    }

    /// The trace to the prime field: `Tr(x) = x + x^p + … + x^{p^{m−1}}`.
    /// Always lands in `GF(p)` (returned as its element code `< p`).
    pub fn trace(&self, a: FieldElem) -> FieldElem {
        let mut acc = self.zero();
        let mut term = a;
        for _ in 0..self.m {
            acc = self.add(acc, term);
            term = self.frobenius(term);
        }
        debug_assert!((acc as u64) < self.p, "trace must lie in the prime field");
        acc
    }

    /// The norm to the prime field: `N(x) = x^{(q−1)/(p−1)}` — the product
    /// of all conjugates. Always lands in `GF(p)`.
    pub fn norm(&self, a: FieldElem) -> FieldElem {
        let q = self.q as u64;
        let e = (q - 1) / (self.p - 1);
        let out = self.pow(a, e);
        debug_assert!(a == 0 || (out as u64) < self.p, "norm must lie in the prime field");
        out
    }

    /// Finds a primitive element (a generator of the cyclic multiplicative
    /// group of order `q − 1`).
    pub fn primitive_element(&self) -> FieldElem {
        let q1 = self.q as u64 - 1;
        let factors = prime_factors(q1);
        'candidates: for g in 2..self.q {
            for &f in &factors {
                if self.pow(g, q1 / f) == 1 {
                    continue 'candidates;
                }
            }
            return g;
        }
        // q = 2: the only nonzero element is 1.
        1
    }

    /// Discrete logarithm base `g` of `a` (`a ≠ 0`), by table scan — fine
    /// for these tiny fields. Returns `e` with `g^e = a`.
    pub fn discrete_log(&self, g: FieldElem, a: FieldElem) -> Option<u64> {
        assert!(a != 0, "discrete log of zero");
        let mut acc = self.one();
        for e in 0..self.q as u64 {
            if acc == a {
                return Some(e);
            }
            acc = self.mul(acc, g);
        }
        None
    }

    /// The elements of the subfield of order `q0` (requires `q0^k = q` for
    /// some `k`, i.e. `GF(q0) ⊆ GF(q)`): exactly those `x` with `x^{q0} = x`.
    ///
    /// # Panics
    /// Panics if `GF(q0)` is not a subfield of this field.
    pub fn subfield_elements(&self, q0: u64) -> Vec<FieldElem> {
        let (p0, m0) =
            crate::prime_power(q0).unwrap_or_else(|| panic!("GF({q0}): not a prime power"));
        assert_eq!(p0, self.p, "GF({q0}) is not a subfield of GF({})", self.q);
        assert!(self.m % m0 == 0, "GF({q0}) is not a subfield of GF({})", self.q);
        let sub: Vec<FieldElem> = self.elements().filter(|&x| self.pow(x, q0) == x).collect();
        assert_eq!(sub.len() as u64, q0, "subfield size mismatch");
        sub
    }
}

fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            out.push(d);
            while n % d == 0 {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_field_axioms(q: u64) {
        let f = Gf::new(q);
        let els: Vec<_> = f.elements().collect();
        // Additive and multiplicative identity.
        for &a in &els {
            assert_eq!(f.add(a, f.zero()), a);
            assert_eq!(f.mul(a, f.one()), a);
            assert_eq!(f.add(a, f.neg(a)), f.zero());
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a)), f.one());
            }
        }
        // Commutativity + associativity + distributivity, exhaustively for
        // small fields, on a stride for larger ones.
        let stride = if q <= 16 { 1 } else { (q as usize / 11).max(1) };
        let sample: Vec<_> = els.iter().copied().step_by(stride).collect();
        for &a in &sample {
            for &b in &sample {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for &c in &sample {
                    assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
        // No zero divisors.
        for &a in &els {
            for &b in &els {
                if a != 0 && b != 0 {
                    assert_ne!(f.mul(a, b), 0, "zero divisor in GF({q}): {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn gf4_axioms() {
        check_field_axioms(4);
    }

    #[test]
    fn gf9_axioms() {
        check_field_axioms(9);
    }

    #[test]
    fn gf16_axioms() {
        check_field_axioms(16);
    }

    #[test]
    fn gf25_axioms() {
        check_field_axioms(25);
    }

    #[test]
    fn gf49_axioms() {
        check_field_axioms(49);
    }

    #[test]
    fn gf64_axioms() {
        check_field_axioms(64);
    }

    #[test]
    fn gf81_axioms() {
        check_field_axioms(81);
    }

    #[test]
    fn prime_field_matches_modular_arithmetic() {
        let f = Gf::new(7);
        for a in 0..7u32 {
            for b in 0..7u32 {
                assert_eq!(f.add(a, b), (a + b) % 7);
                assert_eq!(f.mul(a, b), (a * b) % 7);
            }
        }
    }

    #[test]
    fn multiplicative_group_is_cyclic_of_order_q_minus_1() {
        for q in [4u64, 8, 9, 16, 25, 49] {
            let f = Gf::new(q);
            // Every nonzero element satisfies x^(q-1) = 1.
            for x in 1..f.order() {
                assert_eq!(f.pow(x, q - 1), 1, "x^{} != 1 for x={x} in GF({q})", q - 1);
            }
            // And there exists a generator of order exactly q-1.
            let found = (1..f.order()).any(|x| {
                let mut acc = f.one();
                let mut order = 0;
                loop {
                    acc = f.mul(acc, x);
                    order += 1;
                    if acc == 1 {
                        break;
                    }
                }
                order == q - 1
            });
            assert!(found, "no generator found for GF({q})");
        }
    }

    #[test]
    fn subfields() {
        // F_3 inside F_9.
        let f9 = Gf::new(9);
        let sub = f9.subfield_elements(3);
        assert_eq!(sub.len(), 3);
        assert!(sub.contains(&0) && sub.contains(&1));
        // Subfield closed under + and *.
        for &a in &sub {
            for &b in &sub {
                assert!(sub.contains(&f9.add(a, b)));
                assert!(sub.contains(&f9.mul(a, b)));
            }
        }
        // F_4 inside F_16.
        let f16 = Gf::new(16);
        let sub4 = f16.subfield_elements(4);
        assert_eq!(sub4.len(), 4);
        for &a in &sub4 {
            for &b in &sub4 {
                assert!(sub4.contains(&f16.add(a, b)));
                assert!(sub4.contains(&f16.mul(a, b)));
            }
        }
        // F_5 inside F_25, F_7 inside F_49.
        assert_eq!(Gf::new(25).subfield_elements(5).len(), 5);
        assert_eq!(Gf::new(49).subfield_elements(7).len(), 7);
        // F_8 inside F_64, F_9 inside F_81.
        assert_eq!(Gf::new(64).subfield_elements(8).len(), 8);
        assert_eq!(Gf::new(81).subfield_elements(9).len(), 9);
    }

    #[test]
    fn frobenius_is_an_automorphism() {
        for q in [4u64, 9, 16, 25, 49] {
            let f = Gf::new(q);
            let els: Vec<_> = f.elements().collect();
            // Bijective, additive and multiplicative.
            let images: std::collections::HashSet<_> =
                els.iter().map(|&a| f.frobenius(a)).collect();
            assert_eq!(images.len(), els.len());
            for &a in &els {
                for &b in &els {
                    assert_eq!(f.frobenius(f.add(a, b)), f.add(f.frobenius(a), f.frobenius(b)));
                    assert_eq!(f.frobenius(f.mul(a, b)), f.mul(f.frobenius(a), f.frobenius(b)));
                }
            }
            // Fixes exactly the prime subfield.
            let fixed: Vec<_> = els.iter().copied().filter(|&a| f.frobenius(a) == a).collect();
            assert_eq!(fixed.len() as u64, f.characteristic());
        }
    }

    #[test]
    fn trace_and_norm_land_in_prime_field_and_are_structured() {
        for q in [9u64, 16, 25, 49, 81] {
            let f = Gf::new(q);
            let p = f.characteristic() as u32;
            for a in f.elements() {
                assert!(f.trace(a) < p);
                if a != 0 {
                    assert!(f.norm(a) < p && f.norm(a) != 0);
                }
            }
            // Trace is additive; norm is multiplicative.
            for a in f.elements().step_by(3) {
                for b in f.elements().step_by(3) {
                    assert_eq!(f.trace(f.add(a, b)), f.add(f.trace(a), f.trace(b)));
                    assert_eq!(f.norm(f.mul(a, b)), f.mul(f.norm(a), f.norm(b)));
                }
            }
            // Trace is surjective onto GF(p) (it is GF(p)-linear, nonzero).
            let traces: std::collections::HashSet<_> = f.elements().map(|a| f.trace(a)).collect();
            assert_eq!(traces.len() as u32, p);
        }
    }

    #[test]
    fn primitive_element_generates_everything() {
        for q in [4u64, 8, 9, 25, 49, 64, 81] {
            let f = Gf::new(q);
            let g = f.primitive_element();
            let mut seen = std::collections::HashSet::new();
            let mut acc = f.one();
            for _ in 0..q - 1 {
                assert!(seen.insert(acc), "order of g divides a proper factor in GF({q})");
                acc = f.mul(acc, g);
            }
            assert_eq!(acc, 1, "g^(q-1) = 1");
            assert_eq!(seen.len() as u64, q - 1);
        }
    }

    #[test]
    fn discrete_log_inverts_exponentiation() {
        let f = Gf::new(27);
        let g = f.primitive_element();
        for a in 1..f.order() {
            let e = f.discrete_log(g, a).expect("generator reaches everything");
            assert_eq!(f.pow(g, e), a);
        }
    }

    #[test]
    #[should_panic(expected = "not a subfield")]
    fn invalid_subfield_panics() {
        // F_4 is not a subfield of F_9.
        Gf::new(9).subfield_elements(4);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_inverse_panics() {
        Gf::new(5).inv(0);
    }
}
