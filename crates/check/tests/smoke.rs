//! Fast sanity checks for the explorer: one model verified, one seeded
//! bug caught, one race detected. The exhaustive suite (all models, the
//! full mutation sweep, schema round-trip, lint gate) lives in the
//! workspace-level `tests/check.rs`.

use symtensor_check::model::{Config, Violation};
use symtensor_check::models;

fn quick_cfg() -> Config {
    Config { max_execs: 100_000, ..Config::default() }
}

#[test]
fn seqlock_verifies_under_correct_orderings() {
    let def = models::defs().into_iter().find(|d| d.name == "seqlock").expect("seqlock def");
    let outcome = def.explore(&quick_cfg());
    assert!(
        outcome.passed(),
        "seqlock violated under correct orderings: {:?} (schedule {:?})",
        outcome.violation,
        outcome.schedule
    );
    assert!(!outcome.capped, "seqlock exploration hit the execution cap");
    assert!(
        outcome.interleavings >= 100,
        "expected ≥100 interleavings, explored {}",
        outcome.interleavings
    );
}

#[test]
fn weakened_seqlock_fence_is_caught() {
    let def = models::defs().into_iter().find(|d| d.name == "seqlock").expect("seqlock def");
    let weakened = def.orderings.weaken("writer-rel-fence");
    let build = def.build;
    let outcome = symtensor_check::model::explore("seqlock-weak", &quick_cfg(), &move || {
        build(weakened.clone())
    });
    match outcome.violation {
        Some(Violation::Assert(ref m)) => {
            assert!(m.contains("torn"), "unexpected assertion: {m}")
        }
        ref other => panic!("expected a torn-read assertion, got {other:?}"),
    }
}

#[test]
fn race_demo_is_detected() {
    let outcome = models::race_demo(&quick_cfg());
    assert!(
        matches!(outcome.violation, Some(Violation::Race { .. })),
        "racy counter not detected: {:?}",
        outcome.violation
    );
}
