//! The source lint: a line-oriented scanner enforcing the repo's
//! concurrency-hygiene rules over the checked crates. No rustc plugin,
//! no syn — just the conventions below, cheap enough to run on every CI
//! push and deterministic enough to gate on.
//!
//! Rules (scopes are path prefixes under the workspace root):
//!
//! * **ordering-justification** — every line using an explicit
//!   `Ordering::` in `crates/{telemetry,mpsim,pool}/src` must carry a
//!   `// ordering:` justification on the same line or within the two
//!   preceding lines. Orderings are load-bearing; an unjustified one is
//!   indistinguishable from a guessed one.
//! * **no-panic-path** — no `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` in `crates/telemetry/src`, `crates/pool/src`, or
//!   `crates/mpsim/src/flight.rs`: the serving, execution, and flight
//!   planes must degrade, not abort. Escape hatch for designed
//!   invariants: `// lint: allow-panic` (same line or two above).
//! * **no-raw-atomics** — no `std::sync::atomic` mention in the checked
//!   crates outside a `sync.rs` façade module, so every atomic compiles
//!   against the model-checking shim under `--cfg symtensor_check`.
//!   Escape: `// lint: allow-raw-atomic`.
//! * **no-clock-in-record-path** — no `Instant::now()` /
//!   `SystemTime::now()` in `crates/telemetry/src` or
//!   `crates/mpsim/src/flight.rs` except blessed anchors tagged
//!   `// lint: clock-anchor`: unplanned clock reads are exactly the
//!   self-overhead the flight recorder exists to measure.
//!
//! Test code is exempt: everything after the first `#[cfg(test)]` line
//! of a file (the repo convention keeps the test module last), and
//! comment-only lines never match.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path relative to the scanned root.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Rule identifier (kebab-case).
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.excerpt)
    }
}

const ORDERING_SCOPE: &[&str] = &["crates/telemetry/src", "crates/mpsim/src", "crates/pool/src"];
const PANIC_SCOPE: &[&str] =
    &["crates/telemetry/src", "crates/pool/src", "crates/mpsim/src/flight.rs"];
const RAW_ATOMIC_SCOPE: &[&str] = &["crates/telemetry/src", "crates/mpsim/src", "crates/pool/src"];
const CLOCK_SCOPE: &[&str] = &["crates/telemetry/src", "crates/mpsim/src/flight.rs"];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel.starts_with(p))
}

/// True when `line`, or one of the up-to-two preceding lines, carries
/// the escape/justification `tag`.
fn tagged(lines: &[&str], idx: usize, tag: &str) -> bool {
    let lo = idx.saturating_sub(2);
    lines[lo..=idx].iter().any(|l| l.contains(tag))
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

/// Lints one file's contents. `rel` is the path relative to the
/// workspace root and selects which rule scopes apply.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = src.lines().collect();
    let is_sync_facade = rel.ends_with("/sync.rs");

    for (idx, &line) in lines.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            break; // repo convention: the test module is last in the file
        }
        if is_comment(line) {
            continue;
        }
        let mut push = |rule: &'static str| {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule,
                excerpt: line.trim().to_string(),
            });
        };

        if in_scope(rel, ORDERING_SCOPE)
            && line.contains("Ordering::")
            && !tagged(&lines, idx, "// ordering:")
        {
            push("ordering-justification");
        }
        if in_scope(rel, PANIC_SCOPE)
            && (line.contains("unwrap()")
                || line.contains("expect(")
                || line.contains("panic!")
                || line.contains("unreachable!"))
            && !tagged(&lines, idx, "// lint: allow-panic")
        {
            push("no-panic-path");
        }
        if in_scope(rel, RAW_ATOMIC_SCOPE)
            && !is_sync_facade
            && line.contains("std::sync::atomic")
            && !tagged(&lines, idx, "// lint: allow-raw-atomic")
        {
            push("no-raw-atomics");
        }
        if in_scope(rel, CLOCK_SCOPE)
            && (line.contains("Instant::now()") || line.contains("SystemTime::now()"))
            && !tagged(&lines, idx, "// lint: clock-anchor")
        {
            push("no-clock-in-record-path");
        }
    }
    findings
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `<root>/crates/*/src`, returning all
/// findings sorted by path and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_ordering_is_flagged_and_tagged_is_not() {
        let bad = "let v = seq.load(Ordering::Acquire);\n";
        let f = lint_source("crates/telemetry/src/cell.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-justification");
        assert_eq!(f[0].line, 1);

        let good = "// ordering: pairs with the writer's Release exit.\nlet v = seq.load(Ordering::Acquire);\n";
        assert!(lint_source("crates/telemetry/src/cell.rs", good).is_empty());
    }

    #[test]
    fn panic_paths_flagged_only_in_scope_and_outside_tests() {
        let src = "let x = maybe.unwrap();\n";
        assert_eq!(lint_source("crates/pool/src/lib.rs", src).len(), 1);
        // mpsim outside flight.rs is out of scope for this rule.
        assert!(lint_source("crates/mpsim/src/comm.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    let x = maybe.unwrap();\n}\n";
        assert!(lint_source("crates/pool/src/lib.rs", test_src).is_empty());
        let tagged_src = "// lint: allow-panic — designed invariant\nlet x = maybe.unwrap();\n";
        assert!(lint_source("crates/pool/src/lib.rs", tagged_src).is_empty());
    }

    #[test]
    fn raw_atomics_allowed_only_in_the_facade() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(lint_source("crates/telemetry/src/cell.rs", src).len(), 1);
        assert!(lint_source("crates/telemetry/src/sync.rs", src).is_empty());
    }

    #[test]
    fn clock_reads_need_the_anchor_tag() {
        let src = "let t = Instant::now();\n";
        assert_eq!(lint_source("crates/telemetry/src/plane.rs", src).len(), 1);
        let anchored = "// lint: clock-anchor — scrape-session start\nlet t = Instant::now();\n";
        assert!(lint_source("crates/telemetry/src/plane.rs", anchored).is_empty());
        // flight.rs is in scope, the rest of mpsim is not.
        assert_eq!(lint_source("crates/mpsim/src/flight.rs", src).len(), 1);
        assert!(lint_source("crates/mpsim/src/cost.rs", src).is_empty());
    }

    #[test]
    fn comment_lines_never_match() {
        let src = "//! call .unwrap() on the result\n// Ordering::Acquire is discussed here\n";
        assert!(lint_source("crates/pool/src/lib.rs", src).is_empty());
    }
}
