//! symtensor-check: correctness tooling for the workspace's lock-free
//! planes — the telemetry cell's seqlock, the rolling-histogram epochs,
//! the flight-recorder ring, the pool's chunk deque, and mpsim's abort
//! flag.
//!
//! Three engines, one dependency-free crate:
//!
//! 1. **Schedule explorer** ([`model`]) — loom-style deterministic
//!    model checking: the [`sync`] shim turns every atomic/cell access
//!    into a scheduling point, and a DFS over recorded decision trails
//!    replays every interleaving (and every weak-memory read) of small
//!    two/three-thread models of each primitive, asserting their
//!    invariants in each one. State-hash pruning, preemption bounding,
//!    and an op budget keep exploration finite.
//! 2. **Race detector** ([`mem`]) — FastTrack-style vector clocks over
//!    the same executions flag any unsynchronized non-atomic access,
//!    and a **mutation harness** ([`mutate`]) weakens each annotated
//!    ordering one slot at a time to verify the checker actually
//!    catches the resulting bug — the tool's sensitivity is itself
//!    under test.
//! 3. **Source lint** ([`lint`]) — a line-oriented scanner enforcing
//!    the repo's concurrency-hygiene rules (ordering justifications, no
//!    panic paths in serving code, no raw atomics outside the façade,
//!    no stray clock reads in record paths).
//!
//! Results aggregate into a `symtensor-check-v1` artifact ([`report`])
//! that round-trips the shared `obs::schema::validate` contract.
//!
//! The production crates compile against [`sync`] under
//! `--cfg symtensor_check` (a rustflags cfg, not a cargo feature, so
//! feature unification can never leak the shim into release builds);
//! without the cfg they use `std::sync::atomic` directly and this crate
//! is inert.

pub mod lint;
pub mod mem;
pub mod model;
pub mod models;
pub mod mutate;
pub mod report;
pub mod sync;

pub use lint::{lint_workspace, Finding};
pub use model::{Config, Outcome, Violation};
pub use mutate::{sweep, MutationReport};
pub use report::CheckReport;
