//! The explorer's abstract memory: per-location store histories with
//! release clocks, per-thread vector clocks, and the FastTrack-style
//! metadata behind the non-atomic race detector.
//!
//! The model is a pragmatic operational fragment of the C11 memory model,
//! chosen so that every behaviour it *admits* is admitted by C11 for the
//! orderings in question, and so that the classic fence disciplines
//! (seqlock, epoch reset, flag publication) verify exactly when they are
//! written correctly:
//!
//! * every atomic location keeps its full **store history**; a load may
//!   read any store that is neither older than what the thread has already
//!   observed for that location (coherence) nor overwritten by a store
//!   that happens-before the load;
//! * `Release` stores (and relaxed stores issued after a `Release` fence)
//!   carry the writer's **vector clock**; `Acquire` loads join it,
//!   `Relaxed` loads stash it until an `Acquire` fence;
//! * read-modify-writes always read the newest store (RMW atomicity);
//! * modification order is the order stores are executed in (a
//!   simplification: it forbids a store being placed *earlier* in
//!   modification order, which only removes behaviours);
//! * `SeqCst` is modelled as "AcqRel + reads the newest store" — stronger
//!   than C11's total order, which is fine for a checker whose job is to
//!   catch orderings that are *too weak*, and none of the checked
//!   primitives rely on SeqCst-only subtleties.

use std::sync::atomic::Ordering;

/// A vector clock over the execution's model threads (plus the finale
/// pseudo-thread).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Vc(pub Vec<u32>);

impl Vc {
    /// The zero clock for `n` threads.
    pub fn new(n: usize) -> Self {
        Vc(vec![0; n])
    }

    /// Pointwise maximum (the happens-before join).
    pub fn join(&mut self, other: &Vc) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether component `tid` is at least `clock` (the event `(tid,
    /// clock)` happens-before a thread holding this clock).
    pub fn covers(&self, tid: usize, clock: u32) -> bool {
        self.0.get(tid).is_some_and(|&c| c >= clock)
    }
}

/// One store in a location's history.
#[derive(Clone, Debug)]
pub struct Store {
    /// The stored value.
    pub val: u64,
    /// Position in modification order (history index).
    pub pos: usize,
    /// The writing thread, `None` for the initial value.
    pub writer: Option<usize>,
    /// The writer's own clock component at the store.
    pub writer_clock: u32,
    /// The clock an acquire reader of this store synchronizes with:
    /// the writer's full clock for `Release`-or-stronger stores, the
    /// writer's last `Release`-fence clock for relaxed stores after a
    /// release fence, `None` for plain relaxed stores.
    pub rel_vc: Option<Vc>,
}

/// One atomic location: a name for traces plus the store history.
#[derive(Clone, Debug)]
pub struct Loc {
    /// Model-assigned label (the shim's `named` constructor), for traces.
    pub name: &'static str,
    /// All stores, in modification order. Index 0 is the initial value.
    pub stores: Vec<Store>,
}

/// Read/write metadata for one non-atomic [`crate::sync::UnsafeCellShim`].
#[derive(Clone, Debug)]
pub struct CellMeta {
    /// Label for race reports.
    pub name: &'static str,
    /// Last write, as `(thread, clock)`.
    pub last_write: Option<(usize, u32)>,
    /// Per-thread clock of each thread's latest read.
    pub read_vc: Vc,
    /// Hash of the current value (fed into state hashing so pruning
    /// cannot merge states whose non-atomic data differs).
    pub val_hash: u64,
}

/// Per-thread view of the abstract memory.
#[derive(Clone, Debug)]
pub struct ThreadMem {
    /// The thread's vector clock.
    pub vc: Vc,
    /// Per-location history index of the newest store this thread has
    /// read or written (coherence floor).
    pub last_seen: Vec<usize>,
    /// Release clocks picked up by relaxed loads, pending an `Acquire`
    /// fence.
    pub acq_stash: Vc,
    /// The thread's clock at its last `Release` fence, if any.
    pub rel_fence: Option<Vc>,
    /// Rolling hash of every value this thread has read (captures the
    /// thread's locals for state hashing).
    pub read_hist: u64,
}

/// A data race found by the vector-clock detector.
#[derive(Clone, Debug)]
pub struct Race {
    /// The racy cell's label.
    pub cell: &'static str,
    /// Description of the earlier access.
    pub prior: String,
    /// Description of the access that raced it.
    pub access: String,
}

/// The whole abstract memory for one execution.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    /// Atomic locations, indexed by registration order.
    pub locs: Vec<Loc>,
    /// Non-atomic cells, indexed by registration order.
    pub cells: Vec<CellMeta>,
    threads: Vec<ThreadMem>,
    addr_locs: Vec<(usize, usize)>,
    addr_cells: Vec<(usize, usize)>,
}

fn mix(h: u64, v: u64) -> u64 {
    // splitmix64 finalizer — cheap, well distributed, dependency-free.
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn ord_code(ord: Ordering) -> u64 {
    match ord {
        Ordering::Relaxed => 0,
        Ordering::Acquire => 1,
        Ordering::Release => 2,
        Ordering::AcqRel => 3,
        Ordering::SeqCst => 4,
        _ => 5,
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Memory {
    /// Fresh memory for an execution with `threads` model threads (the
    /// finale pseudo-thread is `threads`, hence `+ 1` clock components).
    pub fn new(threads: usize) -> Self {
        let n = threads + 1;
        Memory {
            locs: Vec::new(),
            cells: Vec::new(),
            threads: (0..n)
                .map(|_| ThreadMem {
                    vc: Vc::new(n),
                    last_seen: Vec::new(),
                    acq_stash: Vc::new(n),
                    rel_fence: None,
                    read_hist: 0,
                })
                .collect(),
            addr_locs: Vec::new(),
            addr_cells: Vec::new(),
        }
    }

    /// Interns the atomic at `addr`, seeding its history with `initial`.
    pub fn register_loc(&mut self, addr: usize, initial: u64, name: &'static str) -> usize {
        if let Some(&(_, id)) = self.addr_locs.iter().find(|(a, _)| *a == addr) {
            return id;
        }
        let id = self.locs.len();
        self.locs.push(Loc {
            name,
            stores: vec![Store {
                val: initial,
                pos: 0,
                writer: None,
                writer_clock: 0,
                rel_vc: None,
            }],
        });
        self.addr_locs.push((addr, id));
        for t in &mut self.threads {
            t.last_seen.resize(self.locs.len(), 0);
        }
        id
    }

    /// Interns the non-atomic cell at `addr`.
    pub fn register_cell(&mut self, addr: usize, name: &'static str, val_hash: u64) -> usize {
        if let Some(&(_, id)) = self.addr_cells.iter().find(|(a, _)| *a == addr) {
            return id;
        }
        let id = self.cells.len();
        let n = self.threads.len();
        self.cells.push(CellMeta { name, last_write: None, read_vc: Vc::new(n), val_hash });
        self.addr_cells.push((addr, id));
        id
    }

    /// Location id registered at `addr`, if any (blocked-op
    /// enabledness checks).
    pub fn loc_by_addr(&self, addr: usize) -> Option<usize> {
        self.addr_locs.iter().find(|(a, _)| *a == addr).map(|&(_, id)| id)
    }

    /// The newest value of location `loc` (what an RMW would read).
    pub fn latest(&self, loc: usize) -> u64 {
        self.locs[loc].stores.last().expect("history never empty").val
    }

    /// History indices a load of `loc` by `tid` with `ord` may read from,
    /// oldest candidate first. Always non-empty (the newest store is
    /// always readable).
    pub fn load_candidates(&self, tid: usize, loc: usize, ord: Ordering) -> Vec<usize> {
        let stores = &self.locs[loc].stores;
        if matches!(ord, Ordering::SeqCst) {
            return vec![stores.len() - 1];
        }
        let t = &self.threads[tid];
        let mut floor = t.last_seen[loc];
        for s in stores {
            // A store that happens-before the load forbids reading
            // anything older than it.
            let hb = match s.writer {
                None => true,
                Some(w) => w == tid || t.vc.covers(w, s.writer_clock),
            };
            if hb {
                floor = floor.max(s.pos);
            }
        }
        (floor..stores.len()).collect()
    }

    /// Executes the read of candidate `pos` of `loc`, applying coherence
    /// and synchronization. Returns the value read.
    pub fn load_from(&mut self, tid: usize, loc: usize, pos: usize, ord: Ordering) -> u64 {
        let (val, rel_vc) = {
            let s = &self.locs[loc].stores[pos];
            (s.val, s.rel_vc.clone())
        };
        let t = &mut self.threads[tid];
        t.last_seen[loc] = t.last_seen[loc].max(pos);
        if let Some(rel) = rel_vc {
            if is_acquire(ord) {
                t.vc.join(&rel);
            } else {
                t.acq_stash.join(&rel);
            }
        }
        t.read_hist = mix(t.read_hist, mix(val, loc as u64));
        val
    }

    /// Appends a store of `val` to `loc` by `tid` with `ord`.
    pub fn store(&mut self, tid: usize, loc: usize, val: u64, ord: Ordering) {
        self.bump(tid);
        let t = &self.threads[tid];
        let rel_vc = if is_release(ord) {
            let mut vc = t.vc.clone();
            if let Some(f) = &t.rel_fence {
                vc.join(f);
            }
            Some(vc)
        } else {
            t.rel_fence.clone()
        };
        let pos = self.locs[loc].stores.len();
        let clock = t.vc.0[tid];
        self.locs[loc].stores.push(Store {
            val,
            pos,
            writer: Some(tid),
            writer_clock: clock,
            rel_vc,
        });
        self.threads[tid].last_seen[loc] = pos;
    }

    /// An atomic read-modify-write: reads the newest store (RMW
    /// atomicity), applies `f`, appends the result. Returns the old value.
    pub fn rmw(
        &mut self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let pos = self.locs[loc].stores.len() - 1;
        let old = self.load_from(tid, loc, pos, ord);
        self.store(tid, loc, f(old), ord);
        old
    }

    /// `compare_exchange`: RMW when the newest value equals `expect`, a
    /// plain newest-store load otherwise. Returns `(old, succeeded)`.
    pub fn cas(
        &mut self,
        tid: usize,
        loc: usize,
        expect: u64,
        new: u64,
        ord: Ordering,
    ) -> (u64, bool) {
        if self.latest(loc) == expect {
            (self.rmw(tid, loc, ord, |_| new), true)
        } else {
            let pos = self.locs[loc].stores.len() - 1;
            // Failed CAS is a load; acquire semantics at most.
            let fail_ord = if is_acquire(ord) { Ordering::Acquire } else { Ordering::Relaxed };
            (self.load_from(tid, loc, pos, fail_ord), false)
        }
    }

    /// A memory fence. `Relaxed` is a no-op (the mutation harness uses it
    /// as the "fence removed" state).
    pub fn fence(&mut self, tid: usize, ord: Ordering) {
        let t = &mut self.threads[tid];
        if is_acquire(ord) {
            let stash = t.acq_stash.clone();
            t.vc.join(&stash);
        }
        if is_release(ord) {
            let mut vc = t.vc.clone();
            if let Some(f) = &t.rel_fence {
                vc.join(f);
            }
            t.rel_fence = Some(vc);
        }
    }

    /// Race-checks a non-atomic read of cell `cell` by `tid`.
    pub fn cell_read(&mut self, tid: usize, cell: usize) -> Option<Race> {
        self.bump(tid);
        let t_vc = self.threads[tid].vc.clone();
        let c = &mut self.cells[cell];
        let race = c.last_write.and_then(|(w, clock)| {
            if w != tid && !t_vc.covers(w, clock) {
                Some(Race {
                    cell: c.name,
                    prior: format!("write by thread {w} (clock {clock})"),
                    access: format!("unsynchronized read by thread {tid}"),
                })
            } else {
                None
            }
        });
        c.read_vc.0[tid] = self.threads[tid].vc.0[tid];
        race
    }

    /// Race-checks a non-atomic write of cell `cell` by `tid`.
    pub fn cell_write(&mut self, tid: usize, cell: usize) -> Option<Race> {
        self.bump(tid);
        let t_vc = self.threads[tid].vc.clone();
        let c = &mut self.cells[cell];
        if let Some((w, clock)) = c.last_write {
            if w != tid && !t_vc.covers(w, clock) {
                return Some(Race {
                    cell: c.name,
                    prior: format!("write by thread {w} (clock {clock})"),
                    access: format!("unsynchronized write by thread {tid}"),
                });
            }
        }
        for (r, &clock) in c.read_vc.0.iter().enumerate() {
            if r != tid && clock > 0 && !t_vc.covers(r, clock) {
                return Some(Race {
                    cell: c.name,
                    prior: format!("read by thread {r} (clock {clock})"),
                    access: format!("unsynchronized write by thread {tid}"),
                });
            }
        }
        c.last_write = Some((tid, self.threads[tid].vc.0[tid]));
        c.read_vc = Vc::new(self.threads.len());
        c.val_hash = 0; // refreshed by the shim after the closure runs
        None
    }

    /// Records the post-write value hash of `cell` (state-hash input).
    pub fn set_cell_hash(&mut self, cell: usize, h: u64) {
        self.cells[cell].val_hash = h;
    }

    /// Folds the value a thread read from a cell into its local-state
    /// hash.
    pub fn note_cell_read(&mut self, tid: usize, h: u64) {
        let t = &mut self.threads[tid];
        t.read_hist = mix(t.read_hist, h);
    }

    /// Joins every model thread's clock into the finale pseudo-thread
    /// (`thread::join` edges), so finale reads see the final state and
    /// race-check clean.
    pub fn begin_finale(&mut self, finale_tid: usize) {
        let mut vc = self.threads[finale_tid].vc.clone();
        for t in &self.threads {
            vc.join(&t.vc);
        }
        self.threads[finale_tid].vc = vc;
    }

    fn bump(&mut self, tid: usize) {
        self.threads[tid].vc.0[tid] += 1;
    }

    /// Hashes the complete abstract state (histories, clocks, coherence
    /// floors, stashes, cell metadata, per-thread read histories). Two
    /// equal hashes ⇒ the continuations are identical, which is what
    /// makes prefix pruning sound (modulo the usual 64-bit collision
    /// caveat — pruning can be disabled per model).
    pub fn state_hash(&self, seed: u64) -> u64 {
        let mut h = seed;
        for loc in &self.locs {
            h = mix(h, loc.stores.len() as u64);
            for s in &loc.stores {
                h = mix(h, s.val);
                h = mix(h, s.writer.map_or(u64::MAX, |w| w as u64));
                h = mix(h, s.writer_clock as u64);
                match &s.rel_vc {
                    None => h = mix(h, 0x5eed),
                    Some(vc) => {
                        for &c in &vc.0 {
                            h = mix(h, c as u64);
                        }
                    }
                }
            }
        }
        for t in &self.threads {
            for &c in &t.vc.0 {
                h = mix(h, c as u64);
            }
            for &s in &t.last_seen {
                h = mix(h, s as u64);
            }
            for &c in &t.acq_stash.0 {
                h = mix(h, c as u64);
            }
            match &t.rel_fence {
                None => h = mix(h, 0xfe4ce),
                Some(vc) => {
                    for &c in &vc.0 {
                        h = mix(h, c as u64);
                    }
                }
            }
            h = mix(h, t.read_hist);
        }
        for c in &self.cells {
            h = mix(h, c.val_hash);
            h = mix(h, c.last_write.map_or(u64::MAX, |(w, cl)| ((w as u64) << 32) | cl as u64));
            for &r in &c.read_vc.0 {
                h = mix(h, r as u64);
            }
        }
        h
    }

    /// Hash of an ordering for op fingerprints.
    pub fn ord_hash(ord: Ordering) -> u64 {
        ord_code(ord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_loads_may_read_stale_but_coherence_holds() {
        let mut m = Memory::new(2);
        let l = m.register_loc(0x10, 0, "x");
        m.store(0, l, 1, Ordering::Relaxed);
        m.store(0, l, 2, Ordering::Relaxed);
        // Thread 1 has no ordering with thread 0: all three stores are
        // candidates.
        assert_eq!(m.load_candidates(1, l, Ordering::Relaxed), vec![0, 1, 2]);
        // Reading the middle store moves the coherence floor.
        m.load_from(1, l, 1, Ordering::Relaxed);
        assert_eq!(m.load_candidates(1, l, Ordering::Relaxed), vec![1, 2]);
        // The writer always reads its own newest store.
        assert_eq!(m.load_candidates(0, l, Ordering::Relaxed), vec![2]);
    }

    #[test]
    fn acquire_of_a_release_store_forces_freshness_elsewhere() {
        let mut m = Memory::new(2);
        let data = m.register_loc(0x10, 0, "data");
        let flag = m.register_loc(0x20, 0, "flag");
        m.store(0, data, 7, Ordering::Relaxed);
        m.store(0, flag, 1, Ordering::Release);
        // Thread 1 acquires the flag: the data store now happens-before
        // any later load, so the stale initial value is no longer
        // readable.
        let c = m.load_candidates(1, flag, Ordering::Acquire);
        m.load_from(1, flag, *c.last().expect("non-empty"), Ordering::Acquire);
        assert_eq!(m.load_candidates(1, data, Ordering::Relaxed), vec![1]);
    }

    #[test]
    fn relaxed_read_plus_acquire_fence_synchronizes() {
        let mut m = Memory::new(2);
        let data = m.register_loc(0x10, 0, "data");
        let flag = m.register_loc(0x20, 0, "flag");
        m.store(0, data, 7, Ordering::Relaxed);
        m.store(0, flag, 1, Ordering::Release);
        let c = m.load_candidates(1, flag, Ordering::Relaxed);
        m.load_from(1, flag, *c.last().expect("non-empty"), Ordering::Relaxed);
        // Without the fence the stale data value is still readable…
        assert_eq!(m.load_candidates(1, data, Ordering::Relaxed), vec![0, 1]);
        // …after an acquire fence it is not.
        m.fence(1, Ordering::Acquire);
        assert_eq!(m.load_candidates(1, data, Ordering::Relaxed), vec![1]);
    }

    #[test]
    fn release_fence_makes_later_relaxed_stores_carry_the_clock() {
        let mut m = Memory::new(2);
        let data = m.register_loc(0x10, 0, "data");
        let flag = m.register_loc(0x20, 0, "flag");
        m.store(0, data, 7, Ordering::Relaxed);
        m.fence(0, Ordering::Release);
        m.store(0, flag, 1, Ordering::Relaxed);
        let c = m.load_candidates(1, flag, Ordering::Acquire);
        m.load_from(1, flag, *c.last().expect("non-empty"), Ordering::Acquire);
        assert_eq!(m.load_candidates(1, data, Ordering::Relaxed), vec![1]);
    }

    #[test]
    fn rmw_reads_newest_and_unsynchronized_cells_race() {
        let mut m = Memory::new(2);
        let l = m.register_loc(0x10, 5, "ctr");
        m.store(0, l, 9, Ordering::Relaxed);
        assert_eq!(m.rmw(1, l, Ordering::Relaxed, |v| v + 1), 9);
        assert_eq!(m.latest(l), 10);

        let c = m.register_cell(0x30, "cell", 0);
        assert!(m.cell_write(0, c).is_none());
        let race = m.cell_write(1, c).expect("unsynchronized write-write races");
        assert_eq!(race.cell, "cell");
    }
}
