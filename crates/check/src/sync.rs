//! Instrumented drop-in replacements for `std::sync::atomic` and
//! `UnsafeCell`, the layer the checked crates compile against under
//! `--cfg symtensor_check`.
//!
//! Every type works in two modes, selected per call by whether the
//! calling thread is inside a model execution ([`crate::model::explore`]
//! sets a thread-local context):
//!
//! * **model mode** — the operation becomes a scheduling point and runs
//!   against the explorer's abstract [`crate::mem::Memory`] (store
//!   histories, vector clocks, race metadata);
//! * **passthrough mode** — the operation delegates to the real
//!   `std::sync::atomic` primitive with the requested ordering, so a
//!   `--cfg symtensor_check` build still behaves correctly outside the
//!   explorer (e.g. ordinary unit tests in the same binary).
//!
//! The one deliberate deviation: [`fence`]`(Ordering::Relaxed)` is a
//! no-op instead of a panic. The mutation harness weakens orderings to
//! `Relaxed` one slot at a time, and for a fence slot "weakened to
//! Relaxed" *means* "fence removed".

use std::cell::UnsafeCell;
use std::hash::{DefaultHasher, Hash, Hasher};
pub use std::sync::atomic::Ordering;

use crate::model;

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Memory fence. In model mode this is a first-class fence event in the
/// abstract memory; in passthrough mode it is `std::sync::atomic::fence`
/// except that `Relaxed` is a no-op (see module docs).
pub fn fence(ord: Ordering) {
    if let Some(ctx) = model::current() {
        ctx.op_fence(ord);
    } else if ord != Ordering::Relaxed {
        std::sync::atomic::fence(ord);
    }
}

macro_rules! int_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Instrumented atomic integer (see module docs for the two
        /// modes).
        #[derive(Debug)]
        pub struct $name {
            inner: $std,
            name: &'static str,
        }

        impl $name {
            /// New anonymous atomic (drop-in for the std constructor).
            pub const fn new(v: $prim) -> Self {
                Self { inner: <$std>::new(v), name: stringify!($name) }
            }

            /// New atomic labelled for model traces and race reports.
            pub const fn named(v: $prim, name: &'static str) -> Self {
                Self { inner: <$std>::new(v), name }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            fn init(&self) -> u64 {
                // In model mode `inner` is never mutated, so it still
                // holds the construction-time value: the seed for the
                // abstract store history.
                self.inner.load(Ordering::Relaxed) as u64
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                match model::current() {
                    Some(ctx) => ctx.op_load(self.addr(), self.init(), self.name, ord) as $prim,
                    None => self.inner.load(ord),
                }
            }

            /// Atomic store.
            pub fn store(&self, val: $prim, ord: Ordering) {
                match model::current() {
                    Some(ctx) => ctx.op_store(self.addr(), self.init(), self.name, val as u64, ord),
                    None => self.inner.store(val, ord),
                }
            }

            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                match model::current() {
                    Some(ctx) => ctx.op_rmw(self.addr(), self.init(), self.name, ord, |v| {
                        (v as $prim).wrapping_add(val) as u64
                    }) as $prim,
                    None => self.inner.fetch_add(val, ord),
                }
            }

            /// Atomic subtract; returns the previous value.
            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                match model::current() {
                    Some(ctx) => ctx.op_rmw(self.addr(), self.init(), self.name, ord, |v| {
                        (v as $prim).wrapping_sub(val) as u64
                    }) as $prim,
                    None => self.inner.fetch_sub(val, ord),
                }
            }

            /// Atomic minimum; returns the previous value.
            pub fn fetch_min(&self, val: $prim, ord: Ordering) -> $prim {
                match model::current() {
                    Some(ctx) => ctx.op_rmw(self.addr(), self.init(), self.name, ord, |v| {
                        (v as $prim).min(val) as u64
                    }) as $prim,
                    None => self.inner.fetch_min(val, ord),
                }
            }

            /// Atomic maximum; returns the previous value.
            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                match model::current() {
                    Some(ctx) => ctx.op_rmw(self.addr(), self.init(), self.name, ord, |v| {
                        (v as $prim).max(val) as u64
                    }) as $prim,
                    None => self.inner.fetch_max(val, ord),
                }
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                match model::current() {
                    Some(ctx) => ctx
                        .op_rmw(self.addr(), self.init(), self.name, ord, |_| val as u64)
                        as $prim,
                    None => self.inner.swap(val, ord),
                }
            }

            /// Compare-and-exchange with std semantics.
            pub fn compare_exchange(
                &self,
                expect: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match model::current() {
                    Some(ctx) => {
                        let (old, ok) = ctx.op_cas(
                            self.addr(),
                            self.init(),
                            self.name,
                            expect as u64,
                            new as u64,
                            success,
                        );
                        if ok {
                            Ok(old as $prim)
                        } else {
                            Err(old as $prim)
                        }
                    }
                    None => self.inner.compare_exchange(expect, new, success, failure),
                }
            }

            /// Blocking compare-and-swap, for models only: the calling
            /// model thread is descheduled until the value equals
            /// `expect`, then swaps in `new` atomically. In passthrough
            /// mode this is a CAS spin loop.
            pub fn cas_or_block(&self, expect: $prim, new: $prim, ord: Ordering) {
                match model::current() {
                    Some(ctx) => ctx.op_cas_block(
                        self.addr(),
                        self.init(),
                        self.name,
                        expect as u64,
                        new as u64,
                        ord,
                    ),
                    None => {
                        while self
                            .inner
                            .compare_exchange(expect, new, ord, Ordering::Relaxed)
                            .is_err()
                        {
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }
    };
}

int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Instrumented atomic boolean (see module docs for the two modes).
#[derive(Debug)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
    name: &'static str,
}

impl AtomicBool {
    /// New anonymous atomic (drop-in for the std constructor).
    pub const fn new(v: bool) -> Self {
        Self { inner: std::sync::atomic::AtomicBool::new(v), name: "AtomicBool" }
    }

    /// New atomic labelled for model traces and race reports.
    pub const fn named(v: bool, name: &'static str) -> Self {
        Self { inner: std::sync::atomic::AtomicBool::new(v), name }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn init(&self) -> u64 {
        self.inner.load(Ordering::Relaxed) as u64
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        match model::current() {
            Some(ctx) => ctx.op_load(self.addr(), self.init(), self.name, ord) != 0,
            None => self.inner.load(ord),
        }
    }

    /// Atomic store.
    pub fn store(&self, val: bool, ord: Ordering) {
        match model::current() {
            Some(ctx) => ctx.op_store(self.addr(), self.init(), self.name, val as u64, ord),
            None => self.inner.store(val, ord),
        }
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match model::current() {
            Some(ctx) => ctx.op_rmw(self.addr(), self.init(), self.name, ord, |_| val as u64) != 0,
            None => self.inner.swap(val, ord),
        }
    }

    /// Compare-and-exchange with std semantics.
    pub fn compare_exchange(
        &self,
        expect: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match model::current() {
            Some(ctx) => {
                let (old, ok) = ctx.op_cas(
                    self.addr(),
                    self.init(),
                    self.name,
                    expect as u64,
                    new as u64,
                    success,
                );
                if ok {
                    Ok(old != 0)
                } else {
                    Err(old != 0)
                }
            }
            None => self.inner.compare_exchange(expect, new, success, failure),
        }
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

/// Instrumented `UnsafeCell`: non-atomic data whose accesses the
/// vector-clock race detector checks in model mode. The loom-style
/// closure API (`with`/`with_mut`) keeps borrows scoped to one access.
///
/// `Sync` is sound here because model execution is fully serialized
/// (one thread holds the scheduler token at a time) and the race
/// detector rejects any execution in which two threads could touch the
/// cell unsynchronized; passthrough mode is single-threaded use only.
#[derive(Debug)]
pub struct UnsafeCellShim<T> {
    inner: UnsafeCell<T>,
    name: &'static str,
}

// ordering: not an ordering — see the type docs for the Sync argument.
unsafe impl<T: Send> Sync for UnsafeCellShim<T> {}

impl<T: Hash> UnsafeCellShim<T> {
    /// New anonymous cell.
    pub const fn new(v: T) -> Self {
        Self { inner: UnsafeCell::new(v), name: "UnsafeCellShim" }
    }

    /// New cell labelled for race reports.
    pub const fn named(v: T, name: &'static str) -> Self {
        Self { inner: UnsafeCell::new(v), name }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Shared read access. In model mode the read is race-checked and
    /// the observed value folded into the thread's local-state hash.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        // Token serialization makes the shared reference sound in model
        // mode; passthrough is single-threaded.
        let r = unsafe { &*self.inner.get() };
        if let Some(ctx) = model::current() {
            ctx.op_cell_read(self.addr(), self.name, hash_of(r));
        }
        f(r)
    }

    /// Exclusive write access, race-checked in model mode.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        match model::current() {
            Some(ctx) => {
                let before = unsafe { hash_of(&*self.inner.get()) };
                let cell = ctx.op_cell_write_begin(self.addr(), self.name, before);
                let r = f(unsafe { &mut *self.inner.get() });
                let after = unsafe { hash_of(&*self.inner.get()) };
                ctx.op_cell_write_end(cell, after);
                r
            }
            None => f(unsafe { &mut *self.inner.get() }),
        }
    }
}
