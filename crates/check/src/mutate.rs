//! Mutation testing of the checker itself.
//!
//! Each model's memory orderings live in a named-slot table
//! ([`Orderings`]) instead of being hard-coded, so the harness can
//! weaken one slot at a time to `Relaxed` — which for a fence slot means
//! "fence removed" — and re-run the explorer. A weakening is **killed**
//! when the explorer reports a violation (torn read, data race,
//! broken invariant). The kill rate over all weakenings measures the
//! checker's sensitivity: a checker that passes a too-weak protocol is
//! worse than no checker, because it launders broken code as "verified".

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::model::{self, Config, ModelRun, Outcome};

/// A named table of memory orderings, the mutation surface of a model.
#[derive(Clone, Debug)]
pub struct Orderings {
    slots: Vec<(&'static str, Ordering)>,
}

impl Orderings {
    /// Table with the given (slot, default) pairs — the correct protocol.
    pub fn new(defaults: &[(&'static str, Ordering)]) -> Self {
        Orderings { slots: defaults.to_vec() }
    }

    /// The ordering currently assigned to `slot`. Unknown slots are a
    /// model-definition bug and abort the execution.
    pub fn get(&self, slot: &str) -> Ordering {
        self.slots
            .iter()
            .find(|(s, _)| *s == slot)
            .map(|&(_, o)| o)
            .unwrap_or_else(|| panic!("model references unknown ordering slot `{slot}`"))
    }

    /// A copy with `slot` weakened to `Relaxed` (fence slots: removed).
    pub fn weaken(&self, slot: &str) -> Self {
        let mut out = self.clone();
        for (s, o) in &mut out.slots {
            if *s == slot {
                *o = Ordering::Relaxed;
            }
        }
        out
    }

    /// Slots whose default is stronger than `Relaxed` — the mutation
    /// candidates.
    pub fn mutable_slots(&self) -> Vec<(&'static str, Ordering)> {
        self.slots.iter().copied().filter(|&(_, o)| o != Ordering::Relaxed).collect()
    }
}

/// One model plus its correct ordering table and a per-execution state
/// factory.
pub struct ModelDef {
    /// Model name, used in reports.
    pub name: &'static str,
    /// The correct protocol's ordering table.
    pub orderings: Orderings,
    /// Builds fresh model state for one execution under the given table.
    pub build: fn(Orderings) -> Arc<dyn ModelRun>,
}

impl ModelDef {
    /// Explores the model under its correct orderings.
    pub fn explore(&self, cfg: &Config) -> Outcome {
        self.explore_with(self.orderings.clone(), cfg)
    }

    fn explore_with(&self, o: Orderings, cfg: &Config) -> Outcome {
        let build = self.build;
        model::explore(self.name, cfg, &move || build(o.clone()))
    }
}

/// One weakened-slot run.
#[derive(Clone, Debug)]
pub struct MutationRun {
    /// The model the slot belongs to.
    pub model: &'static str,
    /// The weakened slot.
    pub slot: &'static str,
    /// The ordering it was weakened from.
    pub from: Ordering,
    /// Whether the explorer caught the seeded bug.
    pub killed: bool,
    /// The violation that killed it, rendered for the report.
    pub violation: Option<String>,
    /// Interleavings explored before the verdict.
    pub interleavings: u64,
}

/// Sweep results across every mutable slot of every model.
#[derive(Clone, Debug, Default)]
pub struct MutationReport {
    /// All runs, in sweep order.
    pub runs: Vec<MutationRun>,
}

impl MutationReport {
    /// Total weakenings attempted.
    pub fn total(&self) -> usize {
        self.runs.len()
    }

    /// Weakenings the explorer caught.
    pub fn killed(&self) -> usize {
        self.runs.iter().filter(|r| r.killed).count()
    }

    /// killed / total in [0, 1]; 1.0 for an empty sweep.
    pub fn kill_rate(&self) -> f64 {
        if self.runs.is_empty() {
            1.0
        } else {
            self.killed() as f64 / self.total() as f64
        }
    }

    /// Runs the explorer failed to kill — each one is a blind spot.
    pub fn survivors(&self) -> Vec<&MutationRun> {
        self.runs.iter().filter(|r| !r.killed).collect()
    }
}

/// Weakens every mutable slot of every model, one at a time, and
/// records whether the explorer caught each seeded bug.
pub fn sweep(defs: &[ModelDef], cfg: &Config) -> MutationReport {
    let mut report = MutationReport::default();
    for def in defs {
        for (slot, from) in def.orderings.mutable_slots() {
            let outcome = def.explore_with(def.orderings.weaken(slot), cfg);
            report.runs.push(MutationRun {
                model: def.name,
                slot,
                from,
                killed: outcome.violation.is_some(),
                violation: outcome.violation.as_ref().map(|v| v.to_string()),
                interleavings: outcome.interleavings,
            });
        }
    }
    report
}
