//! The deterministic schedule explorer.
//!
//! Loom-style stateless model checking on real OS threads: exactly one
//! model thread runs at a time (a token handed over under a
//! `Mutex`+`Condvar`), every shim operation is a scheduling point, and
//! every nondeterministic decision — which thread runs next, which store
//! a weak load reads — is recorded on a **trail**. After an execution
//! terminates, the explorer backtracks to the deepest decision with an
//! unexplored alternative and replays the prefix as a **script**,
//! guaranteeing a depth-first enumeration of the whole schedule tree.
//!
//! Three bounding devices keep exploration finite and fast:
//!
//! * **state-hash pruning** — once past the scripted prefix, a state
//!   whose full abstract hash (store histories, clocks, thread locals,
//!   statuses) was already visited freezes the rest of the run to a
//!   single default path; the first visit's subtree already covers every
//!   continuation (64-bit collision caveat: pruning can be disabled);
//! * **preemption bounding** — an optional cap on involuntary context
//!   switches, the classic CHESS-style bound;
//! * **op budget** — a hard per-execution operation cap that converts a
//!   runaway model loop into a reported violation instead of a hang.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::Instant;

use crate::mem::{Memory, Race};

/// Exploration limits. The defaults are sized for the in-repo primitive
/// models (two/three threads, a handful of ops each).
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum involuntary context switches per execution; `None` is
    /// fully exhaustive.
    pub preemption_bound: Option<u32>,
    /// Enable state-hash pruning.
    pub prune: bool,
    /// Hard cap on executions; hitting it sets [`Outcome::capped`].
    pub max_execs: u64,
    /// Hard cap on shim operations per execution.
    pub op_budget: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { preemption_bound: None, prune: true, max_execs: 250_000, op_budget: 4_000 }
    }
}

/// One recorded nondeterministic decision: `chosen` out of `n`
/// alternatives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Number of alternatives at this point.
    pub n: u32,
    /// Index taken.
    pub chosen: u32,
    /// Decision site fingerprint (`tid * 8 + kind`), used to detect
    /// replay drift: a scripted decision replayed at a different site
    /// means the execution is not deterministic and the whole DFS is
    /// invalid.
    pub site: u32,
}

/// Why an execution was rejected.
#[derive(Clone, Debug)]
pub enum Violation {
    /// A model assertion (or any panic in model code) fired.
    Assert(String),
    /// The vector-clock detector found a data race on a non-atomic cell.
    Race {
        /// The racy cell's label.
        cell: String,
        /// The earlier access.
        prior: String,
        /// The racing access.
        access: String,
    },
    /// Every live thread is blocked on a disabled operation.
    Deadlock(String),
    /// An execution exceeded [`Config::op_budget`].
    OpBudget(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Assert(m) => write!(f, "assertion failed: {m}"),
            Violation::Race { cell, prior, access } => {
                write!(f, "data race on `{cell}`: {access} races {prior}")
            }
            Violation::Deadlock(m) => write!(f, "deadlock: {m}"),
            Violation::OpBudget(m) => write!(f, "op budget exceeded: {m}"),
        }
    }
}

/// Result of exploring one model.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Model name.
    pub name: String,
    /// Distinct complete executions (interleavings) explored.
    pub interleavings: u64,
    /// Executions cut short by state-hash pruning.
    pub pruned: u64,
    /// True when `max_execs` stopped exploration before exhaustion.
    pub capped: bool,
    /// First violation found, if any; `None` means every explored
    /// interleaving satisfied the model's invariants.
    pub violation: Option<Violation>,
    /// The decision trail of the violating execution (for reproduction).
    pub schedule: Vec<Decision>,
    /// Wall time of the exploration.
    pub wall_ms: u64,
}

impl Outcome {
    /// True when exploration finished with no violation.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// One model: fresh shared state per execution, a body per thread, and a
/// post-join finale that asserts the terminal state.
pub trait ModelRun: Send + Sync + 'static {
    /// Number of model threads.
    fn threads(&self) -> usize;
    /// Body of thread `tid`. Runs under the scheduler; every shim op is
    /// a scheduling point. Plain `assert!` failures become
    /// [`Violation::Assert`].
    fn thread(&self, tid: usize);
    /// Runs after all threads joined, with full visibility of the final
    /// state (the pseudo-thread's clock is the join of all threads').
    fn finale(&self) {}
}

#[derive(Clone, Copy, Debug)]
enum TState {
    Ready,
    Blocked { addr: usize, expect: u64 },
    Done,
}

struct ExecState {
    mem: Memory,
    status: Vec<TState>,
    active: usize,
    announced: usize,
    running: usize,
    done: bool,
    aborting: bool,
    violation: Option<Violation>,
    script: Vec<Decision>,
    cursor: usize,
    trail: Vec<Decision>,
    frozen: bool,
    preemptions: u32,
    ops: u32,
    /// Per-thread executed-op counts: the program-counter proxy folded
    /// into the pruning hash. Two states with equal memory but different
    /// thread progress are NOT the same state.
    thread_ops: Vec<u32>,
    cfg: Config,
    seen: Arc<Mutex<HashSet<u64>>>,
}

struct Shared {
    st: Mutex<ExecState>,
    cv: Condvar,
}

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts; never reported as an assertion failure.
struct AbortToken;

/// Per-thread handle linking shim operations to the active execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The shim's entry point: `Some` inside a model execution, `None` in
/// passthrough mode.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Installs a panic hook (once per process) that silences panics raised
/// inside model threads — expected under mutation testing — while
/// delegating everything else to the previous hook.
fn quiet_model_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                prev(info);
            }
        }));
    });
}

fn hash_one<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl ExecState {
    fn enabled(&self, tid: usize) -> bool {
        match self.status[tid] {
            TState::Ready => true,
            TState::Done => false,
            TState::Blocked { addr, expect } => match self.mem.loc_by_addr(addr) {
                // Unregistered means the thread has not yet executed its
                // first attempt; let it run once to register.
                None => true,
                Some(loc) => self.mem.latest(loc) == expect,
            },
        }
    }

    /// Takes (or records) one decision with `n` alternatives at decision
    /// site `site`.
    fn choose(&mut self, n: usize, site: u32) -> usize {
        let d = if self.cursor < self.script.len() {
            let mut d = self.script[self.cursor];
            self.cursor += 1;
            assert_eq!(
                (d.n, d.site),
                (n as u32, site),
                "nondeterministic replay: decision {} drifted",
                self.cursor - 1
            );
            d.site = site;
            d
        } else if self.frozen {
            Decision { n: 1, chosen: 0, site }
        } else {
            Decision { n: n as u32, chosen: 0, site }
        };
        if std::env::var_os("SYMCHECK_TRACE").is_some() {
            eprintln!(
                "  [{}] n={} site={} chosen={}{}",
                self.trail.len(),
                d.n,
                d.site,
                d.chosen,
                if self.cursor > 0 && self.trail.len() < self.script.len() {
                    " (scripted)"
                } else {
                    ""
                }
            );
        }
        self.trail.push(d);
        d.chosen as usize
    }

    /// State-hash pruning: freeze the rest of the run when the full
    /// abstract state has been visited before (fresh territory only).
    fn maybe_prune(&mut self) {
        if !self.cfg.prune || self.frozen || self.cursor < self.script.len() {
            return;
        }
        let mut seed = u64::from(self.preemptions).wrapping_add(1);
        seed = seed.rotate_left(11) ^ (self.active as u64 + 0x9e37);
        for &c in &self.thread_ops {
            seed = seed.rotate_left(13) ^ u64::from(c).wrapping_mul(0x9e3779b97f4a7c15);
        }
        for s in &self.status {
            let code = match s {
                TState::Ready => 1u64,
                TState::Done => 2,
                TState::Blocked { addr, expect } => hash_one(&(3u64, *addr as u64, *expect)),
            };
            seed = seed.rotate_left(7) ^ code;
        }
        let h = self.mem.state_hash(seed);
        let mut seen = self.seen.lock().unwrap_or_else(|p| p.into_inner());
        if !seen.insert(h) {
            self.frozen = true;
        }
    }

    /// Picks the next thread to run. `current` is the caller when its
    /// own pending op is a legal continuation.
    fn pick_next(&mut self) -> Result<usize, ()> {
        let cur = self.active;
        // Before the first op the initial pick is free: starting with
        // any thread is not a preemption of thread 0.
        let cur_enabled = self.ops > 0 && self.enabled(cur);
        self.maybe_prune();
        let mut alts: Vec<usize> = (0..self.status.len()).filter(|&i| self.enabled(i)).collect();
        if let Some(bound) = self.cfg.preemption_bound {
            if cur_enabled && self.preemptions >= bound {
                alts = vec![cur];
            }
        }
        if alts.is_empty() {
            return Err(());
        }
        let site = self.active as u32 * 8;
        let k = self.choose(alts.len(), site);
        let next = alts[k];
        if cur_enabled && next != cur {
            self.preemptions += 1;
        }
        self.active = next;
        Ok(next)
    }

    fn blocked_summary(&self) -> String {
        let parts: Vec<String> = self
            .status
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                TState::Blocked { addr, expect } => {
                    let name = self
                        .mem
                        .loc_by_addr(*addr)
                        .map_or("<unregistered>", |l| self.mem.locs[l].name);
                    Some(format!("thread {i} blocked on `{name}` == {expect}"))
                }
                _ => None,
            })
            .collect();
        parts.join("; ")
    }
}

impl Ctx {
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.shared.st.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn abort(&self, mut st: MutexGuard<'_, ExecState>, v: Violation) -> ! {
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        st.aborting = true;
        self.shared.cv.notify_all();
        drop(st);
        panic::panic_any(AbortToken);
    }

    /// Scheduling point: announce the pending op, pick the next runner,
    /// park until granted.
    fn sched(&self, pending: TState) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.ops += 1;
        st.thread_ops[self.tid] += 1;
        if st.ops > st.cfg.op_budget {
            let budget = st.cfg.op_budget;
            self.abort(
                st,
                Violation::OpBudget(format!(
                    "execution exceeded {budget} shim operations (unbounded model loop?)"
                )),
            );
        }
        st.status[self.tid] = pending;
        match st.pick_next() {
            Err(()) => {
                let msg = st.blocked_summary();
                self.abort(st, Violation::Deadlock(msg));
            }
            Ok(next) => {
                if next == self.tid {
                    return;
                }
                self.shared.cv.notify_all();
                while st.active != self.tid && !st.aborting {
                    st = self.shared.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                if st.aborting {
                    drop(st);
                    panic::panic_any(AbortToken);
                }
            }
        }
    }

    fn race_abort(&self, st: MutexGuard<'_, ExecState>, r: Race) -> ! {
        self.abort(
            st,
            Violation::Race { cell: r.cell.to_string(), prior: r.prior, access: r.access },
        );
    }

    // --- operations called by the sync shim ---------------------------

    pub(crate) fn op_load(&self, addr: usize, init: u64, name: &'static str, ord: Ordering) -> u64 {
        self.sched(TState::Ready);
        let mut st = self.lock();
        let loc = st.mem.register_loc(addr, init, name);
        let cands = st.mem.load_candidates(self.tid, loc, ord);
        let site = self.tid as u32 * 8 + 1;
        let k = if cands.len() > 1 { st.choose(cands.len(), site) } else { 0 };
        st.mem.load_from(self.tid, loc, cands[k], ord)
    }

    pub(crate) fn op_store(
        &self,
        addr: usize,
        init: u64,
        name: &'static str,
        val: u64,
        ord: Ordering,
    ) {
        self.sched(TState::Ready);
        let mut st = self.lock();
        let loc = st.mem.register_loc(addr, init, name);
        st.mem.store(self.tid, loc, val, ord);
    }

    pub(crate) fn op_rmw(
        &self,
        addr: usize,
        init: u64,
        name: &'static str,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        self.sched(TState::Ready);
        let mut st = self.lock();
        let loc = st.mem.register_loc(addr, init, name);
        st.mem.rmw(self.tid, loc, ord, f)
    }

    pub(crate) fn op_cas(
        &self,
        addr: usize,
        init: u64,
        name: &'static str,
        expect: u64,
        new: u64,
        ord: Ordering,
    ) -> (u64, bool) {
        self.sched(TState::Ready);
        let mut st = self.lock();
        let loc = st.mem.register_loc(addr, init, name);
        st.mem.cas(self.tid, loc, expect, new, ord)
    }

    /// Blocking compare-and-swap: the thread is disabled (never
    /// scheduled) until the location's newest value equals `expect`.
    /// This is how models express "spin until the lock frees" without
    /// unbounded spin schedules.
    pub(crate) fn op_cas_block(
        &self,
        addr: usize,
        init: u64,
        name: &'static str,
        expect: u64,
        new: u64,
        ord: Ordering,
    ) {
        loop {
            self.sched(TState::Blocked { addr, expect });
            let mut st = self.lock();
            let loc = st.mem.register_loc(addr, init, name);
            if st.mem.latest(loc) == expect {
                st.mem.rmw(self.tid, loc, ord, |_| new);
                return;
            }
            // First attempt before registration: loop to re-block with
            // accurate enabledness.
        }
    }

    pub(crate) fn op_fence(&self, ord: Ordering) {
        self.sched(TState::Ready);
        let mut st = self.lock();
        st.mem.fence(self.tid, ord);
    }

    pub(crate) fn op_cell_read(&self, addr: usize, name: &'static str, val_hash: u64) {
        self.sched(TState::Ready);
        let mut st = self.lock();
        let cell = st.mem.register_cell(addr, name, val_hash);
        if let Some(r) = st.mem.cell_read(self.tid, cell) {
            self.race_abort(st, r);
        }
        st.mem.note_cell_read(self.tid, val_hash);
    }

    pub(crate) fn op_cell_write_begin(
        &self,
        addr: usize,
        name: &'static str,
        val_hash: u64,
    ) -> usize {
        self.sched(TState::Ready);
        let mut st = self.lock();
        let cell = st.mem.register_cell(addr, name, val_hash);
        if let Some(r) = st.mem.cell_write(self.tid, cell) {
            self.race_abort(st, r);
        }
        cell
    }

    pub(crate) fn op_cell_write_end(&self, cell: usize, val_hash: u64) {
        let mut st = self.lock();
        st.mem.set_cell_hash(cell, val_hash);
    }
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with a non-string payload".to_string()
    }
}

struct FinaleGuard;

impl Drop for FinaleGuard {
    fn drop(&mut self) {
        set_ctx(None);
    }
}

fn run_once(
    cfg: &Config,
    run: &Arc<dyn ModelRun>,
    script: Vec<Decision>,
    seen: &Arc<Mutex<HashSet<u64>>>,
) -> (Vec<Decision>, Option<Violation>, bool) {
    let n = run.threads();
    let shared = Arc::new(Shared {
        st: Mutex::new(ExecState {
            mem: Memory::new(n),
            // Slot `n` is the finale pseudo-thread: Done until the
            // finale phase so the scheduler never picks it early.
            status: (0..=n).map(|i| if i < n { TState::Ready } else { TState::Done }).collect(),
            // `active` starts on the finale pseudo-slot so that *no*
            // model thread's park condition (`active == tid`) holds
            // until the initial pick below grants the token. Starting at
            // 0 would let thread 0 skip the park and race the scheduler.
            active: n,
            announced: 0,
            running: n,
            done: false,
            aborting: false,
            violation: None,
            script,
            cursor: 0,
            trail: Vec::new(),
            frozen: false,
            preemptions: 0,
            ops: 0,
            thread_ops: vec![0; n + 1],
            cfg: cfg.clone(),
            seen: Arc::clone(seen),
        }),
        cv: Condvar::new(),
    });

    let handles: Vec<_> = (0..n)
        .map(|tid| {
            let shared = Arc::clone(&shared);
            let run = Arc::clone(run);
            std::thread::spawn(move || {
                let ctx = Ctx { shared: Arc::clone(&shared), tid };
                set_ctx(Some(ctx.clone()));
                // Announce and park until the scheduler grants the token.
                {
                    let mut st = ctx.lock();
                    st.announced += 1;
                    shared.cv.notify_all();
                    while st.active != tid && !st.aborting {
                        st = shared.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                    }
                    if st.aborting {
                        drop(st);
                        panic::panic_any(AbortToken);
                    }
                }
                let r = panic::catch_unwind(AssertUnwindSafe(|| run.thread(tid)));
                match r {
                    Ok(()) => {
                        // Retire and hand the token onward.
                        let mut st = ctx.lock();
                        st.status[tid] = TState::Done;
                        st.running -= 1;
                        if st.running == 0 {
                            st.done = true;
                            shared.cv.notify_all();
                            return;
                        }
                        match st.pick_next() {
                            Err(()) => {
                                let msg = st.blocked_summary();
                                ctx.abort(st, Violation::Deadlock(msg));
                            }
                            Ok(_) => shared.cv.notify_all(),
                        }
                    }
                    Err(p) => {
                        if p.downcast_ref::<AbortToken>().is_some() {
                            return;
                        }
                        let msg = payload_msg(p.as_ref());
                        let st = ctx.lock();
                        ctx.abort(st, Violation::Assert(msg));
                    }
                }
            })
        })
        .collect();

    // Wait for all threads to announce, then make the initial pick.
    {
        let mut st = shared.st.lock().unwrap_or_else(|p| p.into_inner());
        while st.announced < n {
            st = shared.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        // `active` is the finale pseudo-slot here, and `ops == 0` keeps
        // pick_next from consulting it, so the first choice is a free
        // pick among all (Ready) model threads.
        match st.pick_next() {
            Err(()) => unreachable!("all threads start enabled"),
            Ok(_) => shared.cv.notify_all(),
        }
        while !st.done && !st.aborting {
            st = shared.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
    for h in handles {
        let _ = h.join();
    }

    let mut violation = {
        let st = shared.st.lock().unwrap_or_else(|p| p.into_inner());
        st.violation.clone()
    };

    // Finale: runs on this thread as pseudo-thread `n` with join edges
    // from every model thread.
    if violation.is_none() {
        let ctx = Ctx { shared: Arc::clone(&shared), tid: n };
        {
            let mut st = ctx.lock();
            st.status[n] = TState::Ready;
            st.active = n;
            st.mem.begin_finale(n);
        }
        set_ctx(Some(ctx));
        let _guard = FinaleGuard;
        let r = panic::catch_unwind(AssertUnwindSafe(|| run.finale()));
        drop(_guard);
        if let Err(p) = r {
            let st = shared.st.lock().unwrap_or_else(|pe| pe.into_inner());
            violation = st.violation.clone();
            drop(st);
            if violation.is_none() && p.downcast_ref::<AbortToken>().is_none() {
                violation = Some(Violation::Assert(payload_msg(p.as_ref())));
            }
        }
    }

    let st = shared.st.lock().unwrap_or_else(|p| p.into_inner());
    (st.trail.clone(), violation, st.frozen)
}

/// Depth-first exploration of every schedule of `mk`'s model under
/// `cfg`. `mk` is called once per execution and must return fresh state.
pub fn explore(name: &str, cfg: &Config, mk: &dyn Fn() -> Arc<dyn ModelRun>) -> Outcome {
    quiet_model_panics();
    let start = Instant::now();
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let mut script: Vec<Decision> = Vec::new();
    let mut interleavings = 0u64;
    let mut pruned = 0u64;
    let mut capped = false;

    loop {
        if std::env::var_os("SYMCHECK_TRACE").is_some() {
            eprintln!(
                "=== exec {} script={:?}",
                interleavings,
                script.iter().map(|d| (d.n, d.site, d.chosen)).collect::<Vec<_>>()
            );
        }
        let run = mk();
        let (trail, violation, frozen) = run_once(cfg, &run, script.clone(), &seen);
        interleavings += 1;
        if frozen {
            pruned += 1;
        }
        if violation.is_some() {
            return Outcome {
                name: name.to_string(),
                interleavings,
                pruned,
                capped,
                violation,
                schedule: trail,
                wall_ms: start.elapsed().as_millis() as u64,
            };
        }
        // Backtrack: deepest decision with an unexplored alternative.
        let next = (0..trail.len()).rev().find(|&i| trail[i].chosen + 1 < trail[i].n);
        match next {
            None => break,
            Some(i) => {
                script = trail[..i].to_vec();
                script.push(Decision {
                    n: trail[i].n,
                    chosen: trail[i].chosen + 1,
                    site: trail[i].site,
                });
            }
        }
        if interleavings >= cfg.max_execs {
            capped = true;
            break;
        }
    }

    Outcome {
        name: name.to_string(),
        interleavings,
        pruned,
        capped,
        violation: None,
        schedule: Vec::new(),
        wall_ms: start.elapsed().as_millis() as u64,
    }
}
