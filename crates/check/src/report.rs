//! The `symtensor-check-v1` artifact: one JSON document bundling the
//! model-check outcomes, the race-demo verdict, the mutation sweep, and
//! the lint findings. Emitted as text here (this crate is
//! dependency-free by design); parsed and contract-checked on the other
//! side by `obs::json::parse` + `obs::schema::validate`, like every
//! other artifact the workspace writes.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::lint::Finding;
use crate::model::Outcome;
use crate::mutate::MutationReport;

/// Everything one checker run produced.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Per-model exploration outcomes (correct orderings).
    pub models: Vec<Outcome>,
    /// The deliberate-race demo outcome, when run.
    pub race_demo: Option<Outcome>,
    /// The ordering-weakening sweep, when run.
    pub mutation: Option<MutationReport>,
    /// Lint findings over the workspace, when run.
    pub lint: Vec<Finding>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ord_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "Unknown",
    }
}

impl CheckReport {
    /// True when every section is clean: all models pass, the race demo
    /// (if run) detected its race, no mutation survivors, no lint
    /// findings.
    pub fn clean(&self) -> bool {
        self.models.iter().all(Outcome::passed)
            && self.race_demo.as_ref().is_none_or(|o| o.violation.is_some())
            && self.mutation.as_ref().is_none_or(|m| m.survivors().is_empty())
            && self.lint.is_empty()
    }

    /// Renders the `symtensor-check-v1` JSON document.
    pub fn to_json_string(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"version\":\"symtensor-check-v1\",\"models\":[");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"interleavings\":{},\"pruned\":{},\"capped\":{},\"wall_ms\":{},\"violations\":{},\"violation\":{}}}",
                esc(&m.name),
                m.interleavings,
                m.pruned,
                m.capped,
                m.wall_ms,
                u64::from(m.violation.is_some()),
                match &m.violation {
                    None => "null".to_string(),
                    Some(v) => format!("\"{}\"", esc(&v.to_string())),
                },
            );
        }
        s.push(']');

        if let Some(demo) = &self.race_demo {
            let _ = write!(
                s,
                ",\"race_demo\":{{\"name\":\"{}\",\"detected\":{},\"interleavings\":{}}}",
                esc(&demo.name),
                demo.violation.is_some(),
                demo.interleavings,
            );
        }

        if let Some(m) = &self.mutation {
            let _ = write!(
                s,
                ",\"mutation\":{{\"total\":{},\"killed\":{},\"kill_rate\":{:.4},\"runs\":[",
                m.total(),
                m.killed(),
                m.kill_rate(),
            );
            for (i, r) in m.runs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"model\":\"{}\",\"slot\":\"{}\",\"from\":\"{}\",\"killed\":{},\"interleavings\":{}}}",
                    esc(r.model),
                    esc(r.slot),
                    ord_name(r.from),
                    r.killed,
                    r.interleavings,
                );
            }
            s.push_str("]}");
        }

        let _ = write!(s, ",\"lint\":{{\"findings\":{},\"items\":[", self.lint.len());
        for (i, f) in self.lint.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
                esc(&f.file),
                f.line,
                esc(f.rule),
            );
        }
        s.push_str("]}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_ms_and_violations_fields_stay_in_sync() {
        let report = CheckReport {
            models: vec![Outcome {
                name: "demo \"quoted\"".to_string(),
                interleavings: 12,
                pruned: 3,
                capped: false,
                violation: None,
                schedule: Vec::new(),
                wall_ms: 7,
            }],
            ..CheckReport::default()
        };
        let json = report.to_json_string();
        assert!(json.contains("\"version\":\"symtensor-check-v1\""));
        assert!(json.contains("demo \\\"quoted\\\""));
        assert!(json.contains("\"violations\":0"));
        assert!(json.contains("\"findings\":0"));
        assert!(report.clean());
    }
}
