//! Executable models of the repo's lock-free primitives.
//!
//! Each model is a two/three-thread distillation of one production
//! protocol, built on the instrumented shim and parameterized by an
//! [`Orderings`] table so the mutation harness can weaken each ordering
//! individually:
//!
//! * [`seqlock`] — the telemetry cell's sequence-lock: one writer
//!   publishing a two-word gauge snapshot vs. one reader that must never
//!   accept a torn read (`crates/telemetry/src/cell.rs`);
//! * [`flight_ring`] — the flight recorder's wrap-around ring published
//!   once to a drainer through a flag (`crates/mpsim/src/flight.rs`);
//! * [`deque`] — the pool's lock-protected chunk deque: owner pushes and
//!   pops front, a thief steals back, every chunk is executed exactly
//!   once (`crates/pool/src/lib.rs`);
//! * [`abort_flag`] — mpsim's abort protocol: a peer that observes the
//!   flag must also observe the attribution written before it
//!   (`crates/mpsim/src/comm.rs`).
//!
//! The invariants are asserted inside the model threads and in the
//! post-join finale; the vector-clock detector additionally rejects any
//! interleaving with an unsynchronized access to the non-atomic state.

use std::sync::Arc;

use crate::model::{Config, ModelRun, Outcome};
use crate::mutate::{ModelDef, Orderings};
use crate::sync::{fence, AtomicBool, AtomicU64, Ordering, UnsafeCellShim};

/// All four primitive models with their correct ordering tables.
pub fn defs() -> Vec<ModelDef> {
    vec![seqlock(), flight_ring(), deque(), abort_flag()]
}

// --- seqlock ----------------------------------------------------------

struct SeqLock {
    o: Orderings,
    seq: AtomicU64,
    d0: AtomicU64,
    d1: AtomicU64,
}

impl ModelRun for SeqLock {
    fn threads(&self) -> usize {
        2
    }

    fn thread(&self, tid: usize) {
        if tid == 0 {
            // Writer: odd/even sequence brackets around the data words.
            self.seq.fetch_add(1, self.o.get("writer-enter"));
            fence(self.o.get("writer-rel-fence"));
            // ordering: data words are Relaxed by design; the release
            // fence above orders them after the odd marker, the Release
            // exit below orders them before the even marker.
            self.d0.store(1, Ordering::Relaxed);
            // ordering: see d0 above — same publication bracket.
            self.d1.store(1, Ordering::Relaxed);
            self.seq.fetch_add(1, self.o.get("writer-exit"));
        } else {
            // Reader: one optimistic attempt; accepting requires the
            // sequence to be even and unchanged across the data reads.
            let s1 = self.seq.load(self.o.get("reader-load1"));
            if s1 % 2 == 1 {
                return;
            }
            // ordering: data reads are Relaxed by design; the acquire
            // fence below orders them before the validating re-read.
            let v0 = self.d0.load(Ordering::Relaxed);
            // ordering: see v0 above — same validation bracket.
            let v1 = self.d1.load(Ordering::Relaxed);
            fence(self.o.get("reader-acq-fence"));
            let s2 = self.seq.load(self.o.get("reader-load2"));
            if s1 == s2 {
                assert_eq!(v0, v1, "seqlock accepted a torn snapshot (d0={v0}, d1={v1}, seq={s1})");
            }
        }
    }

    fn finale(&self) {
        // ordering: post-join reads; the finale clock covers all threads.
        assert_eq!(self.seq.load(Ordering::Relaxed), 2, "writer did not complete its bracket");
        // ordering: post-join read, as above.
        assert_eq!(self.d0.load(Ordering::Relaxed), 1);
        // ordering: post-join read, as above.
        assert_eq!(self.d1.load(Ordering::Relaxed), 1);
    }
}

fn seqlock() -> ModelDef {
    ModelDef {
        name: "seqlock",
        orderings: Orderings::new(&[
            // ordering: the odd marker needs no release of its own — the
            // dedicated release fence after it is what orders the data.
            ("writer-enter", Ordering::Relaxed),
            // ordering: release fence — relaxed data stores below may not
            // become visible before the odd marker.
            ("writer-rel-fence", Ordering::Release),
            // ordering: the even marker publishes the snapshot; readers
            // that acquire it see both data words.
            ("writer-exit", Ordering::Release),
            // ordering: acquiring the first sequence read pins the data
            // reads at or after this snapshot.
            ("reader-load1", Ordering::Acquire),
            // ordering: acquire fence — promotes the relaxed data reads
            // so the validating re-read cannot pass on stale sequence.
            ("reader-acq-fence", Ordering::Acquire),
            // ordering: the re-read needs no acquire of its own; the
            // fence above supplies the ordering.
            ("reader-load2", Ordering::Relaxed),
        ]),
        build: |o| {
            Arc::new(SeqLock {
                o,
                seq: AtomicU64::named(0, "seq"),
                d0: AtomicU64::named(0, "d0"),
                d1: AtomicU64::named(0, "d1"),
            })
        },
    }
}

// --- flight ring ------------------------------------------------------

const RING_CAP: usize = 3;
const RING_EVENTS: u64 = 5;

/// Mirror of `FlightRecorder`'s write-at-head ring
/// (`crates/mpsim/src/flight.rs`): record at `head`, advance modulo
/// capacity, saturate `len`; drain oldest-first from `head` once
/// wrapped.
#[derive(Hash)]
struct RingState {
    buf: [u64; RING_CAP],
    head: usize,
    len: usize,
}

impl RingState {
    fn push(&mut self, v: u64) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % RING_CAP;
        if self.len < RING_CAP {
            self.len += 1;
        }
    }

    fn window(&self) -> Vec<u64> {
        let start = if self.len < RING_CAP { 0 } else { self.head };
        (0..self.len).map(|i| self.buf[(start + i) % RING_CAP]).collect()
    }
}

struct FlightRing {
    o: Orderings,
    ring: UnsafeCellShim<RingState>,
    published: AtomicU64,
    drained: UnsafeCellShim<Vec<u64>>,
}

impl FlightRing {
    fn drain(&self) {
        let window = self.ring.with(RingState::window);
        assert_eq!(
            window,
            vec![RING_EVENTS - 2, RING_EVENTS - 1, RING_EVENTS],
            "ring window is not the last {RING_CAP} events oldest-first"
        );
        self.drained.with_mut(|d| *d = window);
    }
}

impl ModelRun for FlightRing {
    fn threads(&self) -> usize {
        2
    }

    fn thread(&self, tid: usize) {
        if tid == 0 {
            // Recorder: wrap the ring, then publish it once.
            for v in 1..=RING_EVENTS {
                self.ring.with_mut(|r| r.push(v));
            }
            self.published.store(1, self.o.get("ring-publish"));
        } else {
            // Drainer: a few optimistic polls (these create the
            // interesting interleavings), then block until published.
            for _ in 0..3 {
                if self.published.load(self.o.get("ring-early-poll")) == 1 {
                    self.drain();
                    return;
                }
            }
            self.published.cas_or_block(1, 1, self.o.get("ring-poll"));
            self.drain();
        }
    }

    fn finale(&self) {
        self.drained.with(|d| {
            assert_eq!(d.len(), RING_CAP, "drainer never observed the published ring");
        });
    }
}

fn flight_ring() -> ModelDef {
    ModelDef {
        name: "flight-ring",
        orderings: Orderings::new(&[
            // ordering: publishing the flag releases every ring write
            // before it to the drainer.
            ("ring-publish", Ordering::Release),
            // ordering: an early poll that observes the flag must
            // acquire it, or the drain would race the recorder.
            ("ring-early-poll", Ordering::Acquire),
            // ordering: the blocking poll likewise acquires before the
            // drain touches the ring.
            ("ring-poll", Ordering::Acquire),
        ]),
        build: |o| {
            Arc::new(FlightRing {
                o,
                ring: UnsafeCellShim::named(
                    RingState { buf: [0; RING_CAP], head: 0, len: 0 },
                    "flight-ring",
                ),
                published: AtomicU64::named(0, "published"),
                drained: UnsafeCellShim::named(Vec::new(), "drained"),
            })
        },
    }
}

// --- work-stealing deque ----------------------------------------------

const DEQUE_CHUNKS: u64 = 3;

struct Deque {
    o: Orderings,
    lock: AtomicU64,
    q: UnsafeCellShim<Vec<u64>>,
    taken_owner: UnsafeCellShim<Vec<u64>>,
    taken_thief: UnsafeCellShim<Vec<u64>>,
}

impl Deque {
    fn lock(&self) {
        self.lock.cas_or_block(0, 1, self.o.get("deque-lock-acquire"));
    }

    fn unlock(&self) {
        self.lock.store(0, self.o.get("deque-lock-release"));
    }
}

impl ModelRun for Deque {
    fn threads(&self) -> usize {
        2
    }

    fn thread(&self, tid: usize) {
        if tid == 0 {
            // Owner: push all chunks, then drain from the front.
            for v in 1..=DEQUE_CHUNKS {
                self.lock();
                self.q.with_mut(|q| q.push(v));
                self.unlock();
            }
            loop {
                self.lock();
                let got = self.q.with_mut(|q| if q.is_empty() { None } else { Some(q.remove(0)) });
                self.unlock();
                match got {
                    Some(v) => self.taken_owner.with_mut(|t| t.push(v)),
                    None => break,
                }
            }
        } else {
            // Thief: two steals from the back.
            for _ in 0..2 {
                self.lock();
                let got = self.q.with_mut(Vec::pop);
                self.unlock();
                if let Some(v) = got {
                    self.taken_thief.with_mut(|t| t.push(v));
                }
            }
        }
    }

    fn finale(&self) {
        let mut all = self.taken_owner.with(Vec::clone);
        all.extend(self.taken_thief.with(Vec::clone));
        all.sort_unstable();
        assert_eq!(
            all,
            (1..=DEQUE_CHUNKS).collect::<Vec<_>>(),
            "chunks lost or executed more than once"
        );
        self.q.with(|q| assert!(q.is_empty(), "chunks left in the deque"));
    }
}

fn deque() -> ModelDef {
    ModelDef {
        name: "deque",
        orderings: Orderings::new(&[
            // ordering: taking the lock acquires the previous holder's
            // release, making its deque writes visible.
            ("deque-lock-acquire", Ordering::Acquire),
            // ordering: freeing the lock releases this holder's deque
            // writes to the next taker.
            ("deque-lock-release", Ordering::Release),
        ]),
        build: |o| {
            Arc::new(Deque {
                o,
                lock: AtomicU64::named(0, "deque-lock"),
                q: UnsafeCellShim::named(Vec::new(), "deque"),
                taken_owner: UnsafeCellShim::named(Vec::new(), "taken-owner"),
                taken_thief: UnsafeCellShim::named(Vec::new(), "taken-thief"),
            })
        },
    }
}

// --- abort flag -------------------------------------------------------

struct AbortFlag {
    o: Orderings,
    flag: AtomicBool,
    info: UnsafeCellShim<u64>,
}

impl ModelRun for AbortFlag {
    fn threads(&self) -> usize {
        3
    }

    fn thread(&self, tid: usize) {
        if tid == 0 {
            // Tripper: write the attribution, then raise the flag.
            self.info.with_mut(|i| *i = 42);
            self.flag.store(true, self.o.get("abort-publish"));
        } else {
            // Pollers: a peer that observes the flag must also observe
            // the attribution — the documented AbortState invariant.
            for _ in 0..3 {
                if self.flag.load(self.o.get("abort-poll")) {
                    self.info.with(|i| {
                        assert_eq!(*i, 42, "abort observed without its attribution");
                    });
                    return;
                }
            }
        }
    }

    fn finale(&self) {
        // ordering: post-join read; the finale clock covers all threads.
        assert!(self.flag.load(Ordering::Relaxed), "tripper did not raise the flag");
        self.info.with(|i| assert_eq!(*i, 42));
    }
}

fn abort_flag() -> ModelDef {
    ModelDef {
        name: "abort-flag",
        orderings: Orderings::new(&[
            // ordering: raising the flag releases the attribution write,
            // the invariant `AbortState::trip` documents.
            ("abort-publish", Ordering::Release),
            // ordering: observing the flag acquires the attribution.
            ("abort-poll", Ordering::Acquire),
        ]),
        build: |o| {
            Arc::new(AbortFlag {
                o,
                flag: AtomicBool::named(false, "abort-flag"),
                info: UnsafeCellShim::named(0, "abort-info"),
            })
        },
    }
}

// --- deliberate race demo ---------------------------------------------

struct RacyCounter {
    ctr: UnsafeCellShim<u64>,
}

impl ModelRun for RacyCounter {
    fn threads(&self) -> usize {
        2
    }

    fn thread(&self, _tid: usize) {
        // Classic lost-update: both threads bump the counter with no
        // synchronization at all.
        self.ctr.with_mut(|c| *c += 1);
    }
}

/// Explores a deliberately racy counter; the vector-clock detector must
/// report it. Exists to prove the detector is live, not as a protocol.
pub fn race_demo(cfg: &Config) -> Outcome {
    crate::model::explore("racy-counter-demo", cfg, &|| {
        Arc::new(RacyCounter { ctr: UnsafeCellShim::named(0, "racy-counter") })
    })
}
