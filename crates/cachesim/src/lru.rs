//! Fully associative LRU cache with O(1) accesses.
//!
//! Capacity and line size are in **words** (one word = one `f64` of the
//! computation). An access to word address `a` touches line `a / line_size`;
//! a miss charges `line_size` words of I/O (the transfer granularity).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// Hit/miss counters of a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Total word accesses issued.
    pub accesses: u64,
    /// Line misses.
    pub misses: u64,
    /// Words moved from slow memory: `misses × line_size`.
    pub io_words: u64,
}

/// A fully associative LRU cache over word addresses.
///
/// Implementation: a hash map from line id to a slot in an intrusive
/// doubly-linked list (stored in vectors) ordered by recency.
pub struct LruCache {
    line_size: u64,
    capacity_lines: usize,
    map: HashMap<u64, usize>,
    // Linked-list arena.
    lines: Vec<u64>,
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    stats: IoStats,
}

impl LruCache {
    /// A cache holding `capacity_words` words in lines of `line_size`
    /// words. Capacity is rounded down to whole lines (at least one).
    pub fn new(capacity_words: usize, line_size: usize) -> Self {
        assert!(line_size >= 1, "line size must be positive");
        let capacity_lines = (capacity_words / line_size).max(1);
        LruCache {
            line_size: line_size as u64,
            capacity_lines,
            map: HashMap::with_capacity(capacity_lines * 2),
            lines: Vec::with_capacity(capacity_lines),
            prev: Vec::with_capacity(capacity_lines),
            next: Vec::with_capacity(capacity_lines),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            stats: IoStats::default(),
        }
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Line size in words.
    pub fn line_size(&self) -> usize {
        self.line_size as usize
    }

    /// Counters so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the counters but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Accesses word address `addr`; returns true on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_size;
        self.stats.accesses += 1;
        if let Some(&slot) = self.map.get(&line) {
            self.touch(slot);
            true
        } else {
            self.stats.misses += 1;
            self.stats.io_words += self.line_size;
            self.insert(line);
            false
        }
    }

    /// Accesses a contiguous word range (e.g. a whole vector shard).
    pub fn access_range(&mut self, start: u64, len: u64) {
        for a in start..start + len {
            self.access(a);
        }
    }

    fn detach(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.detach(slot);
        self.push_front(slot);
    }

    fn insert(&mut self, line: u64) {
        let slot = if self.map.len() >= self.capacity_lines {
            // Evict the LRU line.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            self.map.remove(&self.lines[victim]);
            victim
        } else if let Some(slot) = self.free.pop() {
            slot
        } else {
            self.lines.push(0);
            self.prev.push(NIL);
            self.next.push(NIL);
            self.lines.len() - 1
        };
        self.lines[slot] = line;
        self.map.insert(line, slot);
        self.push_front(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut cache = LruCache::new(64, 1);
        assert!(!cache.access(5));
        assert!(cache.access(5));
        assert!(cache.access(5));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().accesses, 3);
    }

    #[test]
    fn line_granularity() {
        let mut cache = LruCache::new(64, 8);
        assert!(!cache.access(0));
        // Same line.
        assert!(cache.access(7));
        // Next line.
        assert!(!cache.access(8));
        assert_eq!(cache.stats().io_words, 16);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cache = LruCache::new(3, 1);
        cache.access(1);
        cache.access(2);
        cache.access(3);
        // Touch 1 so 2 becomes LRU.
        cache.access(1);
        cache.access(4); // evicts 2
        assert!(cache.access(1));
        assert!(cache.access(3));
        assert!(cache.access(4));
        assert!(!cache.access(2), "2 must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_never_re_misses() {
        let mut cache = LruCache::new(100, 1);
        for round in 0..10 {
            for a in 0..100u64 {
                let hit = cache.access(a);
                if round > 0 {
                    assert!(hit, "round {round}, addr {a}");
                }
            }
        }
        assert_eq!(cache.stats().misses, 100);
    }

    #[test]
    fn cyclic_overflow_thrashes() {
        // Classic LRU pathology: cycling over capacity+1 lines misses
        // every time.
        let mut cache = LruCache::new(10, 1);
        for _ in 0..5 {
            for a in 0..11u64 {
                cache.access(a);
            }
        }
        assert_eq!(cache.stats().misses, 55);
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut cache = LruCache::new(8, 1);
        cache.access(1);
        cache.reset_stats();
        assert!(cache.access(1));
        assert_eq!(cache.stats().misses, 0);
        assert_eq!(cache.stats().accesses, 1);
    }

    #[test]
    fn capacity_rounding() {
        let cache = LruCache::new(17, 8);
        assert_eq!(cache.capacity_lines(), 2);
        let tiny = LruCache::new(3, 8);
        assert_eq!(tiny.capacity_lines(), 1);
    }
}
