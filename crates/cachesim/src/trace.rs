//! Instrumented address streams of sequential STTSV.
//!
//! Both traces perform the lower-tetrahedron computation of the paper's
//! Algorithm 4 (same iteration points, same operand set per point) but in
//! different orders:
//!
//! * [`sttsv_io_rowmajor`] — the textbook `i ≥ j ≥ k` triple loop,
//! * [`sttsv_io_blocked`] — tetrahedral-blocked: iterate `b³`-sized blocks
//!   `(I ≥ J ≥ K)` of the packed tensor, finishing all work inside a block
//!   before moving on. With a cache of `Ω(b³)` words, each block's `3b`
//!   vector words are reused `b²`-fold — the sequential counterpart of the
//!   parallel reuse Lemma 4.2 bounds.
//!
//! Tensor entries are compulsory traffic either way (each packed word is
//! used exactly once), so the interesting quantity is the **vector**
//! traffic, reported separately.

use crate::lru::{IoStats, LruCache};

/// Word-address layout of the computation's three arrays.
#[derive(Clone, Copy, Debug)]
pub struct AddressSpace {
    /// First word address of the packed tensor.
    pub tensor_base: u64,
    /// First word address of the input vector `x`.
    pub x_base: u64,
    /// First word address of the output vector `y`.
    pub y_base: u64,
}

impl AddressSpace {
    /// Packed tensor at 0, then x, then y.
    pub fn packed(n: usize) -> Self {
        let tensor_words = (n * (n + 1) * (n + 2) / 6) as u64;
        AddressSpace { tensor_base: 0, x_base: tensor_words, y_base: tensor_words + n as u64 }
    }
}

#[inline]
fn packed_index(i: usize, j: usize, k: usize) -> u64 {
    (i * (i + 1) * (i + 2) / 6 + j * (j + 1) / 2 + k) as u64
}

/// Per-array I/O breakdown of a traced run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TracedIo {
    /// Whole-run stats (tensor + vectors).
    pub total: IoStats,
    /// Misses attributable to vector (x/y) lines only.
    pub vector_misses: u64,
    /// Misses attributable to tensor lines only.
    pub tensor_misses: u64,
}

/// Issues the operand accesses of one iteration point `(i, j, k)` of
/// Algorithm 4: the tensor word plus the x/y words its updates touch.
#[allow(clippy::too_many_arguments)]
fn access_point(
    cache: &mut LruCache,
    space: &AddressSpace,
    n: usize,
    i: usize,
    j: usize,
    k: usize,
    vector_misses: &mut u64,
    tensor_misses: &mut u64,
) {
    debug_assert!(i >= j && j >= k && i < n);
    let before = cache.stats().misses;
    cache.access(space.tensor_base + packed_index(i, j, k));
    *tensor_misses += cache.stats().misses - before;

    let before = cache.stats().misses;
    // Operand set per the Algorithm 4 cases (reads of x and read-modify-
    // writes of y at the distinct indices involved).
    cache.access(space.x_base + i as u64);
    cache.access(space.y_base + i as u64);
    if j != i {
        cache.access(space.x_base + j as u64);
        cache.access(space.y_base + j as u64);
    }
    if k != j {
        cache.access(space.x_base + k as u64);
        cache.access(space.y_base + k as u64);
    }
    *vector_misses += cache.stats().misses - before;
}

/// Row-major (textbook) order: the `i ≥ j ≥ k` triple loop of Algorithm 4.
pub fn sttsv_io_rowmajor(n: usize, cache_words: usize, line_size: usize) -> TracedIo {
    let space = AddressSpace::packed(n);
    let mut cache = LruCache::new(cache_words, line_size);
    let mut vector_misses = 0;
    let mut tensor_misses = 0;
    for i in 0..n {
        for j in 0..=i {
            for k in 0..=j {
                access_point(
                    &mut cache,
                    &space,
                    n,
                    i,
                    j,
                    k,
                    &mut vector_misses,
                    &mut tensor_misses,
                );
            }
        }
    }
    TracedIo { total: cache.stats(), vector_misses, tensor_misses }
}

/// Tetrahedral-blocked order: blocks `(I ≥ J ≥ K)` of size `b` (the last
/// block may be ragged when `b ∤ n`), all points inside a block before the
/// next block.
pub fn sttsv_io_blocked(n: usize, b: usize, cache_words: usize, line_size: usize) -> TracedIo {
    assert!(b >= 1);
    let space = AddressSpace::packed(n);
    let mut cache = LruCache::new(cache_words, line_size);
    let mut vector_misses = 0;
    let mut tensor_misses = 0;
    let m = n.div_ceil(b);
    let range = |blk: usize| blk * b..((blk + 1) * b).min(n);
    for bi in 0..m {
        for bj in 0..=bi {
            for bk in 0..=bj {
                for i in range(bi) {
                    for j in range(bj) {
                        if j > i {
                            break;
                        }
                        for k in range(bk) {
                            if k > j {
                                break;
                            }
                            access_point(
                                &mut cache,
                                &space,
                                n,
                                i,
                                j,
                                k,
                                &mut vector_misses,
                                &mut tensor_misses,
                            );
                        }
                    }
                }
            }
        }
    }
    TracedIo { total: cache.stats(), vector_misses, tensor_misses }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_orders_issue_the_same_access_count() {
        let n = 24;
        let cache = 1 << 20; // effectively infinite
        let row = sttsv_io_rowmajor(n, cache, 1);
        let blk = sttsv_io_blocked(n, 6, cache, 1);
        assert_eq!(row.total.accesses, blk.total.accesses);
        // Iteration points: n(n+1)(n+2)/6, each touching 1 tensor word +
        // 2·(distinct indices) vector words.
        let points = (n * (n + 1) * (n + 2) / 6) as u64;
        assert!(row.total.accesses > points);
    }

    #[test]
    fn infinite_cache_sees_only_compulsory_misses() {
        let n = 20;
        let row = sttsv_io_rowmajor(n, 1 << 22, 1);
        let tensor_words = (n * (n + 1) * (n + 2) / 6) as u64;
        // Every tensor word missed exactly once, every vector word once.
        assert_eq!(row.tensor_misses, tensor_words);
        assert_eq!(row.vector_misses, 2 * n as u64);
        assert_eq!(row.total.misses, tensor_words + 2 * n as u64);
    }

    #[test]
    fn tensor_traffic_is_compulsory_in_both_orders() {
        // The packed tensor is streamed once regardless of order (each word
        // used at exactly one iteration point).
        let n = 24;
        for cache_words in [64usize, 512, 4096] {
            let row = sttsv_io_rowmajor(n, cache_words, 1);
            let blk = sttsv_io_blocked(n, 4, cache_words, 1);
            let tensor_words = (n * (n + 1) * (n + 2) / 6) as u64;
            assert_eq!(row.tensor_misses, tensor_words);
            assert_eq!(blk.tensor_misses, tensor_words);
        }
    }

    #[test]
    fn blocked_order_cuts_vector_traffic_in_small_caches() {
        // The regime where blocking matters: the cache cannot hold the two
        // vectors (2n words) but easily holds a block's vector working set
        // (6b words). Row-major then thrashes the vectors on every sweep
        // while the blocked order reloads only 6b words per block visit.
        let n = 96;
        let b = 8;
        let cache_words = 128; // < 2n = 192, ≫ 6b = 48
        let row = sttsv_io_rowmajor(n, cache_words, 1);
        let blk = sttsv_io_blocked(n, b, cache_words, 1);
        assert!(
            blk.vector_misses * 2 < row.vector_misses,
            "blocked {} vs row-major {}",
            blk.vector_misses,
            row.vector_misses
        );
    }

    #[test]
    fn rowmajor_wins_when_vectors_fit_entirely() {
        // Conversely, when the cache holds both vectors outright, the
        // textbook order's perfect streaming of the tensor is optimal and
        // blocking gains nothing.
        let n = 48;
        let cache_words = 4 * n; // both vectors + slack
        let row = sttsv_io_rowmajor(n, cache_words, 1);
        let blk = sttsv_io_blocked(n, 4, cache_words, 1);
        assert!(row.vector_misses <= blk.vector_misses);
    }

    #[test]
    fn blocked_vector_traffic_tracks_block_visit_model() {
        // Model: each block visit re-loads ≤ 6b vector words (x and y of
        // three row blocks); visits = C(m+2, 3).
        let n = 48;
        let b = 4;
        let m = n / b;
        let blk = sttsv_io_blocked(n, b, 2 * (b * b * b + 6 * b), 1);
        let visits = (m * (m + 1) * (m + 2) / 6) as u64;
        let model_upper = visits * 6 * b as u64;
        assert!(
            blk.vector_misses <= model_upper,
            "measured {} vs model bound {model_upper}",
            blk.vector_misses
        );
    }

    #[test]
    fn ragged_blocks_cover_the_same_points() {
        // b ∤ n: the blocked trace must still touch every tensor word once.
        let n = 25;
        let blk = sttsv_io_blocked(n, 4, 1 << 22, 1);
        let tensor_words = (n * (n + 1) * (n + 2) / 6) as u64;
        assert_eq!(blk.tensor_misses, tensor_words);
    }

    #[test]
    fn larger_caches_never_increase_misses() {
        // LRU inclusion property, checked end-to-end on the real trace.
        let n = 30;
        let mut prev = u64::MAX;
        for cache_words in [32usize, 128, 512, 2048, 8192] {
            let row = sttsv_io_rowmajor(n, cache_words, 1);
            assert!(row.total.misses <= prev, "misses increased at {cache_words}");
            prev = row.total.misses;
        }
    }
}

#[cfg(test)]
mod line_size_tests {
    use super::*;

    #[test]
    fn larger_lines_reduce_misses_on_contiguous_streams() {
        // The packed tensor is streamed contiguously in row-major order,
        // so an L-word line cuts its compulsory misses by ~L.
        let n = 32;
        let big_cache = 1 << 22;
        let l1 = sttsv_io_rowmajor(n, big_cache, 1);
        let l8 = sttsv_io_rowmajor(n, big_cache, 8);
        assert!(
            l8.tensor_misses * 6 <= l1.tensor_misses,
            "8-word lines must cut streaming misses ~8x: {} vs {}",
            l8.tensor_misses,
            l1.tensor_misses
        );
        // I/O words = misses × line size, so the word traffic is similar.
        assert!(l8.total.io_words <= l1.total.io_words * 2);
    }

    #[test]
    fn io_words_equals_misses_times_line_size() {
        let n = 20;
        for line in [1usize, 4, 8] {
            let out = sttsv_io_rowmajor(n, 256, line);
            assert_eq!(out.total.io_words, out.total.misses * line as u64);
        }
    }
}
