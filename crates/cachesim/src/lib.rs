#![warn(missing_docs)]
//! A fully associative LRU cache simulator for sequential I/O analysis.
//!
//! The paper's related work (Hong & Kung's red–blue pebble game, Beaumont
//! et al.'s I/O-optimal symmetric kernels) studies the **sequential** data
//! movement of the same computations between a small fast memory of `M`
//! words and slow memory. This crate provides the measurement substrate:
//!
//! * [`LruCache`] — a fully associative LRU cache with configurable
//!   capacity and line size, counting hits/misses in `O(1)` per access,
//! * [`trace`] — instrumented address streams of the sequential STTSV in
//!   row-major (Algorithm 4) order and in tetrahedral-blocked order, so
//!   experiments can compare their cache traffic.
//!
//! The blocked order is the sequential shadow of the parallel tetrahedral
//! distribution: processing one `b×b×b` block touches only `3b` vector
//! words for `b³` tensor words, which is exactly the reuse the paper's
//! Lemma 4.2 bounds.

pub mod lru;
pub mod trace;

pub use lru::{IoStats, LruCache};
pub use trace::{sttsv_io_blocked, sttsv_io_rowmajor, AddressSpace};
