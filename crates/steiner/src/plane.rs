//! Projective planes as Steiner `(q² + q + 1, q + 1, 2)` systems — the
//! designs behind the **triangle** block partitions for symmetric matrices
//! (Beaumont et al. 2022, Al Daas et al. 2023/2025) that the paper's
//! tetrahedral partitions generalize.
//!
//! A Steiner system with `s = 2` is a collection of blocks such that every
//! **pair** of points lies in exactly one block; the projective plane
//! `PG(2, q)` realizes it with points = 1-dimensional subspaces of `F_q³`
//! and blocks = lines (2-dimensional subspaces), giving `q² + q + 1` points
//! and equally many lines of `q + 1` points each.

use symtensor_ff::Gf;

/// A Steiner `(n, r, 2)` system (pairwise balanced design with λ = 1):
/// every pair of points lies in exactly one block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Steiner2 {
    n: usize,
    r: usize,
    blocks: Vec<Vec<usize>>,
}

impl Steiner2 {
    /// Wraps a block list (canonically sorted) without verification.
    pub fn from_blocks(n: usize, r: usize, mut blocks: Vec<Vec<usize>>) -> Self {
        for b in &mut blocks {
            b.sort_unstable();
        }
        blocks.sort();
        Steiner2 { n, r, blocks }
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// Block size `r`.
    pub fn block_size(&self) -> usize {
        self.r
    }

    /// The blocks (each sorted; list sorted).
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// Number of blocks: `n(n−1)/(r(r−1))` when valid.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// For each point, the sorted list of blocks containing it (each point
    /// lies in `(n−1)/(r−1)` blocks).
    pub fn point_to_blocks(&self) -> Vec<Vec<usize>> {
        let mut map = vec![Vec::new(); self.n];
        for (bi, block) in self.blocks.iter().enumerate() {
            for &pt in block {
                map[pt].push(bi);
            }
        }
        map
    }

    /// The unique block containing a pair, if any.
    pub fn block_containing(&self, a: usize, b: usize) -> Option<usize> {
        self.blocks
            .iter()
            .position(|blk| blk.binary_search(&a).is_ok() && blk.binary_search(&b).is_ok())
    }

    /// Exhaustively verifies the `s = 2` Steiner property.
    pub fn verify(&self) -> Result<(), String> {
        for (bi, block) in self.blocks.iter().enumerate() {
            let ok = block.len() == self.r
                && block.windows(2).all(|w| w[0] < w[1])
                && block.iter().all(|&p| p < self.n);
            if !ok {
                return Err(format!("block {bi} malformed"));
            }
        }
        let expected = self.n * (self.n - 1) / (self.r * (self.r - 1));
        if self.blocks.len() != expected {
            return Err(format!("{} blocks, expected {expected}", self.blocks.len()));
        }
        let mut cover = vec![0u32; self.n * self.n];
        for block in &self.blocks {
            for x in 0..block.len() {
                for y in x + 1..block.len() {
                    cover[block[x] * self.n + block[y]] += 1;
                }
            }
        }
        for a in 0..self.n {
            for b in a + 1..self.n {
                if cover[a * self.n + b] != 1 {
                    return Err(format!("pair ({a},{b}) covered {} times", cover[a * self.n + b]));
                }
            }
        }
        Ok(())
    }
}

/// Builds the projective plane `PG(2, q)` as a Steiner
/// `(q² + q + 1, q + 1, 2)` system for a prime power `q`.
///
/// Points are normalized homogeneous triples over `GF(q)` in the order
/// `(1, a, b)`, `(0, 1, a)`, `(0, 0, 1)`; block `[u : v : w]` contains the
/// points with `u·x + v·y + w·z = 0`.
pub fn projective_plane(q: u64) -> Steiner2 {
    let field = Gf::new(q);
    let qq = q as u32;
    // Enumerate normalized points.
    let mut points: Vec<[u32; 3]> = Vec::new();
    for a in 0..qq {
        for b in 0..qq {
            points.push([1, a, b]);
        }
    }
    for a in 0..qq {
        points.push([0, 1, a]);
    }
    points.push([0, 0, 1]);
    let index_of = |p: &[u32; 3]| points.iter().position(|x| x == p).expect("normalized point");

    // Lines are indexed by the same normalized triples (duality).
    let mut blocks = Vec::with_capacity(points.len());
    for line in &points {
        let mut block = Vec::with_capacity(q as usize + 1);
        for (pi, point) in points.iter().enumerate() {
            let dot = field.add(
                field.add(field.mul(line[0], point[0]), field.mul(line[1], point[1])),
                field.mul(line[2], point[2]),
            );
            if dot == 0 {
                block.push(pi);
            }
        }
        debug_assert_eq!(block.len(), q as usize + 1, "every line has q+1 points");
        blocks.push(block);
    }
    let _ = index_of;
    Steiner2::from_blocks(points.len(), q as usize + 1, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fano_plane() {
        // q = 2: the Fano plane, 7 points, 7 lines of 3 points.
        let plane = projective_plane(2);
        assert_eq!(plane.num_points(), 7);
        assert_eq!(plane.num_blocks(), 7);
        assert_eq!(plane.block_size(), 3);
        plane.verify().unwrap();
    }

    #[test]
    fn planes_for_small_prime_powers() {
        for q in [2u64, 3, 4, 5, 7, 8, 9] {
            let plane = projective_plane(q);
            let qq = q as usize;
            assert_eq!(plane.num_points(), qq * qq + qq + 1, "q = {q}");
            assert_eq!(plane.num_blocks(), qq * qq + qq + 1, "q = {q}");
            plane.verify().unwrap_or_else(|e| panic!("q = {q}: {e}"));
            // Each point on q+1 lines.
            for lines in plane.point_to_blocks() {
                assert_eq!(lines.len(), qq + 1);
            }
        }
    }

    #[test]
    fn two_lines_meet_in_exactly_one_point() {
        let plane = projective_plane(3);
        for (i, a) in plane.blocks().iter().enumerate() {
            for b in plane.blocks().iter().skip(i + 1) {
                let shared = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
                assert_eq!(shared, 1, "projective plane axiom");
            }
        }
    }

    #[test]
    fn block_containing_pairs() {
        let plane = projective_plane(2);
        for a in 0..7 {
            for b in a + 1..7 {
                assert!(plane.block_containing(a, b).is_some());
            }
        }
    }

    #[test]
    fn verify_rejects_broken_plane() {
        let plane = projective_plane(2);
        let mut blocks = plane.blocks().to_vec();
        blocks.pop();
        let broken = Steiner2::from_blocks(7, 3, blocks);
        assert!(broken.verify().is_err());
    }
}

/// Bose's construction of a Steiner **triple** system `S(n, 3, 2)` for
/// `n ≡ 3 (mod 6)`: another infinite `s = 2` family, showing the triangle
/// partition layer is not tied to projective planes.
///
/// With `n = 6t + 3`, points are `ℤ_{2t+1} × {0, 1, 2}`; blocks are
/// `{(i,0), (i,1), (i,2)}` for every `i`, plus
/// `{(i,k), (j,k), (((i+j)·(t+1)) mod (2t+1), k+1 mod 3)}` for `i < j`
/// (using that `(t+1)` is the inverse of 2 mod `2t+1`).
pub fn bose_triple_system(n: usize) -> Steiner2 {
    assert!(n >= 3 && n % 6 == 3, "Bose construction needs n ≡ 3 (mod 6), got {n}");
    let t = (n - 3) / 6;
    let m = 2 * t + 1;
    let point = |i: usize, k: usize| i + k * m;
    let half = t + 1; // inverse of 2 modulo 2t+1
    let mut blocks = Vec::with_capacity(n * (n - 1) / 6);
    for i in 0..m {
        blocks.push(vec![point(i, 0), point(i, 1), point(i, 2)]);
    }
    for k in 0..3 {
        for i in 0..m {
            for j in i + 1..m {
                let mid = ((i + j) * half) % m;
                blocks.push(vec![point(i, k), point(j, k), point(mid, (k + 1) % 3)]);
            }
        }
    }
    Steiner2::from_blocks(n, 3, blocks)
}

#[cfg(test)]
mod bose_tests {
    use super::*;

    #[test]
    fn bose_systems_verify() {
        for n in [3usize, 9, 15, 21, 27, 33] {
            let sts = bose_triple_system(n);
            assert_eq!(sts.num_blocks(), n * (n - 1) / 6, "n = {n}");
            sts.verify().unwrap_or_else(|e| panic!("n = {n}: {e}"));
        }
    }

    #[test]
    fn sts9_is_the_affine_plane() {
        // S(9, 3, 2) has 12 blocks and every point on 4.
        let sts = bose_triple_system(9);
        assert_eq!(sts.num_blocks(), 12);
        for lines in sts.point_to_blocks() {
            assert_eq!(lines.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "mod 6")]
    fn bose_rejects_wrong_residues() {
        bose_triple_system(13);
    }
}
